//! The PR-9 differential harness: anomaly detection, adaptive
//! sampling, and the bounded trace store proven equivalent to their
//! reference paths on real simulator traces.
//!
//! Four gates:
//!
//! 1. **Scorer determinism** — fitting and scoring the isolation
//!    forest is bit-identical across reruns and across rayon pools of
//!    1, 2, and 8 worker threads.
//! 2. **Sampler-off equivalence** — an unbounded-budget
//!    [`AdaptiveSampler`] is a pass-through: the feature pipeline
//!    emits byte-identical windows whether the sampler sits in front
//!    of it or not.
//! 3. **Trace-store equivalence** — a run recorded into the RLE
//!    ring-buffer store reads back exactly like the unbounded `Vec`
//!    store: same samples, same telemetry, same feature vectors.
//! 4. **ROC separation** — on the canonical anomaly session, every
//!    faulted window (all OSTs slowed 7×, MDS lock storm) scores
//!    strictly above the healthy p95 threshold, no healthy held-out
//!    window does, and detection survives budget-bounded sampling.

use quanterference_repro::anomaly_demo::{run_anomaly_session, session_scenario};
use quanterference_repro::framework::prelude::*;
use quanterference_repro::pfs::ops::RunTrace;
use quanterference_repro::pfs::store::TraceStoreConfig;

fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool")
        .install(f)
}

/// The featurization the session uses (server-side features, 1 s
/// windows).
fn session_cfgs() -> (WindowConfig, FeatureConfig) {
    (
        WindowConfig::seconds(1),
        FeatureConfig {
            client: false,
            server: true,
        },
    )
}

/// Per emitted window: the window index and every app's feature block
/// as raw bits.
type WindowBits = (u64, Vec<(u32, Vec<u32>)>);

/// Canonical comparable form of a pipeline run.
fn window_fingerprint(
    ops: &[qi_pfs::ops::OpRecord],
    rpcs: &[qi_pfs::ops::RpcRecord],
    samples: &[qi_pfs::ops::ServerSample],
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
) -> Vec<WindowBits> {
    qi_monitor::pipeline::FeaturePipeline::new(wcfg, fcfg, n_devices)
        .run_streams(ops, rpcs, samples)
        .iter()
        .map(|ew| {
            let blocks = ew
                .feature_blocks(fcfg, n_devices, wcfg.window)
                .into_iter()
                .map(|(app, block, _)| (app.0, block.iter().map(|f| f.to_bits()).collect()))
                .collect();
            (ew.window, blocks)
        })
        .collect()
}

// -------------------------------------------------------------- gate 1

#[test]
fn scorer_is_bit_deterministic_across_reruns_and_thread_pools() {
    let (wcfg, fcfg) = session_cfgs();
    let scn = session_scenario(1, false);
    let n_devices = scn.cluster.n_devices();
    let (_, healthy) = scn.run().expect("healthy run");
    let (_, faulted) = session_scenario(1, true).run().expect("faulted run");
    let rows = feature_rows(&healthy, wcfg, fcfg, n_devices);
    let probe = feature_rows(&faulted, wcfg, fcfg, n_devices);
    assert!(!rows.is_empty() && !probe.is_empty());

    let forest = ForestConfig {
        n_trees: 50,
        sample_size: 64,
        seed: 7,
    };
    let run = || {
        let scorer = AnomalyScorer::fit_healthy(forest, &rows, 95.0);
        let scores: Vec<u64> = scorer
            .forest()
            .score_batch(&probe)
            .iter()
            .map(|s| s.to_bits())
            .collect();
        (scorer.threshold().to_bits(), scores)
    };

    let reference = run();
    assert_eq!(reference, run(), "rerun in the ambient pool diverged");
    for threads in [1usize, 2, 8] {
        let other = in_pool(threads, run);
        assert_eq!(
            reference, other,
            "scorer diverged under a {threads}-thread rayon pool"
        );
    }
}

// -------------------------------------------------------------- gate 2

#[test]
fn unbounded_budget_sampler_is_equivalent_to_no_sampler() {
    let (wcfg, fcfg) = session_cfgs();
    let scn = session_scenario(11, true);
    let n_devices = scn.cluster.n_devices();
    let (_, trace) = scn.run().expect("faulted run");
    let raw = trace.samples.to_vec();
    assert!(!raw.is_empty(), "scenario produced no server samples");

    let (kept, stats) = AdaptiveSampler::run(
        SamplerConfig {
            budget: u32::MAX,
            quiet_keep: 1,
            seed: 9,
        },
        wcfg,
        raw.clone(),
    );
    assert_eq!(stats.seen, stats.kept, "unbounded budget dropped samples");
    assert_eq!(kept, raw, "pass-through reordered or altered samples");

    let direct = window_fingerprint(&trace.ops, &trace.rpcs, &raw, wcfg, fcfg, n_devices);
    let sampled = window_fingerprint(&trace.ops, &trace.rpcs, &kept, wcfg, fcfg, n_devices);
    assert_eq!(
        direct, sampled,
        "windows/features diverged behind the unbounded sampler"
    );
}

// -------------------------------------------------------------- gate 3

fn run_with_store(store: TraceStoreConfig) -> RunTrace {
    let mut scn = session_scenario(11, true);
    scn.cluster.trace_store = store;
    let (_, trace) = scn.run().expect("scenario runs");
    trace
}

#[test]
fn ring_buffer_store_reads_back_like_the_unbounded_store() {
    let (wcfg, fcfg) = session_cfgs();
    let reference = run_with_store(TraceStoreConfig::Unbounded);
    let n = reference.samples.len();
    assert!(n > 0);

    // Large enough that nothing evicts: every read path must agree.
    let ring = run_with_store(TraceStoreConfig::RleRing { capacity: 4096 });
    assert_eq!(ring.samples.evicted(), 0);
    assert_eq!(ring.samples, reference.samples, "logical sample equality");
    assert_eq!(ring.samples.to_vec(), reference.samples.to_vec());
    assert_eq!(
        ring.metrics.to_json(),
        reference.metrics.to_json(),
        "simulator telemetry depends on the store backend"
    );
    let n_devices = session_scenario(11, true).cluster.n_devices();
    assert_eq!(
        feature_rows(&ring, wcfg, fcfg, n_devices),
        feature_rows(&reference, wcfg, fcfg, n_devices),
        "feature extraction depends on the store backend"
    );
    // The RLE ring actually compresses: fewer stored segments than raw
    // samples (idle devices collapse into strided runs).
    assert!(
        ring.samples.storage_cells() < n,
        "RLE kept {} cells for {n} samples",
        ring.samples.storage_cells()
    );

    // A tight ring drops the oldest samples but keeps exact accounting,
    // and what it still holds is a per-device suffix of the run
    // (eviction drops whole sealed segments, so cut points differ per
    // device).
    let bounded = run_with_store(TraceStoreConfig::RleRing { capacity: 8 });
    assert!(bounded.samples.evicted() > 0, "capacity 8 evicted nothing");
    assert_eq!(bounded.samples.recorded(), n as u64);
    let held: Vec<_> = bounded.samples.to_vec();
    assert_eq!(bounded.samples.evicted() + held.len() as u64, n as u64);
    let per_dev = |samples: &[qi_pfs::ops::ServerSample], dev: u32| -> Vec<_> {
        samples.iter().filter(|s| s.dev.0 == dev).cloned().collect()
    };
    let all = reference.samples.to_vec();
    for dev in 0..session_scenario(11, true).cluster.n_devices() {
        let held_dev = per_dev(&held, dev);
        let all_dev = per_dev(&all, dev);
        assert!(
            held_dev.len() <= all_dev.len()
                && held_dev == all_dev[all_dev.len() - held_dev.len()..],
            "device {dev}: bounded ring holds a non-suffix of its series"
        );
    }
    assert_eq!(
        bounded
            .samples
            .iter_from(bounded.samples.evicted())
            .collect::<Vec<_>>(),
        held,
        "iter_from(evicted) must resume at the oldest held sample"
    );
}

// -------------------------------------------------------------- gate 4

#[test]
fn faulted_windows_score_above_the_healthy_p95() {
    let session = run_anomaly_session().expect("anomaly session runs");
    session.check_detection().expect("detection invariant");

    // ROC separation, window by window: nothing healthy flags, every
    // faulted window clears the healthy-p95 threshold.
    assert_eq!(
        session.healthy.n_flagged(),
        0,
        "held-out healthy windows above threshold"
    );
    assert!(!session.faulted.scores.is_empty());
    for ws in &session.faulted.scores {
        assert!(
            ws.score > session.threshold,
            "faulted window {} (app {}) scored {:.4} <= threshold {:.4}",
            ws.window,
            ws.app.0,
            ws.score,
            session.threshold
        );
        assert!(ws.anomalous);
    }
    // The healthy manifold margin is real, not epsilon-thin.
    assert!(
        session.faulted.max_score() > session.threshold + 0.05,
        "margin too thin: {:.4} vs {:.4}",
        session.faulted.max_score(),
        session.threshold
    );

    // Detection survives budget-bounded sampling, and the sampler
    // actually paid for itself on this session (the bench gate's 30%
    // floor, asserted here without criterion).
    let stats = session.sampled.sampler.expect("sampler stats");
    assert!(
        stats.savings() >= 0.30,
        "sampler saved only {:.1}% of ingest",
        stats.savings() * 100.0
    );
    assert_eq!(
        session.sampled.scores.len(),
        session.faulted.scores.len(),
        "sampling changed the scored window set"
    );
    for ws in &session.sampled.scores {
        assert!(
            ws.score > session.threshold,
            "sampled faulted window {} scored {:.4} <= threshold {:.4}",
            ws.window,
            ws.score,
            session.threshold
        );
    }

    // Telemetry namespaces: anomaly.* appears only because a scorer
    // ran; sampler counters only on the sampled leg.
    for (prefix, report) in [
        ("healthy", &session.healthy),
        ("faulted", &session.faulted),
        ("sampled", &session.sampled),
    ] {
        assert_eq!(
            report.snapshot.counter("anomaly.windows_scored"),
            Some(report.scores.len() as u64),
            "{prefix} windows_scored"
        );
        assert_eq!(
            report.snapshot.counter("anomaly.flagged"),
            Some(report.n_flagged() as u64),
            "{prefix} flagged"
        );
    }
    assert_eq!(
        session.healthy.snapshot.counter("monitor.sampler.seen"),
        None
    );
    assert_eq!(
        session.sampled.snapshot.counter("monitor.sampler.seen"),
        Some(stats.seen)
    );
}
