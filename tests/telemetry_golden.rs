//! Golden-snapshot tests for the telemetry layer.
//!
//! Each test runs a fixed smoke-scale scenario, renders its
//! [`RunTrace::metrics`] snapshot, and compares the bytes against a
//! checked-in golden file under `tests/golden/`. Because the simulator
//! and the renderers are deterministic, any byte difference means either
//! an intentional model/metric change or a determinism regression.
//!
//! To regenerate the goldens after an intentional change:
//!
//! ```sh
//! QI_REGEN_GOLDEN=1 cargo test --test telemetry_golden
//! ```
//!
//! then inspect the diff of `tests/golden/` before committing.

use std::path::PathBuf;

use quanterference_repro::anomaly_demo::run_anomaly_session;
use quanterference_repro::framework::prelude::*;
use quanterference_repro::serve_demo::run_serve_session;
use quanterference_repro::telemetry::MetricsSnapshot;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn regen() -> bool {
    std::env::var("QI_REGEN_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compare `actual` against the golden file `name`, or rewrite it when
/// `QI_REGEN_GOLDEN=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if regen() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden/");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with \
             QI_REGEN_GOLDEN=1 cargo test --test telemetry_golden",
            path.display()
        )
    });
    assert!(
        actual == expected,
        "telemetry snapshot diverged from tests/golden/{name}.\n\
         If the change is intentional, regenerate with \
         QI_REGEN_GOLDEN=1 cargo test --test telemetry_golden and review \
         the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

/// The fixed smoke scenario the goldens are pinned to. Must not depend
/// on environment variables or scale switches.
fn golden_scenario() -> Scenario {
    Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 11)
    }
}

fn interfered_scenario() -> Scenario {
    golden_scenario().with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    })
}

#[test]
fn baseline_smoke_snapshot_matches_golden() {
    let (_, trace) = golden_scenario().run().expect("golden scenario runs");
    let snap = &trace.metrics;
    // Sanity before comparing bytes: the pfs layer reported activity.
    assert!(snap.counter("pfs.ost0.enqueued").unwrap_or(0) > 0);
    assert!(snap.stats("pfs.ost0.queue_depth").is_some());
    assert!(snap.histogram("pfs.ost0.service_us").is_some());
    check_golden("baseline_ior_easy_read_s11.metrics.json", &snap.to_json());
    check_golden(
        "baseline_ior_easy_read_s11.metrics.prom",
        &snap.to_prometheus_text(),
    );
}

#[test]
fn interfered_smoke_snapshot_matches_golden() {
    let (_, trace) = interfered_scenario()
        .run()
        .expect("interfered scenario runs");
    check_golden(
        "interfered_ior_easy_read_s11.metrics.json",
        &trace.metrics.to_json(),
    );
}

#[test]
fn golden_json_parses_and_reserialises_byte_identically() {
    if regen() {
        return; // goldens are being rewritten in this very run
    }
    for name in [
        "baseline_ior_easy_read_s11.metrics.json",
        "interfered_ior_easy_read_s11.metrics.json",
        "serve_loop.metrics.json",
        "serve_loop.overload.metrics.json",
        "serve_loop.sharded.metrics.json",
        "anomaly_session.metrics.json",
    ] {
        let text = std::fs::read_to_string(golden_dir().join(name)).expect("golden present");
        let snap = MetricsSnapshot::from_json(&text).expect("golden parses");
        assert_eq!(snap.to_json(), text, "round-trip of {name} not byte-stable");
    }
}

/// The full online-serving session (train → registry → micro-batched
/// replay with a hot swap → overloaded replay under Shed → sharded
/// replay with the same hot swap) pinned to golden snapshots, then
/// re-run at other worker-thread AND shard counts: the serving
/// telemetry must be byte-identical at every combination. The session
/// runs under an active `FaultPlan`, so fault injection is covered too.
#[test]
fn serve_session_snapshot_matches_golden_across_thread_counts() {
    let reference = run_serve_session(Some(1), 1).expect("serving session runs");
    reference
        .check_accounting()
        .expect("every request answered, answered stale, or shed");
    // Sanity before comparing bytes: the engine actually served.
    let snap = &reference.snapshot;
    assert!(snap.counter("serve.answered").unwrap_or(0) > 0);
    assert_eq!(snap.counter("serve.shed"), Some(0), "generous engine shed");
    assert_eq!(snap.gauge("serve.registry.active_version"), Some(2.0));
    assert!(reference.overload.shed > 0, "overload engine never shed");
    assert!(
        reference
            .sharded_snapshot
            .counter("serve.answered")
            .unwrap_or(0)
            > 0,
        "sharded engine never served"
    );
    check_golden("serve_loop.metrics.json", &snap.to_json());
    check_golden(
        "serve_loop.overload.metrics.json",
        &reference.overload_snapshot.to_json(),
    );
    check_golden(
        "serve_loop.sharded.metrics.json",
        &reference.sharded_snapshot.to_json(),
    );
    for (threads, shards) in [(2usize, 2usize), (8, 8)] {
        let other = run_serve_session(Some(threads), shards).expect("serving session runs");
        assert_eq!(
            other.snapshot.to_json(),
            reference.snapshot.to_json(),
            "serving telemetry diverged at {threads} worker threads"
        );
        assert_eq!(
            other.overload_snapshot.to_json(),
            reference.overload_snapshot.to_json(),
            "overload telemetry diverged at {threads} worker threads"
        );
        assert_eq!(
            other.sharded_snapshot.to_json(),
            reference.sharded_snapshot.to_json(),
            "sharded telemetry diverged at {shards} shards"
        );
    }
}

/// The full anomaly session (healthy training → held-out healthy and
/// faulted scoring → budget-bounded sampled scoring) pinned to one
/// golden snapshot, then re-run under rayon pools of 2 and 8 worker
/// threads: anomaly telemetry — scores, verdict counts, histogram,
/// sampler accounting — must be byte-identical at every width. Note
/// the `anomaly.*` namespace exists ONLY because this session installs
/// a scorer; plain simulator runs (the goldens above) never emit it.
#[test]
fn anomaly_session_snapshot_matches_golden_across_thread_counts() {
    let reference = run_anomaly_session().expect("anomaly session runs");
    reference.check_detection().expect("detection invariant");
    // Sanity before comparing bytes: all three legs actually scored.
    let snap = &reference.snapshot;
    assert!(snap.counter("healthy.anomaly.windows_scored").unwrap_or(0) > 0);
    assert_eq!(snap.counter("healthy.anomaly.flagged"), Some(0));
    assert!(snap.counter("faulted.anomaly.flagged").unwrap_or(0) > 0);
    assert!(snap.counter("sampled.monitor.sampler.dropped").unwrap_or(0) > 0);
    check_golden("anomaly_session.metrics.json", &snap.to_json());
    for threads in [2usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build rayon pool");
        let other = pool
            .install(run_anomaly_session)
            .expect("anomaly session runs");
        assert_eq!(
            other.snapshot.to_json(),
            reference.snapshot.to_json(),
            "anomaly telemetry diverged at {threads} worker threads"
        );
    }
}

#[test]
fn interfered_run_shows_more_device_work_than_baseline() {
    // The snapshots differ in the direction interference predicts:
    // more requests enqueued across OSTs, and the diff is expressible
    // via MetricsSnapshot::diff without panicking.
    let (_, base) = golden_scenario().run().expect("baseline runs");
    let (_, noisy) = interfered_scenario().run().expect("interfered run");
    let total = |s: &MetricsSnapshot| -> u64 {
        s.metrics
            .iter()
            .filter(|(k, _)| k.starts_with("pfs.ost") && k.ends_with(".enqueued"))
            .filter_map(|(k, _)| s.counter(k))
            .sum()
    };
    assert!(total(&noisy.metrics) > total(&base.metrics));
    let d = noisy.metrics.diff(&base.metrics);
    assert!(total(&d) > 0);
}
