//! End-to-end schema threading: the `FeatureSchema` a model is trained
//! under travels inside its `QIMODEL` file and is validated everywhere
//! the model could be bound to a pipeline — `ModelRegistry` load and
//! activate, and `Predictor::new` — **before** any inference runs. A
//! model trained under a different window length, an ablated feature
//! block, or no schema at all (legacy v1 files) is refused with a typed
//! error, never served with silently misaligned vectors.

use quanterference_repro::framework::prelude::*;
use quanterference_repro::ml::data::Dataset;
use quanterference_repro::ml::serialize::{model_from_text, model_to_text};
use quanterference_repro::ml::train::{train_with_schema, TrainConfig, TrainedModel};
use quanterference_repro::monitor::{FeatureConfig, FeatureSchema, Imputation, WindowConfig};
use quanterference_repro::serve::ModelRegistry;

const SERVERS: usize = 5;

/// A quick synthetic model stamped with the schema of the full
/// 1-second-window pipeline (42 features per server vector).
fn trained_under(schema: FeatureSchema) -> TrainedModel {
    let feats = schema.vector_len();
    let mut samples = Vec::new();
    let mut y = Vec::new();
    for i in 0..40 {
        let pos = i % 2 == 0;
        let v = if pos { 1.0f32 } else { -1.0 };
        samples.push(vec![v; SERVERS * feats]);
        y.push(usize::from(pos));
    }
    let data = Dataset::from_samples(samples, y, SERVERS);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    train_with_schema(&data, &cfg, schema).expect("schema matches the data")
}

fn schema_1s() -> FeatureSchema {
    FeatureSchema::current(
        WindowConfig::seconds(1),
        FeatureConfig::default(),
        Imputation::Zero,
    )
}

#[test]
fn qimodel_files_carry_their_schema_through_save_and_load() {
    let model = trained_under(schema_1s());
    let text = model_to_text(&model);
    assert!(
        text.lines().any(|l| l.starts_with("schema.window_ns ")),
        "schema section missing from the QIMODEL text"
    );
    let back = model_from_text(&text).expect("round trip");
    assert_eq!(back.schema(), &schema_1s());
}

#[test]
fn window_length_mismatch_is_rejected_before_any_inference() {
    // The serving side monitors with 2-second windows; the model was
    // trained on 1-second vectors. Same shape, same vector length —
    // only the schema knows they mean different things.
    let model = trained_under(schema_1s());
    let expected = FeatureSchema::current(
        WindowConfig::seconds(2),
        FeatureConfig::default(),
        Imputation::Zero,
    );
    let mut reg = ModelRegistry::new(model.shape(), expected);
    let text = model_to_text(&model);
    let err = reg.load_text(1, &text).expect_err("rejected at load");
    assert!(matches!(err, QiError::SchemaMismatch { .. }), "{err}");
    assert!(err.to_string().contains("window=2000ms"), "{err}");
    assert!(err.to_string().contains("window=1000ms"), "{err}");
    // Nothing was registered: there is no model an engine could run.
    assert!(reg.versions().is_empty());
    assert!(reg.active_model_mut().is_none());
}

#[test]
fn ablated_feature_block_mismatch_is_rejected() {
    // Model trained with the client block ablated; registry expects the
    // full feature set. Vector lengths differ AND the schema digests
    // differ — either way it must bounce with the typed error.
    let ablated = FeatureSchema::current(
        WindowConfig::seconds(1),
        FeatureConfig {
            client: false,
            server: true,
        },
        Imputation::Zero,
    );
    let model = trained_under(ablated);
    let mut reg = ModelRegistry::new(model.shape(), schema_1s());
    let err = reg.insert(1, model).expect_err("ablated schema rejected");
    // The shape gate fires first here (27 != 42 features); what matters
    // is that the model can never serve.
    assert!(err.to_string().contains("shape") || matches!(err, QiError::SchemaMismatch { .. }));
    assert!(reg.versions().is_empty());
}

#[test]
fn matching_schema_loads_activates_and_serves() {
    let model = trained_under(schema_1s());
    let mut reg = ModelRegistry::new(model.shape(), schema_1s());
    reg.load_text(1, &model_to_text(&model)).expect("loads");
    reg.activate(1).expect("activates");
    assert_eq!(reg.active_version(), Some(1));
    assert_eq!(reg.expected_schema(), &schema_1s());
}

#[test]
fn legacy_v1_text_is_a_clean_parse_error() {
    // A checksum-only v1 file (no schema section) must fail with a
    // descriptive ModelParseError — wrapped by the registry into a
    // Serve error — and never panic or load schema-less.
    let model = trained_under(schema_1s());
    let v1_body: String = model_to_text(&model)
        .lines()
        .filter(|l| !l.starts_with("schema.") && !l.starts_with("check "))
        .collect::<Vec<_>>()
        .join("\n")
        .replace("QIMODEL v2", "QIMODEL v1");
    // Recompute the trailing checksum so only the missing schema — not
    // file corruption — is what the parser trips on.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in v1_body.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let v1_text = format!("{v1_body}\ncheck {hash:016x}\n");
    assert!(model_from_text(&v1_text).is_err());
    let mut reg = ModelRegistry::new(model.shape(), schema_1s());
    let err = reg.load_text(3, &v1_text).expect_err("legacy rejected");
    assert!(err.to_string().contains("no feature schema"), "{err}");
    assert!(reg.versions().is_empty());
}
