//! Cross-crate integration tests: the full pipeline from simulated
//! cluster to trained predictor, exercised end to end at smoke scale.

use quanterference_repro::framework::prelude::*;
use quanterference_repro::monitor::{client_windows, server_windows};

fn small_scenario(target: WorkloadKind, seed: u64) -> Scenario {
    Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(target, seed)
    }
}

#[test]
fn baseline_and_interfered_runs_are_deterministic() {
    let s = small_scenario(WorkloadKind::IorEasyRead, 11).with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    let (app_a, a) = s.run().expect("first run");
    let (app_b, b) = s.run().expect("second run");
    assert_eq!(app_a, app_b);
    assert_eq!(a.ops.len(), b.ops.len());
    for (x, y) in a.ops.iter().zip(b.ops.iter()) {
        assert_eq!(x.token, y.token);
        assert_eq!(x.issued, y.issued);
        assert_eq!(x.completed, y.completed);
    }
    assert_eq!(a.samples.len(), b.samples.len());
    assert_eq!(a.end, b.end);
    // The telemetry snapshot must be value-equal AND byte-stable when
    // rendered — goldens and diffing rely on this.
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert_eq!(
        a.metrics.to_prometheus_text(),
        b.metrics.to_prometheus_text()
    );
}

#[test]
fn dataset_sweep_is_byte_identical_across_repeat_runs_and_thread_counts() {
    // Two generations in one process use differently seeded HashMaps
    // internally, so this catches any map-iteration-order dependence in
    // the sweep. Since the vendored rayon backend runs real worker
    // threads, the same sweep is also repeated under 1-, 2- and 8-thread
    // pools: the ordered result collection must make every output byte
    // equal to the sequential run regardless of execution interleaving.
    let mut spec = DatasetSpec::smoke();
    spec.include_baseline_windows = true;
    let a = generate(&spec).expect("first sweep");
    let b = generate(&spec).expect("second sweep");
    assert_eq!(a.data.y, b.data.y);
    assert_eq!(a.data.x.data(), b.data.x.data(), "feature bytes diverged");
    assert_eq!(a.meta.len(), b.meta.len());
    for (ma, mb) in a.meta.iter().zip(b.meta.iter()) {
        assert_eq!(ma.window, mb.window);
        assert_eq!(ma.seed, mb.seed);
    }
    for threads in [1, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        assert_eq!(pool.current_num_threads(), threads);
        // The pool override is scoped: it must not leak into callers.
        let ambient = rayon::current_num_threads();
        let c = generate_on(&pool, &spec).expect("pooled sweep");
        assert_eq!(rayon::current_num_threads(), ambient);
        assert_eq!(a.data.y, c.data.y, "labels diverged at {threads} threads");
        assert_eq!(
            a.data.x.data(),
            c.data.x.data(),
            "feature bytes diverged at {threads} threads"
        );
        assert_eq!(a.meta.len(), c.meta.len());
        for (ma, mc) in a.meta.iter().zip(c.meta.iter()) {
            assert_eq!((ma.window, ma.seed), (mc.window, mc.seed));
        }
    }
}

#[test]
fn interference_produces_positive_windows_and_baseline_does_not() {
    let s = small_scenario(WorkloadKind::IorEasyRead, 5).with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyRead,
        instances: 2,
        ranks: 2,
    });
    let (app, base) = s.run_baseline().expect("baseline runs");
    let (_, noisy) = s.run().expect("interfered run");
    let idx = BaselineIndex::new(&base, app);
    let wcfg = WindowConfig::seconds(1);
    // Self-comparison: every window degrades by exactly 1.0.
    let self_levels = window_degradation(&idx, &base, app, wcfg);
    assert!(!self_levels.is_empty());
    for (&w, &lv) in &self_levels {
        assert!((lv - 1.0).abs() < 1e-9, "window {w} self-level {lv}");
    }
    // Interfered: at least one window beyond 1.5x.
    let levels = window_degradation(&idx, &noisy, app, wcfg);
    let max = levels.values().cloned().fold(0.0, f64::max);
    assert!(max > 1.5, "max degradation only {max:.2}");
}

#[test]
fn monitors_cover_every_active_window() {
    let mut s = small_scenario(WorkloadKind::DlioUnet3d, 9);
    // Sample fast enough that even a sub-second run yields server data.
    s.cluster.sample_interval = qi_simkit::SimDuration::from_millis(100);
    let (app, trace) = s.run().expect("scenario runs");
    assert!(trace.completion_of(app).is_some());
    let wcfg = WindowConfig::seconds(1);
    let n_dev = s.cluster.n_devices();
    let cw = client_windows(&trace, wcfg, n_dev);
    let sw = server_windows(&trace.samples.to_vec(), wcfg);
    assert!(cw.keys().any(|(a, _)| *a == app));
    // Every client window of the target must have matching server
    // windows for the sampled period (except the final partial window).
    let max_sampled = trace
        .samples
        .iter()
        .map(|s| s.time)
        .max()
        .expect("samples exist");
    for &(a, w) in cw.keys() {
        if a != app {
            continue;
        }
        if wcfg.start_of(w + 1) > max_sampled {
            continue; // beyond the last full sampling interval
        }
        if w == 0 {
            continue; // first window has no preceding sample to delta
        }
        assert!(
            (0..n_dev).any(|d| sw.contains_key(&(quanterference_repro::pfs::ids::DeviceId(d), w))),
            "no server window for client window {w}"
        );
    }
}

#[test]
fn feature_blocks_have_stable_shape_across_runs() {
    let spec = DatasetSpec::smoke();
    let scenario =
        small_scenario(WorkloadKind::MdtHardWrite, 3).with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyWrite,
            instances: 1,
            ranks: 2,
        });
    let (app, trace) = scenario.run().expect("scenario runs");
    let vecs = window_vectors(
        &trace,
        app,
        spec.window,
        spec.features,
        scenario.cluster.n_devices(),
    );
    assert!(!vecs.is_empty());
    let expect = scenario.cluster.n_devices() as usize * spec.features.len();
    for v in vecs.values() {
        assert_eq!(v.len(), expect);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn full_pipeline_beats_majority_class_at_smoke_scale() {
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=6).collect();
    spec.intensities = vec![1, 2, 3];
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (gen, _, report) = train_and_evaluate(&spec, &tcfg, 17).expect("pipeline trains");
    let counts = gen.class_counts();
    assert!(
        counts[0] > 0 && counts[1] > 0,
        "degenerate dataset {counts:?}"
    );
    // The model must beat always-predicting the majority class.
    let majority = *counts.iter().max().expect("non-empty") as f64 / gen.data.len() as f64;
    assert!(
        report.cm.accuracy() > majority.min(0.95) - 0.1,
        "accuracy {:.3} vs majority {:.3}",
        report.cm.accuracy(),
        majority
    );
    assert!(report.headline_f1() > 0.3, "F1 {:.3}", report.headline_f1());
    // The pipeline surfaces its training/eval telemetry on the report.
    assert!(report.metrics.counter("ml.train.epochs_run").unwrap_or(0) > 0);
    assert!(report.metrics.gauge("ml.eval.accuracy").is_some());
    assert!(report.metrics.gauge("ml.eval.headline_f1").is_some());
}

#[test]
fn predictor_round_trips_through_blocks() {
    let spec = DatasetSpec::smoke();
    let tcfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let (gen, mut predictor, _) = train_and_evaluate(&spec, &tcfg, 3).expect("pipeline trains");
    // predict_block on a dataset row must equal the batch prediction.
    let sample = gen.data.sample_rows(0);
    let flat: Vec<f32> = sample.data().to_vec();
    let via_block = predictor
        .predict_block(&flat)
        .expect("row has the right shape");
    assert!(via_block < 2);
}

#[test]
fn every_registered_workload_completes_on_the_small_cluster() {
    for kind in WorkloadKind::IO500
        .into_iter()
        .chain(WorkloadKind::DLIO)
        .chain(WorkloadKind::APPS)
        .chain(WorkloadKind::IO500_EXTENDED)
    {
        let s = small_scenario(kind, 23);
        let (app, trace) = s.run().expect("workload completes");
        assert!(
            trace.completion_of(app).is_some(),
            "{kind} did not complete"
        );
        assert!(!trace.ops.is_empty(), "{kind} issued no ops");
    }
}
