//! Integration test: the smoke-scale Table I must reproduce the paper's
//! qualitative interference structure (who hurts whom).

use quanterference_repro::framework::experiments::{table_one, TableOneConfig};
use quanterference_repro::framework::WorkloadKind::*;

#[test]
fn table_one_reproduces_the_papers_shape() {
    let table = table_one(&TableOneConfig::smoke()).expect("smoke table generates");
    let cell = |a, b| table.cell(a, b).expect("cell exists");

    // 1. Streaming reads suffer from read noise, not from write noise.
    assert!(
        cell(IorEasyRead, IorEasyRead) > 1.5,
        "read-read {:.2}",
        cell(IorEasyRead, IorEasyRead)
    );
    assert!(
        cell(IorEasyRead, IorEasyWrite) < cell(IorEasyRead, IorEasyRead),
        "write noise should hurt reads less than read noise"
    );
    assert!(
        cell(IorEasyRead, MdtEasyWrite) < 1.3,
        "metadata noise should barely touch streaming reads: {:.2}",
        cell(IorEasyRead, MdtEasyWrite)
    );

    // 2. Bulk writes suffer from other writes far more than from
    //    metadata noise.
    assert!(cell(IorEasyWrite, IorEasyWrite) > 2.0);
    assert!(cell(IorEasyWrite, IorHardWrite) > 2.0);
    assert!(cell(IorEasyWrite, MdtEasyWrite) < 1.5);

    // 3. Tiny writes (mdtest-hard bodies) drown behind bulk writers.
    assert!(
        cell(MdtHardWrite, IorEasyWrite) > 2.0,
        "mdt-hard-write under bulk writes {:.2}",
        cell(MdtHardWrite, IorEasyWrite)
    );

    // 4. mdt-hard-read (cached bodies + lookups) is insensitive to data
    //    noise but feels metadata mutations.
    assert!(cell(MdtHardRead, IorEasyWrite) < 1.5);
    assert!(cell(MdtHardRead, MdtEasyWrite) > cell(MdtHardRead, IorHardWrite));

    // 5. Under one fixed noise type, different tasks span a wide
    //    slowdown range (the paper's phase-disproportionality claim).
    let col: Vec<f64> = table.tasks.iter().map(|&t| cell(t, IorEasyWrite)).collect();
    let max = col.iter().cloned().fold(f64::MIN, f64::max);
    let min = col.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min > 2.0,
        "slowdowns under ior-easy-write too uniform: {min:.2}..{max:.2}"
    );

    // Baselines exist and are positive for every task.
    for (i, &b) in table.baseline_secs.iter().enumerate() {
        assert!(b > 0.0, "task {} has no baseline", table.tasks[i]);
    }
}
