//! Property-based tests over cross-crate invariants: trace sanity, label
//! algebra, feature assembly, and monitor aggregation consistency.

use proptest::prelude::*;

use quanterference_repro::framework::prelude::*;
use quanterference_repro::monitor::client_windows;
use quanterference_repro::pfs::config::ClusterConfig;
use quanterference_repro::pfs::ids::DeviceId;

fn quick_run(
    target: WorkloadKind,
    seed: u64,
    noise: Option<(WorkloadKind, u32)>,
) -> (qi_pfs::ids::AppId, qi_pfs::ops::RunTrace, Scenario) {
    let mut s = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(target, seed)
    };
    if let Some((kind, instances)) = noise {
        s = s.with_interference(InterferenceSpec {
            kind,
            instances,
            ranks: 2,
        });
    }
    let (app, trace) = s.run().expect("scenario runs");
    (app, trace, s)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full simulation
        .. ProptestConfig::default()
    })]

    /// Every trace is causally sane: ops complete after they are issued,
    /// completion order matches the record order, and rank sequences
    /// have no gaps.
    #[test]
    fn traces_are_causally_sane(seed in 1u64..500, noisy in proptest::bool::ANY) {
        let noise = noisy.then_some((WorkloadKind::IorEasyWrite, 1));
        let (app, trace, _) = quick_run(WorkloadKind::IorEasyRead, seed, noise);
        let mut prev_completion = qi_simkit::SimTime::ZERO;
        for op in &trace.ops {
            prop_assert!(op.completed > op.issued);
            prop_assert!(op.completed >= prev_completion);
            prev_completion = op.completed;
        }
        // Per-rank sequence numbers are dense from 0.
        let mut by_rank: std::collections::HashMap<(u32, u32), Vec<u64>> = Default::default();
        for op in trace.ops_of(app) {
            by_rank.entry((op.token.app.0, op.token.rank)).or_default().push(op.token.seq);
        }
        for seqs in by_rank.values_mut() {
            seqs.sort_unstable();
            for (i, &s) in seqs.iter().enumerate() {
                prop_assert_eq!(s, i as u64);
            }
        }
    }

    /// The op *sequence* of the target is invariant under interference
    /// (the property §III-D's labelling depends on).
    #[test]
    fn op_sequences_are_interference_invariant(
        seed in 1u64..200,
        instances in 1u32..3,
        kind_idx in 0usize..7,
    ) {
        let kind = WorkloadKind::IO500[kind_idx];
        let (app, base, _) = quick_run(kind, seed, None);
        let (_, noisy, _) = quick_run(kind, seed, Some((WorkloadKind::IorEasyWrite, instances)));
        let mut b: Vec<_> = base.ops_of(app).map(|o| (o.token, o.kind, o.bytes)).collect();
        let mut n: Vec<_> = noisy.ops_of(app).map(|o| (o.token, o.kind, o.bytes)).collect();
        b.sort_by_key(|(t, _, _)| (t.rank, t.seq));
        n.sort_by_key(|(t, _, _)| (t.rank, t.seq));
        prop_assert_eq!(b, n);
    }

    /// Degradation labels are scale-consistent: self-comparison is
    /// exactly 1.0 in every window.
    #[test]
    fn self_degradation_is_unity(seed in 1u64..300, kind_idx in 0usize..7) {
        let kind = WorkloadKind::IO500[kind_idx];
        let (app, trace, _) = quick_run(kind, seed, None);
        let idx = BaselineIndex::new(&trace, app);
        let levels = window_degradation(&idx, &trace, app, WindowConfig::seconds(1));
        for (&w, &lv) in &levels {
            prop_assert!((lv - 1.0).abs() < 1e-9, "window {} level {}", w, lv);
        }
    }

    /// Client windows conserve op counts and bytes: summing all windows
    /// reproduces the trace totals.
    #[test]
    fn client_windows_conserve_totals(seed in 1u64..300) {
        let (app, trace, s) = quick_run(WorkloadKind::DlioBert, seed, None);
        let cw = client_windows(&trace, WindowConfig::seconds(1), s.cluster.n_devices());
        let win_ops: u64 = cw.iter().filter(|((a, _), _)| *a == app).map(|(_, w)| w.total_ops()).sum();
        let win_bytes: u64 = cw.iter().filter(|((a, _), _)| *a == app).map(|(_, w)| w.total_bytes()).sum();
        let trace_ops = trace.ops_of(app).count() as u64;
        let trace_bytes: u64 = trace.ops_of(app).map(|o| o.bytes).sum();
        prop_assert_eq!(win_ops, trace_ops);
        prop_assert_eq!(win_bytes, trace_bytes);
    }

    /// Server counters are monotone over time on every device.
    #[test]
    fn server_counters_are_monotone(seed in 1u64..300, noisy in proptest::bool::ANY) {
        let noise = noisy.then_some((WorkloadKind::MdtHardWrite, 2));
        let (_, trace, s) = quick_run(WorkloadKind::IorEasyWrite, seed, noise);
        for d in 0..s.cluster.n_devices() {
            let dev = DeviceId(d);
            let mut prev: Option<qi_pfs::queue::DeviceCounters> = None;
            for smp in trace.samples.iter().filter(|x| x.dev == dev) {
                if let Some(p) = prev {
                    let c = smp.counters;
                    prop_assert!(c.reads_completed >= p.reads_completed);
                    prop_assert!(c.writes_completed >= p.writes_completed);
                    prop_assert!(c.sectors_read >= p.sectors_read);
                    prop_assert!(c.sectors_written >= p.sectors_written);
                    prop_assert!(c.enqueued >= p.enqueued);
                    prop_assert!(c.wait_ns >= p.wait_ns);
                    prop_assert!(c.weighted_depth_ns >= p.weighted_depth_ns);
                }
                prev = Some(smp.counters);
            }
        }
    }

    /// Feature vectors never contain NaN/inf, at any window size.
    #[test]
    fn features_are_always_finite(seed in 1u64..200, window_ms in 250u64..4000) {
        let (app, trace, s) = quick_run(
            WorkloadKind::Enzo,
            seed,
            Some((WorkloadKind::IorEasyWrite, 1)),
        );
        let wcfg = WindowConfig {
            window: qi_simkit::SimDuration::from_millis(window_ms),
        };
        let vecs = window_vectors(&trace, app, wcfg, FeatureConfig::default(), s.cluster.n_devices());
        for v in vecs.values() {
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }
}
