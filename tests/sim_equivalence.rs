//! Differential replay harness for the simulator core.
//!
//! The calendar event queue and the arena-routed op tables are pure
//! performance work: they must not move a single event. This harness
//! proves it by running the same seeded scenario grid — healthy and
//! faulted, under 1/2/8-thread rayon pools — through the old-path
//! equivalent backends (`Heap`, and the naive sorted-`Vec` `Reference`
//! test double) and the new `Calendar` core, asserting bit-identical
//! [`RunTrace`]s, telemetry JSON, and dataset feature blocks.

use qi_simkit::{QueueBackend, SimDuration, SimTime};
use quanterference_repro::framework::prelude::*;
use quanterference_repro::pfs::ids::AppId;

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Every queue backend the cluster can run on. `Calendar` first: it is
/// the default and the golden the others are compared against.
const BACKENDS: [QueueBackend; 3] = [
    QueueBackend::Calendar,
    QueueBackend::Heap,
    QueueBackend::Reference,
];

const THREADS: [usize; 3] = [1, 2, 8];

/// A mixed read/metadata scenario on the small cluster, optionally under
/// a fault plan exercising the retry machinery (drops → timeouts →
/// jittered resends), a degraded disk, and an MDS lock storm.
fn scenario(backend: QueueBackend, faulted: bool) -> Scenario {
    let mut cluster = ClusterConfig::small();
    cluster.event_queue = backend;
    let s = Scenario {
        cluster,
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 33)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::MdtHardWrite,
        instances: 1,
        ranks: 2,
    });
    if !faulted {
        return s;
    }
    s.with_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 0,
                factor: 3.0,
                from: t(1),
                until: t(20),
            })
            .with(FaultEvent::RpcDrop {
                src: None,
                dst: None,
                prob: 0.05,
                from: t(0),
                until: t(60),
            })
            .with(FaultEvent::MdsLockStorm {
                from: t(2),
                until: t(10),
                revoke_factor: 3.0,
            }),
    )
}

/// Field-by-field bit equality of two run traces, including the
/// rendered telemetry JSON (the byte-exact surface the goldens pin).
fn assert_traces_identical(a: &RunTrace, b: &RunTrace, ctx: &str) {
    assert_eq!(a.ops, b.ops, "{ctx}: op records diverged");
    assert_eq!(a.rpcs, b.rpcs, "{ctx}: rpc records diverged");
    assert_eq!(a.samples, b.samples, "{ctx}: server samples diverged");
    assert_eq!(a.app_completion, b.app_completion, "{ctx}: completions");
    assert_eq!(a.failed_ops, b.failed_ops, "{ctx}: failed ops diverged");
    assert_eq!(a.end, b.end, "{ctx}: end time diverged");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{ctx}: event count diverged"
    );
    assert_eq!(a.metrics, b.metrics, "{ctx}: telemetry diverged");
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "{ctx}: telemetry JSON diverged"
    );
}

/// Run `scenario(backend, faulted)` on every thread count in the grid
/// and assert each result is bit-identical to `golden`.
fn assert_backend_matches_golden(golden: &(AppId, RunTrace), backend: QueueBackend, faulted: bool) {
    let s = scenario(backend, faulted);
    for threads in THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        let (app, trace) = pool.install(|| s.run()).expect("scenario runs");
        let ctx = format!("{backend:?} @ {threads} threads (faulted={faulted})");
        assert_eq!(golden.0, app, "{ctx}: app id diverged");
        assert_traces_identical(&golden.1, &trace, &ctx);
    }
}

#[test]
fn healthy_replay_is_byte_identical_across_backends_and_threads() {
    let golden = scenario(QueueBackend::Calendar, false)
        .run()
        .expect("golden healthy run");
    assert!(!golden.1.ops.is_empty(), "golden run must do real work");
    assert!(!golden.1.samples.is_empty(), "golden run must sample");
    for backend in BACKENDS {
        assert_backend_matches_golden(&golden, backend, false);
    }
}

#[test]
fn faulted_replay_is_byte_identical_across_backends_and_threads() {
    let golden = scenario(QueueBackend::Calendar, true)
        .run()
        .expect("golden faulted run");
    // The plan visibly did something, or this test proves nothing.
    assert!(golden.1.metrics.counter("pfs.rpc.dropped").unwrap_or(0) > 0);
    assert!(golden.1.metrics.counter("pfs.rpc.retries").unwrap_or(0) > 0);
    for backend in BACKENDS {
        assert_backend_matches_golden(&golden, backend, true);
    }
}

/// A tiny dataset sweep (healthy + slow-OST conditions) whose feature
/// matrix and labels must come out bit-identical on every backend.
fn tiny_spec(backend: QueueBackend) -> DatasetSpec {
    let mut spec = DatasetSpec::smoke();
    spec.cluster.event_queue = backend;
    spec.targets = vec![WorkloadKind::IorEasyRead];
    spec.noise_kinds = vec![WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1];
    spec.seeds = vec![1, 2];
    spec.include_baseline_windows = false;
    spec.faults = vec![
        FaultSpec::Healthy,
        FaultSpec::SlowOsts {
            factor: 3.0,
            from_s: 0,
            dur_s: 60,
        },
    ];
    spec
}

#[test]
fn dataset_feature_blocks_are_bit_identical_across_backends() {
    let golden = generate(&tiny_spec(QueueBackend::Calendar)).expect("golden sweep");
    assert!(!golden.data.y.is_empty(), "sweep must produce windows");
    for backend in [QueueBackend::Heap, QueueBackend::Reference] {
        for threads in THREADS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("explicit thread counts always build");
            let spec = tiny_spec(backend);
            let got = generate_on(&pool, &spec).expect("pooled sweep");
            let ctx = format!("{backend:?} @ {threads} threads");
            assert_eq!(golden.data.y, got.data.y, "{ctx}: labels diverged");
            assert_eq!(
                golden.data.x.data(),
                got.data.x.data(),
                "{ctx}: feature bytes diverged"
            );
            assert_eq!(golden.meta.len(), got.meta.len(), "{ctx}: window metadata");
            for (ma, mb) in golden.meta.iter().zip(got.meta.iter()) {
                assert_eq!(
                    (ma.window, ma.seed, ma.fault),
                    (mb.window, mb.seed, mb.fault),
                    "{ctx}: window metadata diverged"
                );
            }
        }
    }
}
