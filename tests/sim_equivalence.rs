//! Differential replay harness for the simulator core.
//!
//! The calendar event queue and the arena-routed op tables are pure
//! performance work: they must not move a single event. This harness
//! proves it by running the same seeded scenario grid — healthy and
//! faulted, under 1/2/8-thread rayon pools — through the old-path
//! equivalent backends (`Heap`, and the naive sorted-`Vec` `Reference`
//! test double) and the new `Calendar` core, asserting bit-identical
//! [`RunTrace`]s, telemetry JSON, and dataset feature blocks.

use qi_simkit::{QueueBackend, SimDuration, SimTime};
use quanterference_repro::framework::prelude::*;
use quanterference_repro::pfs::ids::AppId;

/// Shard counts for the parallel-simulator sweep. The sweep cluster has
/// four OSS nodes, so every count here is a real partition (no clamp).
const SHARDS: [u32; 2] = [2, 4];

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Every queue backend the cluster can run on. `Calendar` first: it is
/// the default and the golden the others are compared against.
const BACKENDS: [QueueBackend; 3] = [
    QueueBackend::Calendar,
    QueueBackend::Heap,
    QueueBackend::Reference,
];

const THREADS: [usize; 3] = [1, 2, 8];

/// A mixed read/metadata scenario on the small cluster, optionally under
/// a fault plan exercising the retry machinery (drops → timeouts →
/// jittered resends), a degraded disk, and an MDS lock storm.
fn scenario(backend: QueueBackend, faulted: bool) -> Scenario {
    let mut cluster = ClusterConfig::small();
    cluster.event_queue = backend;
    let s = Scenario {
        cluster,
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 33)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::MdtHardWrite,
        instances: 1,
        ranks: 2,
    });
    if !faulted {
        return s;
    }
    s.with_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 0,
                factor: 3.0,
                from: t(1),
                until: t(20),
            })
            .with(FaultEvent::RpcDrop {
                src: None,
                dst: None,
                prob: 0.05,
                from: t(0),
                until: t(60),
            })
            .with(FaultEvent::MdsLockStorm {
                from: t(2),
                until: t(10),
                revoke_factor: 3.0,
            }),
    )
}

/// Field-by-field bit equality of two run traces, including the
/// rendered telemetry JSON (the byte-exact surface the goldens pin).
fn assert_traces_identical(a: &RunTrace, b: &RunTrace, ctx: &str) {
    assert_traces_equivalent(a, b, ctx);
    assert_eq!(
        a.events_processed, b.events_processed,
        "{ctx}: event count diverged"
    );
}

/// Bit equality of everything a run *observes* — ops, RPCs, samples,
/// directives, telemetry JSON — but not `events_processed`. Different
/// shard counts process different bookkeeping events (one sampler chain
/// per shard, admission-recheck events on shard queues), so the raw
/// event count is the one trace field that legitimately varies across
/// shard counts while every observable stays bit-identical.
fn assert_traces_equivalent(a: &RunTrace, b: &RunTrace, ctx: &str) {
    assert_eq!(a.ops, b.ops, "{ctx}: op records diverged");
    assert_eq!(a.rpcs, b.rpcs, "{ctx}: rpc records diverged");
    assert_eq!(a.samples, b.samples, "{ctx}: server samples diverged");
    assert_eq!(a.directives, b.directives, "{ctx}: directives diverged");
    assert_eq!(a.app_completion, b.app_completion, "{ctx}: completions");
    assert_eq!(a.failed_ops, b.failed_ops, "{ctx}: failed ops diverged");
    assert_eq!(a.end, b.end, "{ctx}: end time diverged");
    assert_eq!(a.metrics, b.metrics, "{ctx}: telemetry diverged");
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "{ctx}: telemetry JSON diverged"
    );
}

/// Run `scenario(backend, faulted)` on every thread count in the grid
/// and assert each result is bit-identical to `golden`.
fn assert_backend_matches_golden(golden: &(AppId, RunTrace), backend: QueueBackend, faulted: bool) {
    let s = scenario(backend, faulted);
    for threads in THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        let (app, trace) = pool.install(|| s.run()).expect("scenario runs");
        let ctx = format!("{backend:?} @ {threads} threads (faulted={faulted})");
        assert_eq!(golden.0, app, "{ctx}: app id diverged");
        assert_traces_identical(&golden.1, &trace, &ctx);
    }
}

#[test]
fn healthy_replay_is_byte_identical_across_backends_and_threads() {
    let golden = scenario(QueueBackend::Calendar, false)
        .run()
        .expect("golden healthy run");
    assert!(!golden.1.ops.is_empty(), "golden run must do real work");
    assert!(!golden.1.samples.is_empty(), "golden run must sample");
    for backend in BACKENDS {
        assert_backend_matches_golden(&golden, backend, false);
    }
}

#[test]
fn faulted_replay_is_byte_identical_across_backends_and_threads() {
    let golden = scenario(QueueBackend::Calendar, true)
        .run()
        .expect("golden faulted run");
    // The plan visibly did something, or this test proves nothing.
    assert!(golden.1.metrics.counter("pfs.rpc.dropped").unwrap_or(0) > 0);
    assert!(golden.1.metrics.counter("pfs.rpc.retries").unwrap_or(0) > 0);
    for backend in BACKENDS {
        assert_backend_matches_golden(&golden, backend, true);
    }
}

/// True when `QI_SKIP_PARSIM=1` asks the bench pipeline to skip the
/// parallel-simulator sweep (both these tests and the bench curve).
fn skip_parsim() -> bool {
    let skip = std::env::var("QI_SKIP_PARSIM").map(|v| v == "1") == Ok(true);
    if skip {
        eprintln!("skipping sharded replay sweep (QI_SKIP_PARSIM=1)");
    }
    skip
}

/// The shard-sweep scenario: the mixed read/metadata workload on a
/// four-OSS cluster so that `sim_shards = 4` is a genuine four-way
/// partition, with the same optional fault plan as `scenario`.
fn sharded_scenario(backend: QueueBackend, faulted: bool, shards: u32) -> Scenario {
    let mut s = scenario(backend, faulted);
    s.cluster.oss_nodes = 4;
    s.cluster.sim_shards = shards;
    s
}

/// The parallel-simulator differential replay: at every shard count the
/// observable trace must be bit-identical to the sequential (one-shard)
/// run of the same scenario, on every queue backend and rayon pool
/// size, healthy and faulted. Within a fixed shard count the *entire*
/// trace — including the raw event count — must replay exactly.
#[test]
fn sharded_replay_is_byte_identical_across_backends_and_threads() {
    if skip_parsim() {
        return;
    }
    for faulted in [false, true] {
        let sequential = sharded_scenario(QueueBackend::Calendar, faulted, 1)
            .run()
            .expect("sequential golden run");
        assert!(!sequential.1.ops.is_empty(), "golden run must do real work");
        if faulted {
            assert!(
                sequential.1.metrics.counter("pfs.rpc.dropped").unwrap_or(0) > 0,
                "the fault plan must visibly bite"
            );
        }
        for shards in SHARDS {
            let golden = sharded_scenario(QueueBackend::Calendar, faulted, shards)
                .run()
                .expect("sharded golden run");
            assert_eq!(sequential.0, golden.0, "app id diverged");
            assert_traces_equivalent(
                &sequential.1,
                &golden.1,
                &format!("{shards} shards vs sequential (faulted={faulted})"),
            );
            for backend in BACKENDS {
                let s = sharded_scenario(backend, faulted, shards);
                for threads in THREADS {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("explicit thread counts always build");
                    let (app, trace) = pool.install(|| s.run()).expect("scenario runs");
                    let ctx = format!(
                        "{backend:?} @ {threads} threads, {shards} shards (faulted={faulted})"
                    );
                    assert_eq!(golden.0, app, "{ctx}: app id diverged");
                    assert_traces_identical(&golden.1, &trace, &ctx);
                }
            }
        }
    }
}

/// One predictorless uniform-throttle controlled run of the shard-sweep
/// scenario — the controller tick path pins epoch boundaries to the
/// control window, so the controlled leg exercises the mini-epoch
/// schedule the healthy leg never touches.
fn sharded_controlled_run(faulted: bool, shards: u32) -> (AppId, RunTrace) {
    let s = sharded_scenario(QueueBackend::Calendar, faulted, shards);
    let ctl = ControlLoop::builder()
        .policy(UniformThrottle::new(noise_app_ids(&s), 5.0e6).expect("valid policy"))
        .window(WindowConfig::millis(100))
        .build()
        .expect("uniform loop builds");
    s.run_with(|cl| cl.install_controller(Box::new(ctl)))
        .expect("controlled run completes")
}

/// The controlled leg of the shard sweep: directives, admission caps,
/// and the epoch mini-tick schedule must leave every observable — the
/// applied directive sequence included — bit-identical to the
/// sequential controlled run, at every shard count and pool size.
#[test]
fn sharded_controlled_replay_is_byte_identical() {
    if skip_parsim() {
        return;
    }
    for faulted in [false, true] {
        let sequential = sharded_controlled_run(faulted, 1);
        let ctx = format!("controlled sequential (faulted={faulted})");
        assert!(
            !sequential.1.directives.is_empty(),
            "{ctx}: controller must actually act or this proves nothing"
        );
        for shards in SHARDS {
            let golden = sharded_controlled_run(faulted, shards);
            assert_eq!(sequential.0, golden.0, "app id diverged");
            assert_traces_equivalent(
                &sequential.1,
                &golden.1,
                &format!("controlled {shards} shards vs sequential (faulted={faulted})"),
            );
            for threads in THREADS {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("explicit thread counts always build");
                let got = pool.install(|| sharded_controlled_run(faulted, shards));
                assert_eq!(golden.0, got.0, "app id diverged");
                assert_traces_identical(
                    &golden.1,
                    &got.1,
                    &format!("controlled {shards} shards @ {threads} threads (faulted={faulted})"),
                );
            }
        }
    }
}

/// A tiny dataset sweep (healthy + slow-OST conditions) whose feature
/// matrix and labels must come out bit-identical on every backend.
fn tiny_spec(backend: QueueBackend) -> DatasetSpec {
    let mut spec = DatasetSpec::smoke();
    spec.cluster.event_queue = backend;
    spec.targets = vec![WorkloadKind::IorEasyRead];
    spec.noise_kinds = vec![WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1];
    spec.seeds = vec![1, 2];
    spec.include_baseline_windows = false;
    spec.faults = vec![
        FaultSpec::Healthy,
        FaultSpec::SlowOsts {
            factor: 3.0,
            from_s: 0,
            dur_s: 60,
        },
    ];
    spec
}

#[test]
fn dataset_feature_blocks_are_bit_identical_across_backends() {
    let golden = generate(&tiny_spec(QueueBackend::Calendar)).expect("golden sweep");
    assert!(!golden.data.y.is_empty(), "sweep must produce windows");
    for backend in [QueueBackend::Heap, QueueBackend::Reference] {
        for threads in THREADS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("explicit thread counts always build");
            let spec = tiny_spec(backend);
            let got = generate_on(&pool, &spec).expect("pooled sweep");
            let ctx = format!("{backend:?} @ {threads} threads");
            assert_eq!(golden.data.y, got.data.y, "{ctx}: labels diverged");
            assert_eq!(
                golden.data.x.data(),
                got.data.x.data(),
                "{ctx}: feature bytes diverged"
            );
            assert_eq!(golden.meta.len(), got.meta.len(), "{ctx}: window metadata");
            for (ma, mb) in golden.meta.iter().zip(got.meta.iter()) {
                assert_eq!(
                    (ma.window, ma.seed, ma.fault),
                    (mb.window, mb.seed, mb.fault),
                    "{ctx}: window metadata diverged"
                );
            }
        }
    }
}
