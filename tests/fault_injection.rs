//! Integration tests for the deterministic fault-injection layer: the
//! builder's validation surface, client retry/deadline behaviour under
//! injected RPC loss, byte-exact replay of faulted runs (including
//! telemetry JSON) across reruns and thread counts, and the end-to-end
//! effect of a SlowDisk plan on the dataset's label distribution.

use qi_simkit::{SimDuration, SimTime};
use quanterference_repro::framework::prelude::*;
use quanterference_repro::pfs::ids::{AppId, FileKey, NodeId};
use quanterference_repro::pfs::ops::{IoOp, ProgramStep};

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn builder_surfaces_config_and_plan_errors() {
    // Malformed cluster shape -> QiError::Config at build time.
    let mut cfg = ClusterConfig::small();
    cfg.client_nodes = 0;
    let err = match Cluster::builder().config(cfg).build() {
        Ok(_) => panic!("zero client nodes must be rejected"),
        Err(e) => e,
    };
    assert!(matches!(err, QiError::Config(_)), "got {err:?}");
    assert!(!err.to_string().is_empty());

    // A plan referencing hardware the cluster doesn't have ->
    // QiError::FaultPlan, not a mid-run panic.
    let cfg = ClusterConfig::small();
    let plan = FaultPlan::new().with(FaultEvent::SlowDisk {
        dev: cfg.n_devices(),
        factor: 2.0,
        from: t(0),
        until: t(5),
    });
    let err = match Cluster::builder().config(cfg).fault_plan(plan).build() {
        Ok(_) => panic!("out-of-range device must be rejected"),
        Err(e) => e,
    };
    assert!(matches!(err, QiError::FaultPlan(_)), "got {err:?}");
    assert!(err.to_string().contains("out of range"), "{err}");

    // A healthy builder still works with both knobs exercised.
    assert!(Cluster::builder()
        .config(ClusterConfig::small())
        .seed(3)
        .fault_plan(FaultPlan::new())
        .retry_policy(RetryPolicy::default())
        .build()
        .is_ok());
}

/// One rank issuing a single 1 MiB write, then finishing.
fn one_write_program() -> Box<dyn quanterference_repro::pfs::ops::RankProgram> {
    let mut issued = false;
    Box::new(move |_now: SimTime| {
        if issued {
            ProgramStep::Finished
        } else {
            issued = true;
            ProgramStep::Op(IoOp::Write {
                file: FileKey {
                    app: AppId(0),
                    num: 1,
                },
                offset: 0,
                len: 1024 * 1024,
            })
        }
    })
}

#[test]
fn op_deadline_is_exceeded_mid_retry_under_total_rpc_loss() {
    // Every client request is lost; the op can only end via the retry
    // machinery. With a per-op deadline shorter than the retry budget,
    // the op must die on the deadline path, mid-retry.
    let plan = FaultPlan::new().with(FaultEvent::RpcDrop {
        src: None,
        dst: None,
        prob: 1.0,
        from: t(0),
        until: t(30),
    });
    let retry = RetryPolicy {
        max_retries: 16,
        rpc_timeout: SimDuration::from_millis(10),
        backoff_base: SimDuration::from_millis(2),
        backoff_cap: SimDuration::from_millis(8),
        jitter_frac: 0.2,
        op_deadline: Some(SimDuration::from_millis(35)),
    };
    let mut cl = match Cluster::builder()
        .config(ClusterConfig::small())
        .seed(5)
        .fault_plan(plan)
        .retry_policy(retry)
        .build()
    {
        Ok(cl) => cl,
        Err(e) => panic!("faulted cluster builds: {e}"),
    };
    let app = cl.add_app("doomed", vec![one_write_program()], &[NodeId(0)]);
    let trace = cl.run(t(2));

    assert!(
        !trace.failed_ops.is_empty(),
        "the write must be recorded as failed"
    );
    // The failed op never shows up as a completed operation.
    assert!(
        trace.ops_of(app).next().is_none(),
        "no op can complete when every RPC is dropped"
    );
    let counter = |k: &str| trace.metrics.counter(k).unwrap_or(0);
    assert!(
        counter("pfs.rpc.dropped") >= 2,
        "drops: {}",
        counter("pfs.rpc.dropped")
    );
    assert!(
        counter("pfs.rpc.timeouts") >= 2,
        "timeouts: {}",
        counter("pfs.rpc.timeouts")
    );
    assert!(
        counter("pfs.rpc.retries") >= 1,
        "the op must have been resent at least once before the deadline"
    );
    assert_eq!(
        counter("pfs.rpc.deadline_exceeded"),
        1,
        "exactly the one op hits its deadline"
    );
    assert_eq!(counter("pfs.rpc.failed_ops"), trace.failed_ops.len() as u64);
}

/// A scenario that exercises every fault path at once: degraded disks,
/// lossy links (and thus jittered retries), and an MDS lock storm.
fn chaotic_scenario() -> Scenario {
    let cluster = ClusterConfig::small();
    let plan = FaultPlan::new()
        .with(FaultEvent::SlowDisk {
            dev: 0,
            factor: 3.0,
            from: t(1),
            until: t(20),
        })
        .with(FaultEvent::RpcDrop {
            src: None,
            dst: None,
            prob: 0.05,
            from: t(0),
            until: t(60),
        })
        .with(FaultEvent::MdsLockStorm {
            from: t(2),
            until: t(10),
            revoke_factor: 3.0,
        });
    Scenario {
        cluster,
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 21)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::MdtHardWrite,
        instances: 1,
        ranks: 2,
    })
    .with_fault_plan(plan)
}

#[test]
fn faulted_replay_is_byte_identical_across_reruns_and_thread_counts() {
    // Retry jitter, drop rolls, and fault scheduling all come from the
    // cluster's dedicated RNG substream, so an identical seed + plan
    // must replay byte-for-byte — regardless of how many worker threads
    // the ambient rayon pool happens to have.
    let s = chaotic_scenario();
    let (app_a, a) = s.run().expect("faulted scenario runs");
    // The plan visibly did something, or this test proves nothing.
    assert!(a.metrics.counter("pfs.rpc.dropped").unwrap_or(0) > 0);
    assert!(a.metrics.counter("pfs.rpc.retries").unwrap_or(0) > 0);

    let mut runs = vec![s.run().expect("rerun")];
    for threads in [1, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        runs.push(pool.install(|| s.run()).expect("pooled run"));
    }
    for (app_b, b) in &runs {
        assert_eq!(app_a, *app_b);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(b.ops.iter()) {
            assert_eq!(x.token, y.token);
            assert_eq!(x.issued, y.issued);
            assert_eq!(x.completed, y.completed);
        }
        assert_eq!(a.rpcs.len(), b.rpcs.len());
        assert_eq!(a.failed_ops, b.failed_ops);
        assert_eq!(a.end, b.end);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(
            a.metrics.to_json(),
            b.metrics.to_json(),
            "telemetry JSON diverged"
        );
    }
}

fn tiny_faulted_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::smoke();
    spec.targets = vec![WorkloadKind::IorEasyRead];
    spec.noise_kinds = vec![WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1];
    spec.seeds = vec![1, 2];
    spec.include_baseline_windows = false;
    spec.faults = vec![
        FaultSpec::Healthy,
        FaultSpec::SlowOsts {
            factor: 3.0,
            from_s: 0,
            dur_s: 60,
        },
    ];
    spec
}

#[test]
fn faulted_sweep_is_byte_identical_across_thread_counts() {
    let spec = tiny_faulted_spec();
    let a = generate(&spec).expect("first faulted sweep");
    let b = generate(&spec).expect("second faulted sweep");
    assert_eq!(a.data.y, b.data.y);
    assert_eq!(a.data.x.data(), b.data.x.data(), "feature bytes diverged");
    for threads in [1, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        let c = generate_on(&pool, &spec).expect("pooled faulted sweep");
        assert_eq!(a.data.y, c.data.y, "labels diverged at {threads} threads");
        assert_eq!(
            a.data.x.data(),
            c.data.x.data(),
            "feature bytes diverged at {threads} threads"
        );
        assert_eq!(a.meta.len(), c.meta.len());
        for (ma, mc) in a.meta.iter().zip(c.meta.iter()) {
            assert_eq!(
                (ma.window, ma.seed, ma.fault),
                (mc.window, mc.seed, mc.fault)
            );
        }
    }
    // Both fault conditions actually contributed samples.
    assert!(a.meta.iter().any(|m| m.fault == FaultSpec::Healthy));
    assert!(a
        .meta
        .iter()
        .any(|m| matches!(m.fault, FaultSpec::SlowOsts { .. })));
}

#[test]
fn slow_disk_plan_shifts_the_label_distribution() {
    // Labels compare each (possibly faulted) run against a HEALTHY
    // baseline of the same scenario, so degraded hardware must surface
    // as a higher share of high-slowdown windows than the identical
    // fault-free sweep.
    let mut healthy = tiny_faulted_spec();
    healthy.faults = vec![FaultSpec::Healthy];
    let mut faulted = tiny_faulted_spec();
    faulted.faults = vec![FaultSpec::SlowOsts {
        factor: 6.0,
        from_s: 0,
        dur_s: 120,
    }];

    let frac_degraded = |spec: &DatasetSpec| -> f64 {
        let gen = generate(spec).expect("sweep runs");
        let counts = gen.class_counts();
        let total: usize = counts.iter().sum();
        assert!(total > 0, "sweep produced no windows");
        let degraded: usize = counts[1..].iter().sum();
        degraded as f64 / total as f64
    };
    let h = frac_degraded(&healthy);
    let f = frac_degraded(&faulted);
    assert!(
        f > h + 0.15,
        "slow disks should add degraded windows: healthy {h:.3} vs faulted {f:.3}"
    );
}
