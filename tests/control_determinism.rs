//! Closed-loop determinism suite for the `qi-control` control plane.
//!
//! The control loop runs *inside* the simulation: it ingests trace
//! suffixes at window boundaries, queries the sharded serve engine, and
//! applies directives through the cluster. None of that may depend on
//! wall clock, worker-thread count, or iteration order — a controlled
//! run must replay byte-for-byte. This suite proves it by running
//! guided (prediction-fed) and uniform (predictorless) controlled
//! scenarios — healthy and faulted — under 1/2/8-thread rayon pools and
//! asserting bit-identical [`RunTrace`]s, applied directive sequences,
//! and telemetry JSON against a golden run. A property test then checks
//! the hysteresis gate's core contract on arbitrary desire streams: at
//! most one decision per (subject, window), and never a release for a
//! subject that is not engaged.

use proptest::prelude::*;
use qi_control::{Hysteresis, HysteresisGate};
use qi_simkit::{SimDuration, SimTime};
use quanterference_repro::framework::prelude::*;
use quanterference_repro::ml::{model_from_text, model_to_text};
use quanterference_repro::pfs::ids::DeviceId;
use quanterference_repro::serve::{ModelRegistry, OverloadPolicy, ServeConfig, ShardedServeEngine};

const THREADS: [usize; 3] = [1, 2, 8];

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// A metadata target crushed ~7-12x per window by two looping bulk
/// writers — interference strong enough that the guided policy actually
/// engages (goldens assert it).
fn scenario(faulted: bool) -> Scenario {
    let s = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::MdtHardWrite, 55)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    if !faulted {
        return s;
    }
    s.with_fault_plan(
        FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 0,
                factor: 3.0,
                from: t(1),
                until: t(20),
            })
            .with(FaultEvent::RpcDrop {
                src: None,
                dst: None,
                prob: 0.05,
                from: t(0),
                until: t(60),
            }),
    )
}

/// Train the smoke predictor once and freeze it as registry text; every
/// controlled run rebuilds its serve engine from these bytes, so the
/// model is identical across the whole grid by construction.
fn trained_model_text() -> String {
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=4).collect();
    spec.window = WindowConfig::millis(100);
    let tcfg = TrainConfig {
        epochs: 30,
        ..TrainConfig::default()
    };
    let (_, predictor, _) = train_and_evaluate(&spec, &tcfg, 3).expect("smoke training");
    model_to_text(&predictor.into_model())
}

/// A fresh two-shard serve engine loaded from the frozen model text.
fn fresh_service(text: &str, tenants: &[AppId]) -> ShardedServeEngine {
    let model = model_from_text(text).expect("frozen model text parses");
    let window = model
        .schema()
        .window_config()
        .expect("trained schemas carry a window");
    let mut registry = ModelRegistry::new(model.shape(), model.schema().clone());
    registry.load_text(1, text).expect("frozen model loads");
    registry.activate(1).expect("loaded version activates");
    let cfg = ServeConfig {
        max_batch: tenants.len().max(1),
        max_delay: window.window,
        queue_cap: 4 * tenants.len().max(1),
        admission: None,
        overload: OverloadPolicy::Shed,
        tenants: tenants.to_vec(),
        threads: None,
    };
    ShardedServeEngine::new(cfg, registry, 2).expect("two shards build")
}

/// One guided controlled run of `scenario(faulted)`.
fn guided_run(text: &str, faulted: bool) -> (AppId, RunTrace) {
    let s = scenario(faulted);
    let target = AppId(0);
    let noise = noise_app_ids(&s);
    let mut tenants = vec![target];
    tenants.extend(noise.iter().copied());
    let ctl = ControlLoop::builder()
        .predictor(fresh_service(text, &tenants))
        .policy(GuidedThrottle::new(target, noise, 1, 5.0e6).expect("valid policy"))
        .n_devices(s.cluster.n_devices())
        .build()
        .expect("guided loop builds");
    s.run_with(|cl| cl.install_controller(Box::new(ctl)))
        .expect("guided run completes")
}

/// One predictorless uniform-throttle controlled run.
fn uniform_run(faulted: bool) -> (AppId, RunTrace) {
    let s = scenario(faulted);
    let ctl = ControlLoop::builder()
        .policy(UniformThrottle::new(noise_app_ids(&s), 5.0e6).expect("valid policy"))
        .window(WindowConfig::millis(100))
        .build()
        .expect("uniform loop builds");
    s.run_with(|cl| cl.install_controller(Box::new(ctl)))
        .expect("uniform run completes")
}

/// Field-by-field bit equality of two controlled runs, including the
/// applied directive sequence and the rendered telemetry JSON.
fn assert_runs_identical(a: &(AppId, RunTrace), b: &(AppId, RunTrace), ctx: &str) {
    assert_eq!(a.0, b.0, "{ctx}: app id diverged");
    let (a, b) = (&a.1, &b.1);
    assert_eq!(a.directives, b.directives, "{ctx}: directives diverged");
    assert_eq!(a.ops, b.ops, "{ctx}: op records diverged");
    assert_eq!(a.rpcs, b.rpcs, "{ctx}: rpc records diverged");
    assert_eq!(a.samples, b.samples, "{ctx}: server samples diverged");
    assert_eq!(a.app_completion, b.app_completion, "{ctx}: completions");
    assert_eq!(a.failed_ops, b.failed_ops, "{ctx}: failed ops diverged");
    assert_eq!(a.end, b.end, "{ctx}: end time diverged");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{ctx}: event count diverged"
    );
    assert_eq!(a.metrics, b.metrics, "{ctx}: telemetry diverged");
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "{ctx}: telemetry JSON diverged"
    );
}

/// Run `run` under every pool in the grid (plus one same-size rerun)
/// and require each result bit-identical to `golden`.
fn assert_grid_matches(golden: &(AppId, RunTrace), run: impl Fn() -> (AppId, RunTrace), ctx: &str) {
    for threads in THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("explicit thread counts always build");
        let got = pool.install(&run);
        assert_runs_identical(golden, &got, &format!("{ctx} @ {threads} threads"));
    }
    // Same ambient pool, run twice: replays, not merely agrees.
    assert_runs_identical(golden, &run(), &format!("{ctx} rerun"));
}

#[test]
fn guided_control_loop_replays_byte_identically() {
    let text = trained_model_text();
    for faulted in [false, true] {
        let golden = guided_run(&text, faulted);
        let ctx = format!("guided (faulted={faulted})");
        assert!(
            !golden.1.directives.is_empty(),
            "{ctx}: controller must actually act or this proves nothing"
        );
        assert!(
            golden.1.metrics.counter("control.predictions").unwrap_or(0) > 0,
            "{ctx}: predictions must flow through the serve engine"
        );
        if faulted {
            assert!(
                golden.1.metrics.counter("pfs.rpc.dropped").unwrap_or(0) > 0,
                "{ctx}: the fault plan must visibly bite"
            );
        }
        assert_grid_matches(&golden, || guided_run(&text, faulted), &ctx);
    }
}

#[test]
fn uniform_control_loop_replays_byte_identically() {
    for faulted in [false, true] {
        let golden = uniform_run(faulted);
        let ctx = format!("uniform (faulted={faulted})");
        assert!(
            !golden.1.directives.is_empty(),
            "{ctx}: the always-on policy must emit directives"
        );
        assert_grid_matches(&golden, || uniform_run(faulted), &ctx);
    }
}

// ---------------------------------------------------------------------
// Gate contract: one decision per (subject, window), releases only when
// engaged — on arbitrary desire streams and gate configurations.
// ---------------------------------------------------------------------

/// The gate's conflict unit, re-derived independently of the crate's
/// private `Subject` type: rate limits and inflight caps are per-app,
/// layout steering is cluster-global.
fn subject(d: &ControlDirective) -> (u8, u32) {
    match d {
        ControlDirective::RateLimit { app, .. } | ControlDirective::ClearRateLimit { app } => {
            (0, app.0)
        }
        ControlDirective::CapInflight { app, .. } | ControlDirective::ClearCapInflight { app } => {
            (1, app.0)
        }
        ControlDirective::AvoidOsts { .. } | ControlDirective::ClearAvoidOsts => (2, 0),
    }
}

fn arb_directive() -> impl Strategy<Value = ControlDirective> {
    (0u8..6, 0u32..3, 1u32..4).prop_map(|(kind, a, v)| match kind {
        0 => ControlDirective::RateLimit {
            app: AppId(a),
            bytes_per_sec: f64::from(v) * 1.0e6,
        },
        1 => ControlDirective::ClearRateLimit { app: AppId(a) },
        2 => ControlDirective::CapInflight {
            app: AppId(a),
            max_inflight: v,
        },
        3 => ControlDirective::ClearCapInflight { app: AppId(a) },
        4 => ControlDirective::AvoidOsts {
            osts: (0..v).map(DeviceId).collect(),
        },
        _ => ControlDirective::ClearAvoidOsts,
    })
}

proptest! {
    #[test]
    fn gate_never_conflicts_and_never_releases_unengaged(
        engage_windows in 1u32..4,
        release_windows in 1u32..4,
        cooldown_windows in 0u32..4,
        windows in proptest::collection::vec(
            proptest::collection::vec(arb_directive(), 0..8),
            1..24,
        ),
    ) {
        let mut gate = HysteresisGate::new(Hysteresis {
            engage_windows,
            release_windows,
            cooldown_windows,
        })
        .expect("non-zero streaks build");
        let mut engaged = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for (w, desired) in windows.iter().enumerate() {
            out.clear();
            gate.filter(desired, &mut out);
            let mut decided = std::collections::BTreeSet::new();
            for d in &out {
                let s = subject(d);
                prop_assert!(
                    decided.insert(s),
                    "window {w}: two directives for subject {s:?}: {out:?}"
                );
                if d.is_engage() {
                    engaged.insert(s);
                } else {
                    prop_assert!(
                        engaged.remove(&s),
                        "window {w}: released subject {s:?} that was never engaged"
                    );
                }
            }
        }
    }
}
