//! # qi-faults
//!
//! Deterministic, seed-driven fault plans for the PFS simulator.
//!
//! A [`FaultPlan`] is a schedule of typed [`FaultEvent`]s — slow disks,
//! queue stalls, probabilistic RPC loss and latency, OSS service-thread
//! crashes, MDS lock storms — that `qi-pfs` applies at dispatch time.
//! Plans carry no randomness of their own: probabilistic events (RPC
//! drops) draw from a dedicated `SimRng` substream owned by the cluster,
//! so the same seed and plan always replay byte-identically.
//!
//! [`RetryPolicy`] is the client-side counterpart: bounded exponential
//! backoff with deterministic jitter and optional per-op deadlines,
//! consumed by the cluster's RPC layer when a request is lost.
//!
//! Which simulator layer applies each event type is documented in
//! DESIGN.md ("Fault model").

use qi_simkit::rng::SimRng;
use qi_simkit::{QiError, SimDuration, SimTime};

/// One scheduled fault. Times are absolute simulation times; a run
/// starts at [`SimTime::ZERO`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Multiply one OST device's disk service time by `factor` over
    /// `[from, until)`. Applied by `disk.rs` (the rotational model).
    SlowDisk {
        /// Target device index (0-based across all OSTs).
        dev: u32,
        /// Service-time multiplier, `>= 1.0`.
        factor: f64,
        /// Window start.
        from: SimTime,
        /// Window end (factor reverts to 1.0).
        until: SimTime,
    },
    /// Freeze one OST's block queue: nothing dispatches for `duration`
    /// starting at `at`. In-flight requests finish; new dispatch waits.
    /// Applied by `queue.rs`.
    DiskStall {
        /// Target device index.
        dev: u32,
        /// Stall start.
        at: SimTime,
        /// Stall length.
        duration: SimDuration,
    },
    /// Probabilistically lose client requests on matching links over
    /// `[from, until)`. A dropped request still occupies both NICs (it
    /// is lost in transit); the client recovers via its [`RetryPolicy`].
    /// Applied by `net.rs` + the cluster RPC layer.
    RpcDrop {
        /// Source node filter (`None` = any source).
        src: Option<u32>,
        /// Destination node filter (`None` = any destination).
        dst: Option<u32>,
        /// Per-request drop probability in `[0, 1]`.
        prob: f64,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Add fixed extra latency to matching links over `[from, until)`.
    /// Applied by `net.rs`.
    RpcDelay {
        /// Source node filter (`None` = any source).
        src: Option<u32>,
        /// Destination node filter (`None` = any destination).
        dst: Option<u32>,
        /// Extra one-way latency.
        delay: SimDuration,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// An OSS loses service threads at `at`: its effective CPU cost per
    /// RPC is divided by `remaining` (the fraction of threads left, in
    /// `(0, 1]`). Optionally restarts to full capacity at `restart`.
    /// Applied by `cluster.rs` (the serial OSS CPU model).
    OssThreadCrash {
        /// OSS index (0-based).
        oss: u32,
        /// Crash instant.
        at: SimTime,
        /// Full-capacity restart instant, if any.
        restart: Option<SimTime>,
        /// Fraction of service threads left, in `(0, 1]`.
        remaining: f64,
    },
    /// MDS lock storm over `[from, until)`: every directory-lock
    /// acquisition behaves like an owner switch (forced revocation) and
    /// revocations take `revoke_factor`× as long. Applied by
    /// `cluster.rs` (the MDS lock path).
    MdsLockStorm {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Multiplier on the lock-revocation latency, `>= 1.0`.
        revoke_factor: f64,
    },
}

/// A validated, replayable schedule of fault events.
///
/// Build one with [`FaultPlan::new`] + [`FaultPlan::with`] (or `push`),
/// hand it to `ClusterBuilder::fault_plan`. The builder calls
/// [`FaultPlan::validate`] against the concrete cluster shape, so an
/// out-of-range device or malformed window is a construction-time
/// `QiError`, not a mid-run panic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the healthy baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, builder-style.
    pub fn with(mut self, ev: FaultEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Append an event in place.
    pub fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Partition this plan by an ownership function, preserving event
    /// order inside every partition.
    ///
    /// `route` names the owning partition for each event, or `None` for
    /// events that belong to the shared realm (link faults, MDS storms,
    /// faults on realm-owned devices). Returns the realm plan plus
    /// `n_parts` shard plans. Used by the sharded simulator: each shard
    /// applies only the faults targeting hardware it owns, and because
    /// relative order is preserved per partition, equal-time faults on
    /// one device replay in the same order as in a sequential run.
    pub fn split_by<F>(&self, n_parts: usize, route: F) -> (FaultPlan, Vec<FaultPlan>)
    where
        F: Fn(&FaultEvent) -> Option<usize>,
    {
        let mut realm = FaultPlan::new();
        let mut shards = vec![FaultPlan::new(); n_parts];
        for ev in &self.events {
            match route(ev) {
                Some(i) => {
                    assert!(i < n_parts, "split_by route out of range: {i} >= {n_parts}");
                    shards[i].push(*ev);
                }
                None => realm.push(*ev),
            }
        }
        (realm, shards)
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Check the plan against a concrete cluster shape: `n_devices`
    /// OST devices, `n_nodes` total network nodes, `n_oss` object
    /// storage servers. Returns the first problem found.
    pub fn validate(&self, n_devices: usize, n_nodes: usize, n_oss: usize) -> Result<(), QiError> {
        // Per-device SlowDisk windows must not overlap: the cluster
        // realises them as absolute set/reset factor events, so two
        // overlapping windows would silently clobber each other.
        let mut slow_windows: Vec<(u32, SimTime, SimTime)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            let fail = |msg: String| Err(QiError::FaultPlan(format!("event {i}: {msg}")));
            match *ev {
                FaultEvent::SlowDisk {
                    dev,
                    factor,
                    from,
                    until,
                } => {
                    if dev as usize >= n_devices {
                        return fail(format!("SlowDisk dev {dev} out of range (< {n_devices})"));
                    }
                    if factor < 1.0 || !factor.is_finite() {
                        return fail(format!(
                            "SlowDisk factor {factor} must be finite and >= 1.0"
                        ));
                    }
                    if from >= until {
                        return fail("SlowDisk window is empty (from >= until)".into());
                    }
                    for &(d, f, u) in &slow_windows {
                        if d == dev && from < u && f < until {
                            return fail(format!("SlowDisk windows overlap on dev {dev}"));
                        }
                    }
                    slow_windows.push((dev, from, until));
                }
                FaultEvent::DiskStall { dev, duration, .. } => {
                    if dev as usize >= n_devices {
                        return fail(format!("DiskStall dev {dev} out of range (< {n_devices})"));
                    }
                    if duration == SimDuration::ZERO {
                        return fail("DiskStall duration is zero".into());
                    }
                }
                FaultEvent::RpcDrop {
                    src,
                    dst,
                    prob,
                    from,
                    until,
                } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return fail(format!("RpcDrop prob {prob} outside [0, 1]"));
                    }
                    if from >= until {
                        return fail("RpcDrop window is empty (from >= until)".into());
                    }
                    for (name, node) in [("src", src), ("dst", dst)] {
                        if let Some(n) = node {
                            if n as usize >= n_nodes {
                                return fail(format!(
                                    "RpcDrop {name} node {n} out of range (< {n_nodes})"
                                ));
                            }
                        }
                    }
                }
                FaultEvent::RpcDelay {
                    src,
                    dst,
                    delay,
                    from,
                    until,
                } => {
                    if delay == SimDuration::ZERO {
                        return fail("RpcDelay delay is zero".into());
                    }
                    if from >= until {
                        return fail("RpcDelay window is empty (from >= until)".into());
                    }
                    for (name, node) in [("src", src), ("dst", dst)] {
                        if let Some(n) = node {
                            if n as usize >= n_nodes {
                                return fail(format!(
                                    "RpcDelay {name} node {n} out of range (< {n_nodes})"
                                ));
                            }
                        }
                    }
                }
                FaultEvent::OssThreadCrash {
                    oss,
                    at,
                    restart,
                    remaining,
                } => {
                    if oss as usize >= n_oss {
                        return fail(format!("OssThreadCrash oss {oss} out of range (< {n_oss})"));
                    }
                    if !(remaining > 0.0 && remaining <= 1.0) {
                        return fail(format!(
                            "OssThreadCrash remaining {remaining} outside (0, 1]"
                        ));
                    }
                    if let Some(r) = restart {
                        if r <= at {
                            return fail("OssThreadCrash restart must come after the crash".into());
                        }
                    }
                }
                FaultEvent::MdsLockStorm {
                    from,
                    until,
                    revoke_factor,
                } => {
                    if from >= until {
                        return fail("MdsLockStorm window is empty (from >= until)".into());
                    }
                    if revoke_factor < 1.0 || !revoke_factor.is_finite() {
                        return fail(format!(
                            "MdsLockStorm revoke_factor {revoke_factor} must be finite and >= 1.0"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Client-side recovery policy for lost RPCs: bounded exponential
/// backoff with deterministic jitter, plus optional per-op deadlines.
///
/// The backoff for attempt `k` (1-based) is
/// `min(backoff_cap, backoff_base * 2^(k-1))`, jittered by a uniform
/// factor in `[1 - jitter_frac, 1 + jitter_frac)` drawn from the
/// cluster's dedicated fault RNG substream — so reruns with the same
/// seed replay the exact same retry timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of resends before the op is failed.
    pub max_retries: u32,
    /// How long the client waits for a reply before declaring the
    /// request lost.
    pub rpc_timeout: SimDuration,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff.
    pub backoff_cap: SimDuration,
    /// Jitter fraction applied to each backoff (`0.0` disables jitter).
    pub jitter_frac: f64,
    /// If set, an op whose first issue is older than this when a retry
    /// would be scheduled is failed immediately instead.
    pub op_deadline: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            rpc_timeout: SimDuration::from_millis(50),
            backoff_base: SimDuration::from_millis(1),
            backoff_cap: SimDuration::from_millis(100),
            jitter_frac: 0.2,
            op_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), with
    /// deterministic jitter drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.backoff_base * (1u64 << exp);
        let capped = if raw.as_nanos() > self.backoff_cap.as_nanos() {
            self.backoff_cap
        } else {
            raw
        };
        if self.jitter_frac > 0.0 {
            rng.jittered(capped, self.jitter_frac)
        } else {
            capped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn empty_plan_validates() {
        assert!(FaultPlan::new().validate(4, 10, 2).is_ok());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn valid_plan_validates() {
        let plan = FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 1,
                factor: 3.0,
                from: t(1),
                until: t(3),
            })
            .with(FaultEvent::DiskStall {
                dev: 0,
                at: t(2),
                duration: SimDuration::from_millis(200),
            })
            .with(FaultEvent::RpcDrop {
                src: None,
                dst: Some(5),
                prob: 0.1,
                from: t(0),
                until: t(4),
            })
            .with(FaultEvent::RpcDelay {
                src: Some(0),
                dst: None,
                delay: SimDuration::from_micros(500),
                from: t(0),
                until: t(4),
            })
            .with(FaultEvent::OssThreadCrash {
                oss: 1,
                at: t(1),
                restart: Some(t(2)),
                remaining: 0.5,
            })
            .with(FaultEvent::MdsLockStorm {
                from: t(1),
                until: t(2),
                revoke_factor: 4.0,
            });
        assert_eq!(plan.events().len(), 6);
        plan.validate(4, 10, 2).expect("plan should validate");
    }

    #[test]
    fn out_of_range_device_is_rejected() {
        let plan = FaultPlan::new().with(FaultEvent::SlowDisk {
            dev: 4,
            factor: 2.0,
            from: t(0),
            until: t(1),
        });
        let err = plan.validate(4, 10, 2).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn bad_factor_probability_and_windows_are_rejected() {
        let bad_factor = FaultPlan::new().with(FaultEvent::SlowDisk {
            dev: 0,
            factor: 0.5,
            from: t(0),
            until: t(1),
        });
        assert!(bad_factor.validate(4, 10, 2).is_err());

        let bad_prob = FaultPlan::new().with(FaultEvent::RpcDrop {
            src: None,
            dst: None,
            prob: 1.5,
            from: t(0),
            until: t(1),
        });
        assert!(bad_prob.validate(4, 10, 2).is_err());

        let empty_window = FaultPlan::new().with(FaultEvent::MdsLockStorm {
            from: t(2),
            until: t(2),
            revoke_factor: 2.0,
        });
        assert!(empty_window.validate(4, 10, 2).is_err());

        let bad_restart = FaultPlan::new().with(FaultEvent::OssThreadCrash {
            oss: 0,
            at: t(3),
            restart: Some(t(3)),
            remaining: 0.5,
        });
        assert!(bad_restart.validate(4, 10, 2).is_err());
    }

    #[test]
    fn overlapping_slow_disk_windows_are_rejected() {
        let plan = FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 2,
                factor: 2.0,
                from: t(0),
                until: t(5),
            })
            .with(FaultEvent::SlowDisk {
                dev: 2,
                factor: 3.0,
                from: t(4),
                until: t(8),
            });
        let err = plan.validate(4, 10, 2).unwrap_err();
        assert!(err.to_string().contains("overlap"));

        // Same windows on different devices are fine.
        let plan = FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 1,
                factor: 2.0,
                from: t(0),
                until: t(5),
            })
            .with(FaultEvent::SlowDisk {
                dev: 2,
                factor: 3.0,
                from: t(0),
                until: t(5),
            });
        assert!(plan.validate(4, 10, 2).is_ok());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let pol = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = SimRng::new(7);
        assert_eq!(pol.backoff(1, &mut rng), SimDuration::from_millis(1));
        assert_eq!(pol.backoff(2, &mut rng), SimDuration::from_millis(2));
        assert_eq!(pol.backoff(3, &mut rng), SimDuration::from_millis(4));
        // 2^9 ms = 512 ms > 100 ms cap.
        assert_eq!(pol.backoff(10, &mut rng), SimDuration::from_millis(100));
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(
            pol.backoff(u32::MAX, &mut rng),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let pol = RetryPolicy::default();
        let mut a = SimRng::new(42).substream(0xFA17);
        let mut b = SimRng::new(42).substream(0xFA17);
        for attempt in 1..=6 {
            let x = pol.backoff(attempt, &mut a);
            let y = pol.backoff(attempt, &mut b);
            assert_eq!(x, y, "same seed must give identical jitter");
            let exp = attempt.saturating_sub(1).min(32);
            let raw = pol.backoff_base * (1u64 << exp);
            let capped = raw.as_nanos().min(pol.backoff_cap.as_nanos()) as f64;
            let lo = capped * (1.0 - pol.jitter_frac);
            let hi = capped * (1.0 + pol.jitter_frac);
            let got = x.as_nanos() as f64;
            assert!(got >= lo - 1.0 && got <= hi + 1.0, "jitter out of bounds");
        }
        // A different seed gives a different stream somewhere.
        let mut c = SimRng::new(43).substream(0xFA17);
        let mut d = SimRng::new(42).substream(0xFA17);
        let any_diff = (1..=6).any(|k| pol.backoff(k, &mut c) != pol.backoff(k, &mut d));
        assert!(any_diff);
    }

    #[test]
    fn split_by_partitions_and_preserves_order() {
        let plan = FaultPlan::new()
            .with(FaultEvent::SlowDisk {
                dev: 0,
                factor: 2.0,
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
            })
            .with(FaultEvent::MdsLockStorm {
                from: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
                revoke_factor: 2.0,
            })
            .with(FaultEvent::DiskStall {
                dev: 3,
                at: SimTime::from_secs(1),
                duration: SimDuration::from_secs(1),
            })
            .with(FaultEvent::SlowDisk {
                dev: 3,
                factor: 4.0,
                from: SimTime::from_secs(5),
                until: SimTime::from_secs(6),
            })
            .with(FaultEvent::RpcDrop {
                src: None,
                dst: None,
                prob: 0.1,
                from: SimTime::ZERO,
                until: SimTime::from_secs(9),
            });
        // Two shards of two devices each.
        let (realm, shards) = plan.split_by(2, |ev| match ev {
            FaultEvent::SlowDisk { dev, .. } | FaultEvent::DiskStall { dev, .. } => {
                Some(*dev as usize / 2)
            }
            _ => None,
        });
        assert_eq!(realm.events().len(), 2);
        assert!(matches!(realm.events()[0], FaultEvent::MdsLockStorm { .. }));
        assert!(matches!(realm.events()[1], FaultEvent::RpcDrop { .. }));
        assert_eq!(shards[0].events().len(), 1);
        assert_eq!(shards[1].events().len(), 2);
        // Relative order inside a partition matches the original plan.
        assert!(matches!(
            shards[1].events()[0],
            FaultEvent::DiskStall { .. }
        ));
        assert!(matches!(shards[1].events()[1], FaultEvent::SlowDisk { .. }));
        // Nothing lost, nothing duplicated.
        let total: usize =
            realm.events().len() + shards.iter().map(|p| p.events().len()).sum::<usize>();
        assert_eq!(total, plan.events().len());
    }
}
