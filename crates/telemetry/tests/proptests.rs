//! Property tests for the statistical accumulators qi-telemetry snapshots
//! carry, and for the snapshot serialisation itself.
//!
//! The merge properties matter because the registry's values may be
//! reduced across shards (e.g. per-thread accumulators): merging split
//! streams must agree with a single pass, within f64 tolerance, or
//! telemetry would depend on how work was partitioned.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use qi_simkit::stats::{Histogram, OnlineStats};
use qi_telemetry::{MetricValue, MetricsSnapshot, Registry};

/// Relative-plus-absolute float comparison for accumulated quantities.
fn close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #[test]
    fn online_stats_merge_of_splits_matches_single_stream(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        // min/max are order-insensitive, so they must match exactly.
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        prop_assert!(close(a.sum(), whole.sum(), 1e-9), "sum {} vs {}", a.sum(), whole.sum());
        prop_assert!(close(a.mean(), whole.mean(), 1e-9), "mean {} vs {}", a.mean(), whole.mean());
        prop_assert!(
            close(a.variance(), whole.variance(), 1e-6),
            "variance {} vs {}", a.variance(), whole.variance()
        );
    }

    #[test]
    fn online_stats_merge_with_empty_is_identity(
        xs in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let before = s.clone();
        s.merge(&OnlineStats::new());
        prop_assert_eq!(&s, &before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        prop_assert_eq!(&empty, &before);
    }

    #[test]
    fn histogram_total_splits_into_buckets_and_out_of_range(
        xs in prop::collection::vec(-50.0f64..150.0, 0..300),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for &x in &xs {
            h.record(x);
        }
        let in_range: u64 = h.buckets().iter().sum();
        prop_assert_eq!(h.total(), in_range + h.underflow() + h.overflow());
        prop_assert_eq!(h.total(), xs.len() as u64);
        let under = xs.iter().filter(|&&x| x < 0.0).count() as u64;
        let over = xs.iter().filter(|&&x| x >= 100.0).count() as u64;
        prop_assert_eq!(h.underflow(), under);
        prop_assert_eq!(h.overflow(), over);
    }

    #[test]
    fn histogram_merge_of_splits_matches_single_stream(
        xs in prop::collection::vec(-10.0f64..110.0, 0..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let cut = ((xs.len() as f64) * cut_frac) as usize;
        let mut whole = Histogram::new(0.0, 100.0, 8);
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Histogram::new(0.0, 100.0, 8);
        let mut b = Histogram::new(0.0, 100.0, 8);
        for &x in &xs[..cut] {
            a.record(x);
        }
        for &x in &xs[cut..] {
            b.record(x);
        }
        a.merge(&b);
        // Bucket counting is integer arithmetic, so equality is exact.
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn snapshot_json_roundtrip_is_lossless_and_byte_stable(
        counters in prop::collection::vec(0u64..u64::MAX, 1..6),
        gauges in prop::collection::vec(-1e12f64..1e12, 1..6),
        samples in prop::collection::vec(-1e3f64..1e3, 0..40),
    ) {
        let mut snap = MetricsSnapshot::new();
        for (i, &c) in counters.iter().enumerate() {
            snap.put(&format!("c{i}.count"), MetricValue::Counter(c));
        }
        for (i, &g) in gauges.iter().enumerate() {
            snap.put(&format!("g{i}.level"), MetricValue::Gauge(g));
        }
        let mut s = OnlineStats::new();
        let mut h = Histogram::new(-1e3, 1e3, 7);
        for &x in &samples {
            s.push(x);
            h.record(x);
        }
        snap.put("dist.stats", MetricValue::Stats(s));
        snap.put("dist.hist", MetricValue::Histogram(h));

        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("round-trip parse failed: {e}")))?;
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(back.to_json(), json);
    }
}

/// One registry update: which metric (name + kind derived from the
/// index) and an observation value.
fn merge_ops(max: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0usize..8, 0u64..100_000), 0..max)
}

/// Apply one generated op. The kind is a pure function of the name so
/// kinds never conflict within a generated workload.
fn apply_op(reg: &mut Registry, name_idx: usize, v: u64) {
    let name = format!("shard.metric{name_idx}");
    match name_idx % 3 {
        0 => {
            let id = reg.counter(&name);
            reg.add(id, v % 1000);
        }
        1 => {
            // Gauges sum under merge, and f64 `a + b` is exactly
            // commutative, so two-way merges stay byte-stable.
            let id = reg.gauge(&name);
            reg.set(id, (v % 1000) as f64);
        }
        _ => {
            let id = reg.histogram(&name, 0.0, 100.0, 10);
            reg.observe(id, (v % 120) as f64 - 10.0);
        }
    }
}

proptest! {
    /// Merging shard registries A and B in either order renders the
    /// identical snapshot JSON: the merged layout is canonical
    /// (ascending names), and every per-kind combination is exactly
    /// commutative for counters, gauges, and histograms.
    #[test]
    fn registry_merge_is_commutative_bytewise(ops in merge_ops(60)) {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for (i, &(name_idx, v)) in ops.iter().enumerate() {
            apply_op(if i % 2 == 0 { &mut a } else { &mut b }, name_idx, v);
        }
        let mut ab = Registry::new();
        ab.merge(&a).expect("merge a");
        ab.merge(&b).expect("merge b");
        let mut ba = Registry::new();
        ba.merge(&b).expect("merge b");
        ba.merge(&a).expect("merge a");
        prop_assert_eq!(ab.snapshot().to_json(), ba.snapshot().to_json());
    }

    /// For integer-exact kinds (counters, histograms), merging split
    /// shard registries is byte-identical to one registry that saw the
    /// whole stream — partitioning the workload cannot show up in the
    /// rendered telemetry.
    #[test]
    fn registry_merge_of_splits_matches_single_stream(ops in merge_ops(60)) {
        let mut whole = Registry::new();
        let mut shards = [Registry::new(), Registry::new(), Registry::new()];
        for (i, &(name_idx, v)) in ops.iter().enumerate() {
            // Remap kind 1 (gauge) onto counters: gauges are summed by
            // merge but last-writer within a registry, so they are
            // intentionally out of scope here.
            let name_idx = if name_idx % 3 == 1 { 3 } else { name_idx };
            apply_op(&mut whole, name_idx, v);
            apply_op(&mut shards[i % 3], name_idx, v);
        }
        let mut merged = Registry::new();
        for sh in &shards {
            merged.merge(sh).expect("merge shard");
        }
        prop_assert_eq!(merged.snapshot().to_json(), whole.snapshot().to_json());
    }

    /// The merged layout depends only on the *content* of the incoming
    /// registry, not on its registration order.
    #[test]
    fn registry_merge_layout_is_canonical(ops in merge_ops(40)) {
        let mut fwd = Registry::new();
        for &(name_idx, v) in &ops {
            apply_op(&mut fwd, name_idx, v);
        }
        let mut rev = Registry::new();
        for &(name_idx, _) in ops.iter().rev() {
            // Pre-register in reverse first-seen order, then replay the
            // same updates: identical content, different entry layout.
            apply_op(&mut rev, name_idx, 0);
        }
        // Undo the dummy pre-registration updates by rebuilding: only
        // metric *layout* differs between `rev2` and `fwd`.
        let mut rev2 = Registry::new();
        for &(name_idx, _) in ops.iter().rev() {
            let name = format!("shard.metric{name_idx}");
            match name_idx % 3 {
                0 => {
                    rev2.counter(&name);
                }
                1 => {
                    rev2.gauge(&name);
                }
                _ => {
                    rev2.histogram(&name, 0.0, 100.0, 10);
                }
            }
        }
        for &(name_idx, v) in &ops {
            apply_op(&mut rev2, name_idx, v);
        }
        let mut via_fwd = Registry::new();
        via_fwd.merge(&fwd).expect("merge fwd");
        let mut via_rev = Registry::new();
        via_rev.merge(&rev2).expect("merge rev");
        prop_assert_eq!(via_fwd.snapshot().to_json(), via_rev.snapshot().to_json());
    }
}
