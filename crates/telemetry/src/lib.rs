//! # qi-telemetry
//!
//! A lightweight, **deterministic** metrics layer for the simulator and
//! training pipeline: the in-simulation analogue of the always-on
//! collection that LASSi runs over Lustre and that the paper's Table 2
//! server-side statistics come from.
//!
//! Design rules, in priority order:
//!
//! 1. **Determinism.** Nothing here reads wall-clock time, thread ids,
//!    or global state. Durations are simulation time fed in by callers;
//!    identical runs produce *byte-identical* snapshots regardless of
//!    repeat count or `RAYON_NUM_THREADS` (locked in by the golden and
//!    determinism suites under `tests/`).
//! 2. **Cheap on the hot path.** Metrics are registered once and then
//!    updated through a copyable [`MetricId`] index — no string hashing
//!    per event.
//! 3. **Stable rendering.** [`MetricsSnapshot`] orders metrics by name
//!    (a `BTreeMap`) and both renderers — [`MetricsSnapshot::to_json`]
//!    and [`MetricsSnapshot::to_prometheus_text`] — are pure functions
//!    of that map.
//!
//! ## Metric kinds
//!
//! | kind | update | rendered as |
//! |------|--------|-------------|
//! | counter | [`Registry::add`] / [`Registry::inc`] | monotone `u64` |
//! | gauge | [`Registry::set`] | last-written `f64` |
//! | stats | [`Registry::observe`] | Welford summary (count/sum/mean/min/max/stddev) |
//! | histogram | [`Registry::observe`] | fixed-width buckets + under/overflow |
//!
//! `stats` and `histogram` reuse [`qi_simkit::stats::OnlineStats`] and
//! [`qi_simkit::stats::Histogram`].
//!
//! ## Example
//!
//! ```
//! use qi_telemetry::{Registry, MetricValue};
//!
//! let mut reg = Registry::new();
//! let ops = reg.counter("pfs.ost0.ops");
//! let depth = reg.stats("pfs.ost0.queue_depth");
//! reg.inc(ops);
//! reg.observe(depth, 3.0);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("pfs.ost0.ops"), Some(1));
//! let json = snap.to_json();
//! let back = qi_telemetry::MetricsSnapshot::from_json(&json).unwrap();
//! assert_eq!(snap, back);
//! assert_eq!(json, back.to_json()); // byte-stable round trip
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::collections::HashMap;

use qi_simkit::stats::{Histogram, OnlineStats};

mod json;
mod prom;

pub use json::JsonError;

/// One metric's current value. The enum is the snapshot-side twin of the
/// registry entry; see the crate docs for the kind semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing event count.
    Counter(u64),
    /// Last-written instantaneous value.
    Gauge(f64),
    /// Welford mean/variance/min/max summary of observations.
    Stats(OnlineStats),
    /// Fixed-width bucketed distribution of observations.
    Histogram(Histogram),
}

impl MetricValue {
    /// Short kind tag used by both renderers.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Stats(_) => "stats",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Cheap, copyable handle to a registered metric; obtained from the
/// `Registry::counter`/`gauge`/`stats`/`histogram` registration calls
/// and passed to the update methods on hot paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

struct Entry {
    name: String,
    value: MetricValue,
}

/// A set of named metrics, updated in place and exported via
/// [`Registry::snapshot`].
///
/// Registration is get-or-create by name: registering the same name
/// twice with the same kind returns the same [`MetricId`]; re-registering
/// under a different kind panics (programmer error). Each simulated
/// subsystem owns its own registry — there is intentionally no global
/// one, because globals are where nondeterminism creeps in.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&mut self, name: &str, value: MetricValue) -> MetricId {
        if let Some(&i) = self.index.get(name) {
            let have = self.entries[i].value.kind();
            let want = value.kind();
            assert!(
                have == want,
                "metric `{name}` already registered as {have}, requested {want}"
            );
            return MetricId(i);
        }
        let i = self.entries.len();
        self.entries.push(Entry {
            name: name.to_string(),
            value,
        });
        self.index.insert(name.to_string(), i);
        MetricId(i)
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str) -> MetricId {
        self.register(name, MetricValue::Counter(0))
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> MetricId {
        self.register(name, MetricValue::Gauge(0.0))
    }

    /// Register (or look up) a Welford-summary metric.
    pub fn stats(&mut self, name: &str) -> MetricId {
        self.register(name, MetricValue::Stats(OnlineStats::new()))
    }

    /// Register (or look up) a histogram with `n_buckets` equal-width
    /// buckets over `[lo, hi)`.
    pub fn histogram(&mut self, name: &str, lo: f64, hi: f64, n_buckets: usize) -> MetricId {
        self.register(
            name,
            MetricValue::Histogram(Histogram::new(lo, hi, n_buckets)),
        )
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: u64) {
        match &mut self.entries[id.0].value {
            MetricValue::Counter(c) => *c += delta,
            other => panic!("add() on non-counter metric ({})", other.kind()),
        }
    }

    /// Add 1 to a counter.
    #[inline]
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Set a gauge to `v`.
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.entries[id.0].value {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("set() on non-gauge metric ({})", other.kind()),
        }
    }

    /// Record one observation into a stats or histogram metric.
    #[inline]
    pub fn observe(&mut self, id: MetricId, v: f64) {
        match &mut self.entries[id.0].value {
            MetricValue::Stats(s) => s.push(v),
            MetricValue::Histogram(h) => h.record(v),
            other => panic!("observe() on non-observable metric ({})", other.kind()),
        }
    }

    /// Overwrite a metric wholesale — used by exporters that already hold
    /// a finished `OnlineStats`/`Histogram` from a simulated component.
    pub fn put(&mut self, name: &str, value: MetricValue) {
        if let Some(&i) = self.index.get(name) {
            self.entries[i].value = value;
        } else {
            self.register(name, value);
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Export the current values as an immutable, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .entries
                .iter()
                .map(|e| (e.name.clone(), e.value.clone()))
                .collect(),
        }
    }

    /// Merge `other` into this registry, name by name in ascending key
    /// order (parallel shard reduction).
    ///
    /// Shared names combine kind-wise: counters and gauges sum, stats
    /// and histograms merge their accumulators. Names only present in
    /// `other` are registered here, in ascending order — so the merged
    /// registry's layout depends only on the *set* of inputs, never on
    /// each input's registration order. Gauges lose their last-writer
    /// semantics under a merge (shards must only use gauges for
    /// summable quantities).
    ///
    /// Unlike [`Registry::register`], a kind conflict is an `Err`, not a
    /// panic — merging telemetry from a foreign shard is an operation
    /// whose failure the caller must be able to report. The merge is
    /// validated up front: on `Err` this registry is unchanged.
    pub fn merge(&mut self, other: &Registry) -> Result<(), MergeError> {
        let mut incoming: Vec<&Entry> = other.entries.iter().collect();
        incoming.sort_by(|a, b| a.name.cmp(&b.name));
        for e in &incoming {
            if let Some(&i) = self.index.get(&e.name) {
                let (have, want) = (self.entries[i].value.kind(), e.value.kind());
                if have != want {
                    return Err(MergeError::KindConflict {
                        name: e.name.clone(),
                        have,
                        want,
                    });
                }
                if let (MetricValue::Histogram(a), MetricValue::Histogram(b)) =
                    (&self.entries[i].value, &e.value)
                {
                    if a.lo() != b.lo()
                        || a.hi() != b.hi()
                        || a.buckets().len() != b.buckets().len()
                    {
                        return Err(MergeError::HistogramShape {
                            name: e.name.clone(),
                        });
                    }
                }
            }
        }
        for e in incoming {
            match self.index.get(&e.name) {
                Some(&i) => match (&mut self.entries[i].value, &e.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Stats(a), MetricValue::Stats(b)) => a.merge(b),
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => unreachable!("kinds validated above"),
                },
                None => {
                    self.register(&e.name, e.value.clone());
                }
            }
        }
        Ok(())
    }
}

/// Why a [`Registry::merge`] was rejected. The target registry is left
/// untouched in every error case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The same name is registered with different kinds.
    KindConflict {
        /// Conflicting metric name.
        name: String,
        /// Kind already registered in the target.
        have: &'static str,
        /// Kind arriving from the merged registry.
        want: &'static str,
    },
    /// Two histograms share a name but not bounds/bucket count.
    HistogramShape {
        /// Conflicting metric name.
        name: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::KindConflict { name, have, want } => {
                write!(f, "metric `{name}`: cannot merge {want} into {have}")
            }
            MergeError::HistogramShape { name } => {
                write!(f, "metric `{name}`: histogram shapes differ")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// An immutable, name-sorted export of a [`Registry`] at one instant.
///
/// Snapshots are plain data: they can be attached to run artefacts
/// (`RunTrace`, `EvalReport`), rendered (JSON / Prometheus text),
/// parsed back ([`MetricsSnapshot::from_json`]), merged, and diffed.
/// Equality is structural, and `to_json` output is byte-stable: two
/// snapshots are equal iff their JSON renderings are identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Name → value, ordered by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value by name, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value by name, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Stats summary by name, if `name` is a stats metric.
    pub fn stats(&self, name: &str) -> Option<&OnlineStats> {
        match self.metrics.get(name) {
            Some(MetricValue::Stats(s)) => Some(s),
            _ => None,
        }
    }

    /// Histogram by name, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Insert or replace one metric.
    pub fn put(&mut self, name: &str, value: MetricValue) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Absorb all metrics from `other` under a `prefix.` namespace.
    /// Useful for folding per-subsystem snapshots into one artefact.
    pub fn absorb(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (name, value) in &other.metrics {
            let key = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            self.metrics.insert(key, value.clone());
        }
    }

    /// The change from `earlier` to `self`, for before/after comparisons
    /// around a phase of interest.
    ///
    /// Per kind:
    /// - **counter** — `self − earlier` (saturating; counters are
    ///   monotone within a run).
    /// - **gauge** — numeric delta `self − earlier`.
    /// - **stats** — `count`/`sum`/`m2` subtract and the mean is
    ///   recomputed from the deltas; `min`/`max` are taken from `self`
    ///   because extrema cannot be windowed after the fact.
    /// - **histogram** — per-bucket saturating subtraction (shapes must
    ///   match).
    ///
    /// Metrics present only in `self` pass through unchanged; metrics
    /// present only in `earlier` are dropped.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, now) in &self.metrics {
            let value = match (now, earlier.metrics.get(name)) {
                (now, None) => now.clone(),
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Gauge(a), Some(MetricValue::Gauge(b))) => MetricValue::Gauge(a - b),
                (MetricValue::Stats(a), Some(MetricValue::Stats(b))) => {
                    let count = a.count().saturating_sub(b.count());
                    let sum = a.sum() - b.sum();
                    let mean = if count == 0 { 0.0 } else { sum / count as f64 };
                    MetricValue::Stats(OnlineStats::from_parts(
                        count,
                        mean,
                        (a.m2() - b.m2()).max(0.0),
                        sum,
                        a.min(),
                        a.max(),
                    ))
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    assert!(
                        a.lo() == b.lo()
                            && a.hi() == b.hi()
                            && a.buckets().len() == b.buckets().len(),
                        "diff of `{name}`: histogram shape mismatch"
                    );
                    let buckets = a
                        .buckets()
                        .iter()
                        .zip(b.buckets())
                        .map(|(x, y)| x.saturating_sub(*y))
                        .collect();
                    MetricValue::Histogram(Histogram::from_parts(
                        a.lo(),
                        a.hi(),
                        buckets,
                        a.underflow().saturating_sub(b.underflow()),
                        a.overflow().saturating_sub(b.overflow()),
                    ))
                }
                (now, Some(other)) => panic!(
                    "diff of `{name}`: kind mismatch ({} vs {})",
                    now.kind(),
                    other.kind()
                ),
            };
            out.metrics.insert(name.clone(), value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let mut reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn updates_land_in_snapshot() {
        let mut reg = Registry::new();
        let c = reg.counter("ops");
        let g = reg.gauge("util");
        let s = reg.stats("depth");
        let h = reg.histogram("svc", 0.0, 10.0, 5);
        reg.add(c, 41);
        reg.inc(c);
        reg.set(g, 0.75);
        reg.observe(s, 2.0);
        reg.observe(s, 4.0);
        reg.observe(h, 3.0);
        reg.observe(h, 100.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops"), Some(42));
        assert_eq!(snap.gauge("util"), Some(0.75));
        let st = snap.stats("depth").unwrap();
        assert_eq!(st.count(), 2);
        assert_eq!(st.mean(), 3.0);
        let hist = snap.histogram("svc").unwrap();
        assert_eq!(hist.total(), 2);
        assert_eq!(hist.overflow(), 1);
    }

    #[test]
    fn diff_subtracts_counters_and_windows_stats() {
        let mut reg = Registry::new();
        let c = reg.counter("ops");
        let s = reg.stats("lat");
        reg.add(c, 10);
        reg.observe(s, 1.0);
        let before = reg.snapshot();
        reg.add(c, 5);
        reg.observe(s, 3.0);
        reg.observe(s, 5.0);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("ops"), Some(5));
        let ds = d.stats("lat").unwrap();
        assert_eq!(ds.count(), 2);
        assert_eq!(ds.mean(), 4.0);
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut a = MetricsSnapshot::new();
        a.put("x", MetricValue::Counter(1));
        let mut out = MetricsSnapshot::new();
        out.absorb("sub", &a);
        assert_eq!(out.counter("sub.x"), Some(1));
    }

    #[test]
    fn merge_combines_kind_wise() {
        let mut a = Registry::new();
        let ac = a.counter("ops");
        let ag = a.gauge("bytes");
        let as_ = a.stats("lat");
        a.add(ac, 3);
        a.set(ag, 1.5);
        a.observe(as_, 2.0);
        let mut b = Registry::new();
        let bc = b.counter("ops");
        let bs = b.stats("lat");
        let bonly = b.counter("extra");
        b.add(bc, 4);
        b.observe(bs, 6.0);
        b.inc(bonly);
        a.merge(&b).expect("merge succeeds");
        let snap = a.snapshot();
        assert_eq!(snap.counter("ops"), Some(7));
        assert_eq!(snap.gauge("bytes"), Some(1.5));
        assert_eq!(snap.counter("extra"), Some(1));
        let s = snap.stats("lat").unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 4.0);
    }

    #[test]
    fn merge_kind_conflict_is_an_error_and_leaves_target_unchanged() {
        let mut a = Registry::new();
        let c = a.counter("x");
        a.add(c, 2);
        let yc = a.counter("y");
        a.add(yc, 9);
        let before = a.snapshot();
        let mut b = Registry::new();
        // `y` sorts after `x`: the conflict is found *after* a mergeable
        // entry, and the up-front validation must still roll nothing in.
        let bx = b.counter("x");
        b.add(bx, 1);
        b.gauge("y");
        let err = a.merge(&b).expect_err("kind conflict");
        assert_eq!(
            err,
            MergeError::KindConflict {
                name: "y".into(),
                have: "counter",
                want: "gauge",
            }
        );
        assert_eq!(a.snapshot(), before, "failed merge mutated the target");
    }

    #[test]
    fn merge_histogram_shape_mismatch_is_an_error() {
        let mut a = Registry::new();
        a.histogram("h", 0.0, 100.0, 10);
        let mut b = Registry::new();
        b.histogram("h", 0.0, 100.0, 20);
        let err = a.merge(&b).expect_err("shape mismatch");
        assert_eq!(err, MergeError::HistogramShape { name: "h".into() });
    }

    #[test]
    fn merge_appends_new_names_in_ascending_order() {
        let mut a = Registry::new();
        a.counter("m");
        let mut b = Registry::new();
        // Registered out of order on purpose.
        b.counter("z");
        b.counter("a");
        b.counter("q");
        a.merge(&b).expect("merge succeeds");
        let mut c = Registry::new();
        c.counter("m");
        c.counter("a");
        c.counter("q");
        c.counter("z");
        assert_eq!(a.snapshot(), c.snapshot());
    }
}
