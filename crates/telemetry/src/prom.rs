//! Prometheus text-exposition rendering for [`MetricsSnapshot`].
//!
//! Output follows the text format conventions: `# TYPE` comment lines,
//! one `name value` sample per line, histogram buckets as cumulative
//! `_bucket{le="…"}` series ending in `+Inf`, and stats as summary-style
//! `_count`/`_sum` plus `_min`/`_mean`/`_max`/`_stddev` gauges. Metric
//! names are sanitised to `[a-zA-Z0-9_:]`. The renderer is a pure
//! function of the snapshot, so output is byte-stable.

use std::fmt::Write as _;

use crate::{MetricValue, MetricsSnapshot};

/// Map an internal dotted metric name to a Prometheus-legal one.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a float the way Prometheus expects (`NaN`, `+Inf`, `-Inf`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Render the snapshot in Prometheus text-exposition style.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let pname = sanitize(name);
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", fmt_value(*g));
                }
                MetricValue::Stats(s) => {
                    let _ = writeln!(out, "# TYPE {pname} summary");
                    let _ = writeln!(out, "{pname}_count {}", s.count());
                    let _ = writeln!(out, "{pname}_sum {}", fmt_value(s.sum()));
                    let _ = writeln!(out, "{pname}_min {}", fmt_value(s.min()));
                    let _ = writeln!(out, "{pname}_mean {}", fmt_value(s.mean()));
                    let _ = writeln!(out, "{pname}_max {}", fmt_value(s.max()));
                    let _ = writeln!(out, "{pname}_stddev {}", fmt_value(s.std_dev()));
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    // Cumulative buckets; underflow folds into the first
                    // `le` bound, overflow into `+Inf`, per convention.
                    let mut cumulative = h.underflow();
                    for (i, b) in h.buckets().iter().enumerate() {
                        cumulative += b;
                        let (_, hi) = h.bucket_bounds(i);
                        let _ = writeln!(
                            out,
                            "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                            fmt_value(hi)
                        );
                    }
                    cumulative += h.overflow();
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{pname}_count {}", h.total());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn sanitize_makes_legal_names() {
        assert_eq!(sanitize("pfs.ost-0.queue depth"), "pfs_ost_0_queue_depth");
        assert_eq!(sanitize("0leading"), "_0leading");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = Registry::new();
        let h = reg.histogram("svc", 0.0, 3.0, 3);
        for v in [-1.0, 0.5, 1.5, 1.6, 99.0] {
            reg.observe(h, v);
        }
        let text = reg.snapshot().to_prometheus_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# TYPE svc histogram");
        assert_eq!(lines[1], "svc_bucket{le=\"1\"} 2"); // underflow + 0.5
        assert_eq!(lines[2], "svc_bucket{le=\"2\"} 4");
        assert_eq!(lines[3], "svc_bucket{le=\"3\"} 4");
        assert_eq!(lines[4], "svc_bucket{le=\"+Inf\"} 5");
        assert_eq!(lines[5], "svc_count 5");
    }

    #[test]
    fn every_sample_line_is_name_space_value() {
        let mut reg = Registry::new();
        let c = reg.counter("a.b");
        let g = reg.gauge("g");
        let s = reg.stats("s");
        reg.add(c, 7);
        reg.set(g, 1.25);
        reg.observe(s, 2.0);
        let text = reg.snapshot().to_prometheus_text();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            // Value parses as a float (covers ints, floats, ±Inf, NaN).
            let v = value
                .replace("+Inf", "inf")
                .replace("-Inf", "-inf")
                .parse::<f64>();
            assert!(v.is_ok(), "bad value in line `{line}`");
        }
    }
}
