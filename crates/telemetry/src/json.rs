//! Stable JSON rendering and parsing for [`MetricsSnapshot`].
//!
//! The writer is byte-deterministic: metrics are emitted in `BTreeMap`
//! (name) order, floats use Rust's shortest-round-trip `Display`, and
//! the layout is fixed 2-space-indented so golden files diff cleanly in
//! review. The reader is a minimal recursive-descent JSON parser that
//! accepts exactly what the writer produces (plus whitespace freedom),
//! with non-finite floats encoded as the strings `"NaN"`, `"Inf"`,
//! `"-Inf"`.

use std::fmt::Write as _;

use qi_simkit::stats::{Histogram, OnlineStats};

use crate::{MetricValue, MetricsSnapshot};

/// Error from [`MetricsSnapshot::from_json`], with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Render an `f64` as a JSON value: shortest-round-trip decimal for
/// finite values, quoted sentinel strings otherwise.
fn fmt_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v == f64::INFINITY {
        out.push_str("\"Inf\"");
    } else if v == f64::NEG_INFINITY {
        out.push_str("\"-Inf\"");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn fmt_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    /// Render the snapshot as stable, pretty-printed JSON. Byte-identical
    /// output for equal snapshots; suitable as a golden-file format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"qi-telemetry/v1\",\n  \"metrics\": {");
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            fmt_string(&mut out, name);
            out.push_str(": ");
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {c}}}");
                }
                MetricValue::Gauge(g) => {
                    out.push_str("{\"type\": \"gauge\", \"value\": ");
                    fmt_f64(&mut out, *g);
                    out.push('}');
                }
                MetricValue::Stats(s) => {
                    let _ = write!(out, "{{\"type\": \"stats\", \"count\": {}, ", s.count());
                    out.push_str("\"sum\": ");
                    fmt_f64(&mut out, s.sum());
                    out.push_str(", \"mean\": ");
                    fmt_f64(&mut out, s.mean());
                    out.push_str(", \"m2\": ");
                    fmt_f64(&mut out, s.m2());
                    out.push_str(", \"min\": ");
                    fmt_f64(&mut out, s.min());
                    out.push_str(", \"max\": ");
                    fmt_f64(&mut out, s.max());
                    out.push('}');
                }
                MetricValue::Histogram(h) => {
                    out.push_str("{\"type\": \"histogram\", \"lo\": ");
                    fmt_f64(&mut out, h.lo());
                    out.push_str(", \"hi\": ");
                    fmt_f64(&mut out, h.hi());
                    out.push_str(", \"buckets\": [");
                    for (i, b) in h.buckets().iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{b}");
                    }
                    let _ = write!(
                        out,
                        "], \"underflow\": {}, \"overflow\": {}}}",
                        h.underflow(),
                        h.overflow()
                    );
                }
            }
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a snapshot previously rendered by [`MetricsSnapshot::to_json`].
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        let obj = root.as_object("document")?;
        let metrics_json = obj
            .iter()
            .find(|(k, _)| k == "metrics")
            .ok_or(JsonError {
                message: "missing `metrics` key".into(),
                offset: 0,
            })?
            .1
            .as_object("metrics")?;
        let mut snap = MetricsSnapshot::new();
        for (name, body) in metrics_json {
            let fields = body.as_object(name)?;
            let kind = get(fields, name, "type")?.as_str(name)?;
            let value = match kind {
                "counter" => MetricValue::Counter(get(fields, name, "value")?.as_u64(name)?),
                "gauge" => MetricValue::Gauge(get(fields, name, "value")?.as_f64(name)?),
                "stats" => MetricValue::Stats(OnlineStats::from_parts(
                    get(fields, name, "count")?.as_u64(name)?,
                    get(fields, name, "mean")?.as_f64(name)?,
                    get(fields, name, "m2")?.as_f64(name)?,
                    get(fields, name, "sum")?.as_f64(name)?,
                    get(fields, name, "min")?.as_f64(name)?,
                    get(fields, name, "max")?.as_f64(name)?,
                )),
                "histogram" => {
                    let buckets = get(fields, name, "buckets")?
                        .as_array(name)?
                        .iter()
                        .map(|v| v.as_u64(name))
                        .collect::<Result<Vec<u64>, JsonError>>()?;
                    MetricValue::Histogram(Histogram::from_parts(
                        get(fields, name, "lo")?.as_f64(name)?,
                        get(fields, name, "hi")?.as_f64(name)?,
                        buckets,
                        get(fields, name, "underflow")?.as_u64(name)?,
                        get(fields, name, "overflow")?.as_u64(name)?,
                    ))
                }
                other => {
                    return Err(JsonError {
                        message: format!("metric `{name}`: unknown type `{other}`"),
                        offset: 0,
                    })
                }
            };
            snap.metrics.insert(name.clone(), value);
        }
        Ok(snap)
    }
}

fn get<'a>(fields: &'a [(String, Json)], metric: &str, key: &str) -> Result<&'a Json, JsonError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| JsonError {
            message: format!("metric `{metric}`: missing `{key}`"),
            offset: 0,
        })
}

/// Minimal JSON value. Numbers keep their raw text so `u64` counters
/// round-trip without a float detour.
#[derive(Clone, Debug)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(String),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Object(o) => Ok(o),
            _ => Err(JsonError {
                message: format!("`{what}`: expected object"),
                offset: 0,
            }),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(a) => Ok(a),
            _ => Err(JsonError {
                message: format!("`{what}`: expected array"),
                offset: 0,
            }),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(JsonError {
                message: format!("`{what}`: expected string"),
                offset: 0,
            }),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|_| JsonError {
                message: format!("`{what}`: `{raw}` is not a u64"),
                offset: 0,
            }),
            _ => Err(JsonError {
                message: format!("`{what}`: expected unsigned integer"),
                offset: 0,
            }),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Json::Num(raw) => raw.parse().map_err(|_| JsonError {
                message: format!("`{what}`: `{raw}` is not a number"),
                offset: 0,
            }),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "Inf" => Ok(f64::INFINITY),
                "-Inf" => Ok(f64::NEG_INFINITY),
                _ => Err(JsonError {
                    message: format!("`{what}`: `{s}` is not a number sentinel"),
                    offset: 0,
                }),
            },
            _ => Err(JsonError {
                message: format!("`{what}`: expected number"),
                offset: 0,
            }),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut reg = Registry::new();
        let c = reg.counter("pfs.ost0.ops");
        let g = reg.gauge("pfs.nic0.util");
        let s = reg.stats("mds.lock_wait_us");
        let h = reg.histogram("disk0.service_us", 0.0, 1000.0, 4);
        reg.add(c, 123);
        reg.set(g, 0.375);
        reg.observe(s, 12.5);
        reg.observe(s, 20.0);
        reg.observe(h, 5.0);
        reg.observe(h, 2000.0);
        reg.snapshot()
    }

    #[test]
    fn round_trip_is_exact_and_byte_stable() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(snap, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn empty_stats_round_trip() {
        let mut reg = Registry::new();
        reg.stats("never_observed");
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("not json").is_err());
        assert!(MetricsSnapshot::from_json("{}").is_err()); // no `metrics`
        assert!(MetricsSnapshot::from_json("{\"metrics\": {}} trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut snap = MetricsSnapshot::new();
        snap.put("weird\"name\\with\nescapes", crate::MetricValue::Counter(1));
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(snap, back);
    }
}
