//! Property suite for the fused immutable inference path: on ANY valid
//! architecture and finite parameters, the fused width-specialised
//! kernels in `qi_ml::infer` must match the naive
//! `matmul` → `add_row_vec` → `Relu` composition **bit for bit** — not
//! approximately. This is what lets the serving engine switch to the
//! fused path without perturbing a single golden snapshot.

use proptest::prelude::*;
use qi_ml::data::Standardizer;
use qi_ml::layers::{Dense, Mlp};
use qi_ml::matrix::Matrix;
use qi_ml::model::KernelNet;
use qi_ml::train::TrainedModel;
use qi_ml::InferScratch;
use qi_monitor::schema::FeatureSchema;

fn mlp_from(widths: &[usize], params: &mut impl Iterator<Item = f32>) -> Mlp {
    let layers = widths
        .windows(2)
        .map(|p| {
            let w: Vec<f32> = params.by_ref().take(p[0] * p[1]).collect();
            let b: Vec<f32> = params.by_ref().take(p[1]).collect();
            Dense::from_params(p[0], p[1], w, b)
        })
        .collect();
    Mlp::from_layers(layers)
}

fn n_params(widths: &[usize]) -> usize {
    widths.windows(2).map(|p| p[0] * p[1] + p[1]).sum()
}

/// Arbitrary MLP architecture — widths deliberately span both the
/// specialised kernel widths (1..32) and the dynamic fallback (>32,
/// odd sizes) — plus a matching random input batch.
fn arb_mlp_and_input() -> impl Strategy<Value = (Mlp, usize, Vec<f32>)> {
    (
        prop::collection::vec(1usize..40, 2..5), // layer widths
        1usize..9,                               // batch rows
    )
        .prop_flat_map(|(widths, rows)| {
            let total = n_params(&widths);
            let in_w = widths[0];
            (
                Just(widths),
                Just(rows),
                prop::collection::vec(-8.0f32..8.0, total),
                prop::collection::vec(-50.0f32..50.0, rows * in_w),
            )
        })
        .prop_map(|(widths, rows, params, x)| {
            let mut it = params.into_iter();
            (mlp_from(&widths, &mut it), rows, x)
        })
}

/// Any structurally valid `TrainedModel` (kernel-net family) — same
/// generator family as `tests/proptests.rs`.
fn arb_model() -> impl Strategy<Value = (TrainedModel, usize, Vec<f32>)> {
    (2usize..5, 3usize..8, 2usize..6, 2usize..4, 1usize..7).prop_flat_map(
        |(servers, feats, hidden, classes, samples)| {
            let total = n_params(&[feats, hidden, 1]) + n_params(&[servers, hidden, classes]);
            (
                prop::collection::vec(-100.0f32..100.0, total),
                prop::collection::vec(-10.0f32..10.0, feats),
                prop::collection::vec(0.01f32..10.0, feats),
                prop::collection::vec(-50.0f32..50.0, samples * servers * feats),
            )
                .prop_map(move |(net, mean, std, x)| {
                    let mut it = net.into_iter();
                    let kernel = mlp_from(&[feats, hidden, 1], &mut it);
                    let head = mlp_from(&[servers, hidden, classes], &mut it);
                    let model = TrainedModel::from_parts(
                        KernelNet::from_parts(kernel, head, servers),
                        Standardizer::from_parts(mean, std),
                        FeatureSchema::custom(feats),
                    );
                    (model, samples, x)
                })
        },
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// `Mlp::forward_into` (fused, `&self`, scratch buffers) is
    /// bit-identical to `Mlp::forward` (training path: per-layer
    /// matmul + bias + ReLU allocations) for arbitrary widths — both
    /// the specialised kernel widths and the dynamic fallback.
    #[test]
    fn mlp_forward_into_matches_training_forward_bitwise(
        case in arb_mlp_and_input(),
    ) {
        let (mlp, rows, x) = case;
        let mut mutable = mlp.clone();
        let reference = mutable.forward(&Matrix::from_vec(rows, mlp.inputs(), x.clone()));
        let mut scratch = InferScratch::new();
        let fused = mlp.forward_into(&x, rows, &mut scratch);
        prop_assert_eq!(bits(fused), bits(reference.data()));
        // Scratch reuse must not leak state between batches: run again
        // on the same warm scratch and require the same bits.
        let again = mlp.forward_into(&x, rows, &mut scratch);
        prop_assert_eq!(bits(again), bits(reference.data()));
    }

    /// `KernelNet::forward_into` — the full kernel→reshape→head chain
    /// over one pair of scratch buffers — matches the mutable forward
    /// bit for bit.
    #[test]
    fn kernel_net_forward_into_matches_bitwise(
        case in arb_model(),
    ) {
        let (model, samples, x) = case;
        let net = model.net();
        let rows = samples * net.n_servers();
        let mut mutable = net.clone();
        let reference = mutable.forward(&Matrix::from_vec(rows, net.n_features(), x.clone()));
        let mut scratch = InferScratch::new();
        let fused = net.forward_into(&x, rows, &mut scratch);
        prop_assert_eq!(bits(fused), bits(reference.data()));
    }

    /// The whole serving entry point: `predict_batch_into`
    /// (standardise into scratch → fused forward → argmax) returns the
    /// same classes as the mutable `predict_batch`, ties included.
    #[test]
    fn predict_batch_into_matches_predict_batch(
        case in arb_model(),
    ) {
        let (mut model, samples, x) = case;
        let rows = samples * model.n_servers();
        let stacked = Matrix::from_vec(rows, model.n_features(), x.clone());
        let reference = model.predict_batch(&stacked);
        let mut scratch = InferScratch::new();
        let mut out = Vec::new();
        model.predict_batch_into(&x, samples, &mut scratch, &mut out);
        prop_assert_eq!(out, reference);
    }
}
