//! Property-based tests for the neural-network stack.

use proptest::prelude::*;
use qi_ml::data::{Dataset, Standardizer};
use qi_ml::layers::{Dense, Mlp};
use qi_ml::loss::{inverse_frequency_weights, softmax, softmax_cross_entropy};
use qi_ml::matrix::Matrix;
use qi_ml::metrics::ConfusionMatrix;
use qi_ml::model::KernelNet;
use qi_ml::serialize::{model_from_text, model_to_text};
use qi_ml::train::TrainedModel;
use qi_monitor::schema::FeatureSchema;

fn mlp_from(widths: &[usize], params: &mut impl Iterator<Item = f32>) -> Mlp {
    let layers = widths
        .windows(2)
        .map(|p| {
            let w: Vec<f32> = params.by_ref().take(p[0] * p[1]).collect();
            let b: Vec<f32> = params.by_ref().take(p[1]).collect();
            Dense::from_params(p[0], p[1], w, b)
        })
        .collect();
    Mlp::from_layers(layers)
}

/// Any structurally valid `TrainedModel`: random architecture within the
/// kernel-net family (kernel ends in one score, head starts at the
/// server count) and random finite parameters.
fn arb_model() -> impl Strategy<Value = TrainedModel> {
    (2usize..5, 3usize..8, 2usize..6, 2usize..4).prop_flat_map(
        |(servers, feats, hidden, classes)| {
            let n_params =
                |widths: &[usize]| -> usize { widths.windows(2).map(|p| p[0] * p[1] + p[1]).sum() };
            let total = n_params(&[feats, hidden, 1]) + n_params(&[servers, hidden, classes]);
            (
                prop::collection::vec(-100.0f32..100.0, total),
                prop::collection::vec(-10.0f32..10.0, feats),
                prop::collection::vec(0.01f32..10.0, feats),
            )
                .prop_map(move |(net, mean, std)| {
                    let mut it = net.into_iter();
                    let kernel = mlp_from(&[feats, hidden, 1], &mut it);
                    let head = mlp_from(&[servers, hidden, classes], &mut it);
                    TrainedModel::from_parts(
                        KernelNet::from_parts(kernel, head, servers),
                        Standardizer::from_parts(mean, std),
                        FeatureSchema::custom(feats),
                    )
                })
        },
    )
}

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-50.0f32..50.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// Softmax rows are probability distributions for any finite logits.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(4, 5)) {
        let p = softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", r, sum);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to
    /// ~0 when all class weights are equal (softmax gradient property).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        m in matrix_strategy(6, 3),
        labels in prop::collection::vec(0usize..3, 6),
    ) {
        let (loss, grad) = softmax_cross_entropy(&m, &labels, &[1.0, 1.0, 1.0]);
        prop_assert!(loss >= 0.0);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} grad sums to {}", r, s);
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let mut bc = b.clone();
        for (x, &y) in bc.data_mut().iter_mut().zip(c.data()) {
            *x += y;
        }
        let left = a.matmul(&bc);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        for i in 0..left.data().len() {
            let rhs = ab.data()[i] + ac.data()[i];
            prop_assert!(
                (left.data()[i] - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()),
                "index {}: {} vs {}",
                i,
                left.data()[i],
                rhs
            );
        }
    }

    /// `t_matmul`/`matmul_t` agree with explicit transposes for any
    /// shapes.
    #[test]
    fn transpose_products_agree(
        a in matrix_strategy(5, 3),
        b in matrix_strategy(5, 2),
    ) {
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        prop_assert_eq!(fast, slow);
        let c = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.5 - 3.0).collect());
        let fast2 = a.matmul_t(&c);
        let slow2 = a.matmul(&c.transpose());
        prop_assert_eq!(fast2, slow2);
    }

    /// Standardised training data has ~zero mean per feature; transform
    /// never produces non-finite values even with constant columns.
    #[test]
    fn standardizer_is_safe(
        rows in 2usize..30,
        constant in -5.0f32..5.0,
    ) {
        let cols = 4;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            data.push(constant); // constant column
            data.push(r as f32);
            data.push((r as f32).sin() * 10.0);
            data.push(-(r as f32) * 0.25);
        }
        let x = Matrix::from_vec(rows, cols, data);
        let st = Standardizer::fit(&x);
        let mut t = x.clone();
        st.transform(&mut t);
        prop_assert!(t.data().iter().all(|v| v.is_finite()));
        for c in 0..cols {
            let mean: f32 = (0..rows).map(|r| t.get(r, c)).sum::<f32>() / rows as f32;
            prop_assert!(mean.abs() < 1e-3, "col {} mean {}", c, mean);
        }
    }

    /// Confusion-matrix identities hold for any recorded pairs:
    /// accuracy = diag/total, per-class recall·support sums to the
    /// number of correct predictions, and every score is in [0, 1].
    #[test]
    fn confusion_matrix_identities(
        pairs in prop::collection::vec((0usize..3, 0usize..3), 1..200),
    ) {
        let mut cm = ConfusionMatrix::new(3);
        for &(a, p) in &pairs {
            cm.record(a, p);
        }
        prop_assert_eq!(cm.total(), pairs.len() as u64);
        let diag: u64 = (0..3).map(|i| cm.get(i, i)).sum();
        prop_assert!((cm.accuracy() - diag as f64 / pairs.len() as f64).abs() < 1e-12);
        for c in 0..3 {
            for v in [cm.precision(c), cm.recall(c), cm.f1(c)] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
    }

    /// Inverse-frequency weights: present classes have positive weight
    /// whose mean is 1; rarer classes never get smaller weights.
    #[test]
    fn class_weights_order_by_rarity(
        labels in prop::collection::vec(0usize..3, 3..300),
    ) {
        let w = inverse_frequency_weights(&labels, 3);
        let mut counts = [0usize; 3];
        for &l in &labels {
            counts[l] += 1;
        }
        for a in 0..3 {
            for b in 0..3 {
                if counts[a] > 0 && counts[b] > 0 && counts[a] < counts[b] {
                    prop_assert!(w[a] >= w[b], "rarer class got smaller weight");
                }
            }
        }
        let present: Vec<f32> = (0..3).filter(|&c| counts[c] > 0).map(|c| w[c]).collect();
        let mean: f32 = present.iter().sum::<f32>() / present.len() as f32;
        prop_assert!((mean - 1.0).abs() < 1e-4);
    }

    /// Dataset split is a partition for any size/fraction.
    #[test]
    fn dataset_split_partitions(
        n in 2usize..120,
        frac in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let servers = 2;
        let samples: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..servers * 3).map(|j| (i * 7 + j) as f32).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = Dataset::from_samples(samples, y, servers);
        let (train, test) = d.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        // Row multiset is preserved: compare sorted first-feature values.
        let mut all: Vec<f32> = Vec::new();
        for i in 0..train.len() {
            all.push(train.sample_rows(i).get(0, 0));
        }
        for i in 0..test.len() {
            all.push(test.sample_rows(i).get(0, 0));
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut orig: Vec<f32> = (0..n).map(|i| d.sample_rows(i).get(0, 0)).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(all, orig);
    }

    /// QIMODEL round trip is bit-identical for ANY valid model: the
    /// re-serialized text matches byte for byte (hex bit patterns, so
    /// parameter bits survive exactly) and predictions agree.
    #[test]
    fn serialized_model_round_trips_bit_identically(
        model in arb_model(),
        seed in 0u64..1_000,
    ) {
        let mut model = model;
        let text = model_to_text(&model);
        let mut back = model_from_text(&text).expect("own output parses");
        prop_assert_eq!(model_to_text(&back), text.clone());
        // Bit-identical predictions on a pseudo-random feature block.
        let shape = model.shape();
        let block: Vec<f32> = (0..shape.n_servers * shape.n_features)
            .map(|j| {
                let h = (j as u64 + 1).wrapping_mul(seed.wrapping_mul(2) + 1);
                ((h >> 16) as u32 % 4_000) as f32 / 1_000.0 - 2.0
            })
            .collect();
        let m = Matrix::from_vec(shape.n_servers, shape.n_features, block);
        prop_assert_eq!(model.predict_one(&m), back.predict_one(&m));
    }

    /// Truncating a QIMODEL file anywhere inside its content always
    /// yields a `ModelParseError` — never a panic, never a silently
    /// different model. (The trailing checksum line guarantees this.)
    #[test]
    fn truncated_model_files_always_error(
        model in arb_model(),
        frac in 0.0f64..1.0,
    ) {
        let text = model_to_text(&model);
        let content = text.trim_end().len();
        let cut = ((frac * content as f64) as usize).min(content - 1);
        prop_assert!(model_from_text(&text[..cut]).is_err());
    }

    /// Flipping any single bit of a QIMODEL file's content always yields
    /// a `ModelParseError`: a flip in the body breaks the FNV-1a
    /// checksum, a flip in the checksum line breaks its own syntax or
    /// the match. Never a panic.
    #[test]
    fn bit_flipped_model_files_always_error(
        model in arb_model(),
        frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let text = model_to_text(&model);
        let content = text.trim_end().len();
        let mut bytes = text.into_bytes();
        let i = ((frac * content as f64) as usize).min(content - 1);
        bytes[i] ^= 1 << bit;
        match String::from_utf8(bytes) {
            // Invalid UTF-8 would already be rejected by any reader.
            Err(_) => {}
            Ok(corrupt) => prop_assert!(
                model_from_text(&corrupt).is_err(),
                "flip of bit {} at byte {} parsed successfully",
                bit,
                i
            ),
        }
    }
}
