//! Property-based tests for the neural-network stack.

use proptest::prelude::*;
use qi_ml::data::{Dataset, Standardizer};
use qi_ml::loss::{inverse_frequency_weights, softmax, softmax_cross_entropy};
use qi_ml::matrix::Matrix;
use qi_ml::metrics::ConfusionMatrix;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-50.0f32..50.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// Softmax rows are probability distributions for any finite logits.
    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(4, 5)) {
        let p = softmax(&m);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", r, sum);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to
    /// ~0 when all class weights are equal (softmax gradient property).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        m in matrix_strategy(6, 3),
        labels in prop::collection::vec(0usize..3, 6),
    ) {
        let (loss, grad) = softmax_cross_entropy(&m, &labels, &[1.0, 1.0, 1.0]);
        prop_assert!(loss >= 0.0);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {} grad sums to {}", r, s);
        }
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(4, 2),
    ) {
        let mut bc = b.clone();
        for (x, &y) in bc.data_mut().iter_mut().zip(c.data()) {
            *x += y;
        }
        let left = a.matmul(&bc);
        let ab = a.matmul(&b);
        let ac = a.matmul(&c);
        for i in 0..left.data().len() {
            let rhs = ab.data()[i] + ac.data()[i];
            prop_assert!(
                (left.data()[i] - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()),
                "index {}: {} vs {}",
                i,
                left.data()[i],
                rhs
            );
        }
    }

    /// `t_matmul`/`matmul_t` agree with explicit transposes for any
    /// shapes.
    #[test]
    fn transpose_products_agree(
        a in matrix_strategy(5, 3),
        b in matrix_strategy(5, 2),
    ) {
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        prop_assert_eq!(fast, slow);
        let c = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.5 - 3.0).collect());
        let fast2 = a.matmul_t(&c);
        let slow2 = a.matmul(&c.transpose());
        prop_assert_eq!(fast2, slow2);
    }

    /// Standardised training data has ~zero mean per feature; transform
    /// never produces non-finite values even with constant columns.
    #[test]
    fn standardizer_is_safe(
        rows in 2usize..30,
        constant in -5.0f32..5.0,
    ) {
        let cols = 4;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            data.push(constant); // constant column
            data.push(r as f32);
            data.push((r as f32).sin() * 10.0);
            data.push(-(r as f32) * 0.25);
        }
        let x = Matrix::from_vec(rows, cols, data);
        let st = Standardizer::fit(&x);
        let mut t = x.clone();
        st.transform(&mut t);
        prop_assert!(t.data().iter().all(|v| v.is_finite()));
        for c in 0..cols {
            let mean: f32 = (0..rows).map(|r| t.get(r, c)).sum::<f32>() / rows as f32;
            prop_assert!(mean.abs() < 1e-3, "col {} mean {}", c, mean);
        }
    }

    /// Confusion-matrix identities hold for any recorded pairs:
    /// accuracy = diag/total, per-class recall·support sums to the
    /// number of correct predictions, and every score is in [0, 1].
    #[test]
    fn confusion_matrix_identities(
        pairs in prop::collection::vec((0usize..3, 0usize..3), 1..200),
    ) {
        let mut cm = ConfusionMatrix::new(3);
        for &(a, p) in &pairs {
            cm.record(a, p);
        }
        prop_assert_eq!(cm.total(), pairs.len() as u64);
        let diag: u64 = (0..3).map(|i| cm.get(i, i)).sum();
        prop_assert!((cm.accuracy() - diag as f64 / pairs.len() as f64).abs() < 1e-12);
        for c in 0..3 {
            for v in [cm.precision(c), cm.recall(c), cm.f1(c)] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
    }

    /// Inverse-frequency weights: present classes have positive weight
    /// whose mean is 1; rarer classes never get smaller weights.
    #[test]
    fn class_weights_order_by_rarity(
        labels in prop::collection::vec(0usize..3, 3..300),
    ) {
        let w = inverse_frequency_weights(&labels, 3);
        let mut counts = [0usize; 3];
        for &l in &labels {
            counts[l] += 1;
        }
        for a in 0..3 {
            for b in 0..3 {
                if counts[a] > 0 && counts[b] > 0 && counts[a] < counts[b] {
                    prop_assert!(w[a] >= w[b], "rarer class got smaller weight");
                }
            }
        }
        let present: Vec<f32> = (0..3).filter(|&c| counts[c] > 0).map(|c| w[c]).collect();
        let mean: f32 = present.iter().sum::<f32>() / present.len() as f32;
        prop_assert!((mean - 1.0).abs() < 1e-4);
    }

    /// Dataset split is a partition for any size/fraction.
    #[test]
    fn dataset_split_partitions(
        n in 2usize..120,
        frac in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let servers = 2;
        let samples: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..servers * 3).map(|j| (i * 7 + j) as f32).collect())
            .collect();
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let d = Dataset::from_samples(samples, y, servers);
        let (train, test) = d.split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
        // Row multiset is preserved: compare sorted first-feature values.
        let mut all: Vec<f32> = Vec::new();
        for i in 0..train.len() {
            all.push(train.sample_rows(i).get(0, 0));
        }
        for i in 0..test.len() {
            all.push(test.sample_rows(i).get(0, 0));
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut orig: Vec<f32> = (0..n).map(|i| d.sample_rows(i).get(0, 0)).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(all, orig);
    }
}
