//! Property-based tests for the deterministic isolation forest.
//!
//! The contracts under test are the ones the PR-9 differential suite
//! leans on: scores are always finite probabilities, the fitted forest
//! is a pure function of the training *multiset* (permutation
//! invariant), and scoring is a pure function of the probe vector
//! (duplicate probes score bit-identically).

use proptest::prelude::*;
use qi_ml::anomaly::{AnomalyScorer, ForestConfig, IsolationForest};

/// A seeded Fisher–Yates permutation of `0..n` (the vendored proptest
/// has no shuffle strategy; determinism is a feature here anyway).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Training sets with a shared dimensionality plus probe vectors of the
/// same dimension.
fn arb_rows_and_probes() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<Vec<f32>>)> {
    (1usize..6).prop_flat_map(|dim| {
        (
            prop::collection::vec(
                prop::collection::vec(-1_000.0f32..1_000.0, dim..=dim),
                1..40,
            ),
            prop::collection::vec(
                prop::collection::vec(-10_000.0f32..10_000.0, dim..=dim),
                1..10,
            ),
        )
    })
}

proptest! {
    /// Every score — on training rows and on arbitrary probes far
    /// outside the training range — is a finite value in [0, 1].
    #[test]
    fn scores_are_finite_unit_interval(
        rp in arb_rows_and_probes(),
        n_trees in 1usize..30,
        sample_size in 1usize..64,
        seed in 0u64..1_000,
    ) {
        let (rows, probes) = rp;
        let f = IsolationForest::fit(
            ForestConfig { n_trees, sample_size, seed },
            &rows,
        );
        for r in rows.iter().chain(&probes) {
            let s = f.score(r);
            prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "score {s}");
        }
    }

    /// Permuting the training rows while keeping the same config yields
    /// a bit-identical forest: every probe scores to the same bits.
    #[test]
    fn training_permutation_is_bit_invariant(
        rp in arb_rows_and_probes(),
        perm_seed in 0u64..1_000,
        seed in 0u64..1_000,
    ) {
        let (rows, probes) = rp;
        let cfg = ForestConfig { n_trees: 10, sample_size: 32, seed };
        let shuffled: Vec<Vec<f32>> = permutation(rows.len(), perm_seed)
            .into_iter()
            .map(|i| rows[i].clone())
            .collect();
        let a = IsolationForest::fit(cfg, &rows);
        let b = IsolationForest::fit(cfg, &shuffled);
        for p in rows.iter().chain(&probes) {
            prop_assert_eq!(a.score(p).to_bits(), b.score(p).to_bits());
        }
    }

    /// Scoring is pure: duplicate probe vectors score bit-identically,
    /// serially and through the rayon batch path.
    #[test]
    fn duplicate_probes_score_identically(
        rp in arb_rows_and_probes(),
        seed in 0u64..1_000,
    ) {
        let (rows, probes) = rp;
        let f = IsolationForest::fit(
            ForestConfig { n_trees: 8, sample_size: 16, seed },
            &rows,
        );
        let doubled: Vec<Vec<f32>> = probes
            .iter()
            .flat_map(|p| [p.clone(), p.clone()])
            .collect();
        let batch = f.score_batch(&doubled);
        for (pair, p) in batch.chunks(2).zip(&probes) {
            prop_assert_eq!(pair[0].to_bits(), pair[1].to_bits());
            prop_assert_eq!(pair[0].to_bits(), f.score(p).to_bits());
        }
    }

    /// The calibrated threshold is one of the achievable score values'
    /// interpolation range and flags at most the expected tail of the
    /// training set itself.
    #[test]
    fn healthy_threshold_bounds_the_training_tail(
        rp in arb_rows_and_probes(),
        seed in 0u64..1_000,
    ) {
        let (rows, _probes) = rp;
        let sc = AnomalyScorer::fit_healthy(
            ForestConfig { n_trees: 10, sample_size: 32, seed },
            &rows,
            95.0,
        );
        prop_assert!(sc.threshold().is_finite());
        let flagged = rows.iter().filter(|r| sc.verdict(r).anomalous).count();
        // Strictly-above p95 leaves at most 5% of rows (plus rounding).
        prop_assert!(
            flagged * 20 <= rows.len() + 19,
            "{flagged} of {} above own p95",
            rows.len()
        );
    }
}
