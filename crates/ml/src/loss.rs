//! Softmax cross-entropy with per-class weights.
//!
//! The interference datasets are imbalanced (the paper's IO500 set is
//! ~75% positive, DLIO ~20%), so the loss supports inverse-frequency
//! class weighting.

use crate::matrix::Matrix;

/// Row-wise softmax (numerically stabilised).
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Mean weighted cross-entropy over the batch and its gradient w.r.t.
/// the logits. `class_weights[c]` scales samples labelled `c`.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
    class_weights: &[f32],
) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    assert_eq!(logits.cols(), class_weights.len(), "class count mismatch");
    let probs = softmax(logits);
    let n = logits.rows() as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label out of range");
        let w = class_weights[label];
        let p = probs.get(r, label).max(1e-12);
        loss += -p.ln() * w;
        let row = grad.row_mut(r);
        for (c, g) in row.iter_mut().enumerate() {
            let indicator = if c == label { 1.0 } else { 0.0 };
            *g = (*g - indicator) * w / n;
        }
    }
    (loss / n, grad)
}

/// Inverse-frequency class weights, normalised to mean 1.
pub fn inverse_frequency_weights(labels: &[usize], n_classes: usize) -> Vec<f32> {
    tempered_frequency_weights(labels, n_classes, 1.0)
}

/// Class weights proportional to `(1 / frequency)^exponent`, normalised
/// to mean 1 over the classes present. `exponent = 1` is full
/// inverse-frequency weighting; `0.5` tempers it (full weighting
/// over-fires the rare class on skewed datasets like DLIO's, trading
/// precision for recall); `0` disables weighting.
pub fn tempered_frequency_weights(labels: &[usize], n_classes: usize, exponent: f32) -> Vec<f32> {
    let mut counts = vec![0usize; n_classes];
    for &l in labels {
        counts[l] += 1;
    }
    let n = labels.len() as f32;
    let mut w: Vec<f32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0.0
            } else {
                (n / (n_classes as f32 * c as f32)).powf(exponent)
            }
        })
        .collect();
    let active = w.iter().filter(|&&x| x > 0.0).count().max(1) as f32;
    let mean = w.iter().sum::<f32>() / active;
    if mean > 0.0 {
        for x in &mut w {
            *x /= mean;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax(&m);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
        // Largest logit gets the largest probability.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for c in 0..3 {
            assert!((pa.get(0, c) - pb.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let good = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        let bad = Matrix::from_vec(1, 2, vec![10.0, -10.0]);
        let (l_good, _) = softmax_cross_entropy(&good, &[1], &[1.0, 1.0]);
        let (l_bad, _) = softmax_cross_entropy(&bad, &[1], &[1.0, 1.0]);
        assert!(l_good < 1e-3);
        assert!(l_bad > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let w = [1.0, 1.0, 1.0];
        let (base, grad) = softmax_cross_entropy(&logits, &labels, &w);
        let eps = 1e-3;
        for (r, c) in [(0, 0), (0, 2), (1, 1)] {
            let mut bumped = logits.clone();
            bumped.set(r, c, bumped.get(r, c) + eps);
            let (l2, _) = softmax_cross_entropy(&bumped, &labels, &w);
            let numeric = (l2 - base) / eps;
            let analytic = grad.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "({r},{c}): numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn class_weights_scale_loss() {
        let logits = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (l1, _) = softmax_cross_entropy(&logits, &[1], &[1.0, 1.0]);
        let (l2, _) = softmax_cross_entropy(&logits, &[1], &[1.0, 3.0]);
        assert!((l2 - 3.0 * l1).abs() < 1e-6);
    }

    #[test]
    fn inverse_frequency_prefers_rare_class() {
        let labels = [0, 0, 0, 0, 0, 0, 1, 1];
        let w = inverse_frequency_weights(&labels, 2);
        assert!(w[1] > w[0]);
        let mean = (w[0] + w[1]) / 2.0;
        assert!((mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missing_class_gets_zero_weight() {
        let labels = [0, 0, 2];
        let w = inverse_frequency_weights(&labels, 3);
        assert_eq!(w[1], 0.0);
        assert!(w[0] > 0.0 && w[2] > 0.0);
    }
}
