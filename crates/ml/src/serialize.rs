//! Text serialization for trained models.
//!
//! The deployed framework trains offline and predicts at runtime
//! (paper Fig. 2); persisting the trained model is what separates the
//! two phases in practice. The format is a line-oriented text file with
//! every `f32` encoded as its exact bit pattern in hex, so a round trip
//! is bit-identical and the files diff cleanly.
//!
//! ```text
//! QIMODEL v2
//! schema.version 1
//! schema.window_ns 1000000000
//! schema.client 1
//! schema.server 1
//! schema.client_len 15
//! schema.series completed_reqs sectors_read ...   (or "-" when empty)
//! schema.imputation zero
//! schema.digest 0123456789abcdef   (FNV-1a 64 of the canonical schema)
//! servers 7
//! kernel 39 32 16 1
//! head 7 16 2
//! std.mean 3f800000 ...
//! std.std  3f800000 ...
//! net.w 0 <hex...>      (layer index over kernel layers then head layers)
//! net.b 0 <hex...>
//! check 0123456789abcdef  (FNV-1a 64 over everything above)
//! ```
//!
//! The `schema.*` section (new in v2) embeds the [`FeatureSchema`] the
//! model was trained under, so the serving registry can refuse a model
//! whose feature layout does not match the pipeline it would serve —
//! legacy checksum-only `QIMODEL v1` files are rejected with a clean
//! parse error asking for a re-export. The trailing `check` line makes
//! the file self-verifying: *any* truncation or bit flip in a stored
//! model surfaces as a [`ModelParseError`] instead of silently
//! deserializing different weights — this is the trust boundary the
//! serving registry loads models across.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use qi_monitor::features::{FeatureConfig, Imputation};
use qi_monitor::schema::FeatureSchema;

use crate::data::Standardizer;
use crate::layers::{Dense, Mlp};
use crate::model::KernelNet;
use crate::train::TrainedModel;

/// A failure while parsing a serialized model.
#[derive(Debug, PartialEq, Eq)]
pub struct ModelParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error: {}", self.message)
    }
}

impl std::error::Error for ModelParseError {}

fn err(message: impl Into<String>) -> ModelParseError {
    ModelParseError {
        message: message.into(),
    }
}

fn floats_to_hex(v: &[f32]) -> String {
    let mut out = String::with_capacity(v.len() * 9);
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{:08x}", x.to_bits());
    }
    out
}

/// FNV-1a 64-bit over the serialized body (all lines above `check`).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hex_to_floats(s: &str) -> Result<Vec<f32>, ModelParseError> {
    s.split_whitespace()
        .map(|tok| {
            u32::from_str_radix(tok, 16)
                .map(f32::from_bits)
                .map_err(|_| err(format!("bad f32 hex token {tok:?}")))
        })
        .collect()
}

/// Serialize a trained model to its text form.
pub fn model_to_text(model: &TrainedModel) -> String {
    let net = model.net();
    let st = model.standardizer();
    let mut out = String::new();
    let _ = writeln!(out, "QIMODEL v2");
    let schema = model.schema();
    let _ = writeln!(out, "schema.version {}", schema.version());
    let _ = writeln!(out, "schema.window_ns {}", schema.window_nanos());
    let _ = writeln!(
        out,
        "schema.client {}",
        u8::from(schema.feature_config().client)
    );
    let _ = writeln!(
        out,
        "schema.server {}",
        u8::from(schema.feature_config().server)
    );
    let _ = writeln!(out, "schema.client_len {}", schema.client_len());
    let series = if schema.series().is_empty() {
        "-".to_string()
    } else {
        schema.series().join(" ")
    };
    let _ = writeln!(out, "schema.series {series}");
    let _ = writeln!(out, "schema.imputation {}", schema.imputation().token());
    let _ = writeln!(out, "schema.digest {:016x}", schema.digest());
    let _ = writeln!(out, "servers {}", net.n_servers());
    let widths = |m: &Mlp| {
        m.widths()
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "kernel {}", widths(net.kernel()));
    let _ = writeln!(out, "head {}", widths(net.head()));
    let _ = writeln!(out, "std.mean {}", floats_to_hex(st.mean()));
    let _ = writeln!(out, "std.std {}", floats_to_hex(st.std()));
    let mut idx = 0;
    for mlp in [net.kernel(), net.head()] {
        for layer in mlp.layers() {
            let _ = writeln!(
                out,
                "net.w {} {}",
                idx,
                floats_to_hex(layer.weights().data())
            );
            let _ = writeln!(out, "net.b {} {}", idx, floats_to_hex(layer.bias()));
            idx += 1;
        }
    }
    let sum = fnv1a(out.trim_end());
    let _ = writeln!(out, "check {sum:016x}");
    out
}

/// Parse a model back from its text form.
pub fn model_from_text(text: &str) -> Result<TrainedModel, ModelParseError> {
    // Integrity first: the last line must be a checksum over everything
    // above it, so truncations and bit flips fail here instead of
    // deserializing different weights.
    let (body, check_line) = text
        .trim_end()
        .rsplit_once('\n')
        .ok_or_else(|| err("missing checksum line"))?;
    let stored_str = check_line
        .trim()
        .strip_prefix("check ")
        .ok_or_else(|| err("missing checksum line"))?
        .trim();
    // Strict form — exactly 16 lowercase hex digits — so a corrupted
    // checksum line can never alias the value it was written as.
    if stored_str.len() != 16
        || !stored_str
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(err(format!("bad checksum {:?}", check_line.trim())));
    }
    let stored = u64::from_str_radix(stored_str, 16)
        .map_err(|_| err(format!("bad checksum {:?}", check_line.trim())))?;
    let computed = fnv1a(body);
    if stored != computed {
        return Err(err(format!(
            "checksum mismatch: file says {stored:016x}, content hashes to {computed:016x}"
        )));
    }
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("empty input"))?;
    if header.trim() == "QIMODEL v1" {
        return Err(err(
            "legacy QIMODEL v1 file carries no feature schema; re-export the model \
             with this version (train_with_schema + save_model) to serve it",
        ));
    }
    if header.trim() != "QIMODEL v2" {
        return Err(err(format!("unknown header {header:?}")));
    }
    let mut schema_version: Option<u32> = None;
    let mut schema_window_ns: Option<u64> = None;
    let mut schema_client: Option<bool> = None;
    let mut schema_server: Option<bool> = None;
    let mut schema_client_len: Option<usize> = None;
    let mut schema_series: Option<Vec<String>> = None;
    let mut schema_imputation: Option<Imputation> = None;
    let mut schema_digest: Option<u64> = None;
    let mut servers: Option<usize> = None;
    let mut kernel_widths: Option<Vec<usize>> = None;
    let mut head_widths: Option<Vec<usize>> = None;
    let mut mean: Option<Vec<f32>> = None;
    let mut std: Option<Vec<f32>> = None;
    let mut weights: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut biases: Vec<(usize, Vec<f32>)> = Vec::new();
    for line in lines {
        let (key, rest) = line
            .split_once(' ')
            .ok_or_else(|| err(format!("malformed line {line:?}")))?;
        let parse_bool = |what: &str, s: &str| match s.trim() {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(err(format!("bad {what} flag {other:?}"))),
        };
        match key {
            "schema.version" => {
                schema_version = Some(rest.trim().parse().map_err(|_| err("bad schema version"))?)
            }
            "schema.window_ns" => {
                schema_window_ns = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err("bad schema window_ns"))?,
                )
            }
            "schema.client" => schema_client = Some(parse_bool("schema.client", rest)?),
            "schema.server" => schema_server = Some(parse_bool("schema.server", rest)?),
            "schema.client_len" => {
                schema_client_len = Some(
                    rest.trim()
                        .parse()
                        .map_err(|_| err("bad schema client_len"))?,
                )
            }
            "schema.series" => {
                schema_series = Some(if rest.trim() == "-" {
                    Vec::new()
                } else {
                    rest.split_whitespace().map(str::to_string).collect()
                })
            }
            "schema.imputation" => {
                schema_imputation =
                    Some(Imputation::from_token(rest.trim()).ok_or_else(|| {
                        err(format!("unknown schema imputation {:?}", rest.trim()))
                    })?)
            }
            "schema.digest" => {
                schema_digest = Some(
                    u64::from_str_radix(rest.trim(), 16).map_err(|_| err("bad schema digest"))?,
                )
            }
            "servers" => servers = Some(rest.trim().parse().map_err(|_| err("bad server count"))?),
            "kernel" | "head" => {
                let w: Result<Vec<usize>, _> = rest.split_whitespace().map(|t| t.parse()).collect();
                let w = w.map_err(|_| err(format!("bad widths in {key}")))?;
                if w.len() < 2 {
                    return Err(err(format!("{key} needs at least two widths")));
                }
                if key == "kernel" {
                    kernel_widths = Some(w)
                } else {
                    head_widths = Some(w)
                }
            }
            "std.mean" => mean = Some(hex_to_floats(rest)?),
            "std.std" => std = Some(hex_to_floats(rest)?),
            "net.w" | "net.b" => {
                let (idx, payload) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(format!("malformed {key} line")))?;
                let idx: usize = idx.parse().map_err(|_| err("bad layer index"))?;
                let v = hex_to_floats(payload)?;
                if key == "net.w" {
                    weights.push((idx, v))
                } else {
                    biases.push((idx, v))
                }
            }
            other => return Err(err(format!("unknown key {other:?}"))),
        }
    }
    let schema = FeatureSchema::from_parts(
        schema_version.ok_or_else(|| err("missing schema.version"))?,
        schema_window_ns.ok_or_else(|| err("missing schema.window_ns"))?,
        FeatureConfig {
            client: schema_client.ok_or_else(|| err("missing schema.client"))?,
            server: schema_server.ok_or_else(|| err("missing schema.server"))?,
        },
        schema_client_len.ok_or_else(|| err("missing schema.client_len"))?,
        schema_series.ok_or_else(|| err("missing schema.series"))?,
        schema_imputation.ok_or_else(|| err("missing schema.imputation"))?,
    );
    let stored_digest = schema_digest.ok_or_else(|| err("missing schema.digest"))?;
    if stored_digest != schema.digest() {
        return Err(err(format!(
            "schema digest mismatch: file says {stored_digest:016x}, \
             schema hashes to {:016x}",
            schema.digest()
        )));
    }
    let servers = servers.ok_or_else(|| err("missing servers"))?;
    let kernel_widths = kernel_widths.ok_or_else(|| err("missing kernel widths"))?;
    let head_widths = head_widths.ok_or_else(|| err("missing head widths"))?;
    let mean = mean.ok_or_else(|| err("missing std.mean"))?;
    let std = std.ok_or_else(|| err("missing std.std"))?;
    if mean.len() != std.len() {
        return Err(err("standardizer length mismatch"));
    }
    if std.iter().any(|&s| s <= 0.0 || s.is_nan()) {
        return Err(err("non-positive standardizer std"));
    }
    weights.sort_by_key(|(i, _)| *i);
    biases.sort_by_key(|(i, _)| *i);
    let n_layers = kernel_widths.len() - 1 + head_widths.len() - 1;
    if weights.len() != n_layers || biases.len() != n_layers {
        return Err(err(format!(
            "expected {n_layers} layers, got {} weights / {} biases",
            weights.len(),
            biases.len()
        )));
    }
    let build = |widths: &[usize], base: usize| -> Result<Mlp, ModelParseError> {
        let mut layers = Vec::new();
        for (k, pair) in widths.windows(2).enumerate() {
            let (wi, w) = &weights[base + k];
            let (bi, b) = &biases[base + k];
            if *wi != base + k || *bi != base + k {
                return Err(err("layer indices not dense"));
            }
            if w.len() != pair[0] * pair[1] || b.len() != pair[1] {
                return Err(err(format!("layer {k} parameter shape mismatch")));
            }
            layers.push(Dense::from_params(pair[0], pair[1], w.clone(), b.clone()));
        }
        Ok(Mlp::from_layers(layers))
    };
    let kernel = build(&kernel_widths, 0)?;
    let head = build(&head_widths, kernel_widths.len() - 1)?;
    if head.inputs() != servers {
        return Err(err("head width does not match server count"));
    }
    if schema.vector_len() != kernel_widths[0] {
        return Err(err(format!(
            "schema describes {} features per server vector, network takes {}",
            schema.vector_len(),
            kernel_widths[0]
        )));
    }
    let net = KernelNet::from_parts(kernel, head, servers);
    Ok(TrainedModel::from_parts(
        net,
        Standardizer::from_parts(mean, std),
        schema,
    ))
}

/// Write a model to `path`.
pub fn save_model<P: AsRef<Path>>(model: &TrainedModel, path: P) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, model_to_text(model))
}

/// Read a model back from `path`.
pub fn load_model<P: AsRef<Path>>(path: P) -> io::Result<TrainedModel> {
    let text = fs::read_to_string(path)?;
    model_from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained() -> (TrainedModel, Dataset) {
        let mut rng = StdRng::seed_from_u64(4);
        let servers = 3;
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let pos = i % 2 == 0;
            let block: Vec<f32> = (0..servers * 5)
                .map(|_| {
                    if pos {
                        rng.gen_range(1.0..2.0)
                    } else {
                        rng.gen_range(-2.0..-1.0)
                    }
                })
                .collect();
            samples.push(block);
            y.push(usize::from(pos));
        }
        let data = Dataset::from_samples(samples, y, servers);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        (train(&data, &cfg), data)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let (mut model, data) = trained();
        let text = model_to_text(&model);
        let mut back = model_from_text(&text).expect("parse");
        assert_eq!(model.predict(&data), back.predict(&data));
        // Serialising again yields the same text.
        assert_eq!(model_to_text(&back), text);
    }

    #[test]
    fn save_load_files() {
        let (mut model, data) = trained();
        let path = std::env::temp_dir().join("qi_model_test/model.qim");
        save_model(&model, &path).expect("save");
        let mut back = load_model(&path).expect("load");
        assert_eq!(model.predict(&data), back.predict(&data));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Rewrite `text`'s trailing checksum so only the *inner* change
    /// under test (not the outer integrity check) trips the parser.
    fn with_valid_checksum(text: &str) -> String {
        let (body, _) = text.trim_end().rsplit_once('\n').expect("check line");
        format!("{body}\ncheck {:016x}\n", fnv1a(body))
    }

    #[test]
    fn rejects_corrupt_inputs() {
        let (model, _) = trained();
        let text = model_to_text(&model);
        assert!(model_from_text("garbage").is_err());
        assert!(model_from_text("QIMODEL v2\nservers 3\n").is_err());
        // Flip the header version.
        let bad = with_valid_checksum(&text.replace("QIMODEL v2", "QIMODEL v9"));
        assert!(model_from_text(&bad).is_err());
        // Truncate a layer.
        let truncated: String = text
            .lines()
            .filter(|l| !l.starts_with("net.b 0"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(model_from_text(&truncated).is_err());
        // Corrupt a float token.
        let corrupt = text.replacen("std.mean ", "std.mean zzzzzzzz ", 1);
        assert!(model_from_text(&corrupt).is_err());
    }

    #[test]
    fn round_trip_preserves_the_schema() {
        let (model, _) = trained();
        let back = model_from_text(&model_to_text(&model)).expect("parse");
        assert_eq!(back.schema(), model.schema());
    }

    #[test]
    fn legacy_v1_file_is_rejected_cleanly() {
        // Reconstruct what a pre-schema export looked like: no schema
        // section, v1 header, valid checksum. Parsing must fail with a
        // clean ModelParseError pointing at the missing schema — never
        // a panic, never a silently schema-less model.
        let (model, _) = trained();
        let v1_body: String = model_to_text(&model)
            .lines()
            .filter(|l| !l.starts_with("schema.") && !l.starts_with("check "))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("QIMODEL v2", "QIMODEL v1");
        let v1_text = format!("{v1_body}\ncheck {:016x}\n", fnv1a(&v1_body));
        let e = model_from_text(&v1_text)
            .err()
            .expect("legacy file rejected");
        assert!(e.message.contains("no feature schema"), "{e}");
    }

    #[test]
    fn tampered_schema_digest_is_rejected() {
        let (model, _) = trained();
        let text = model_to_text(&model);
        let digest_line = text
            .lines()
            .find(|l| l.starts_with("schema.digest "))
            .expect("digest line");
        let tampered =
            with_valid_checksum(&text.replace(digest_line, "schema.digest 0000000000000000"));
        let e = model_from_text(&tampered)
            .err()
            .expect("digest mismatch rejected");
        assert!(e.message.contains("schema digest mismatch"), "{e}");
    }

    #[test]
    fn schema_network_width_disagreement_is_rejected() {
        // A schema describing a different vector length than the
        // network's input layer must not parse, even with valid
        // checksums and digests.
        let (model, _) = trained();
        let text = model_to_text(&model);
        let other = FeatureSchema::custom(model.n_features() + 1);
        let swapped = text
            .lines()
            .map(|l| {
                if l.starts_with("schema.client_len ") {
                    format!("schema.client_len {}", other.client_len())
                } else if l.starts_with("schema.digest ") {
                    format!("schema.digest {:016x}", other.digest())
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let e = model_from_text(&with_valid_checksum(&swapped))
            .err()
            .expect("width mismatch");
        assert!(e.message.contains("features per server vector"), "{e}");
    }

    #[test]
    fn hex_floats_round_trip_exactly() {
        let xs = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, 3.4e38, -7.25e-12];
        let hex = floats_to_hex(&xs);
        let back = hex_to_floats(&hex).expect("parse");
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
