//! Dense layers, ReLU, and the MLP container, with manual backprop.

use rand::rngs::StdRng;
use rand::Rng;

use crate::infer::{dense_fused, InferScratch};
use crate::matrix::Matrix;
use crate::optim::Adam;

/// A fully connected layer `y = x·W + b`.
#[derive(Clone)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    input: Option<Matrix>,
}

impl Dense {
    /// He-initialised layer (suits the ReLU activations used throughout).
    pub fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / inputs as f32).sqrt();
        let data = (0..inputs * outputs)
            .map(|_| {
                // Box-Muller standard normal.
                let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * scale
            })
            .collect();
        Dense {
            w: Matrix::from_vec(inputs, outputs, data),
            b: vec![0.0; outputs],
            grad_w: Matrix::zeros(inputs, outputs),
            grad_b: vec![0.0; outputs],
            input: None,
        }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass; caches the input for backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_vec(&self.b);
        self.input = Some(x.clone());
        y
    }

    /// Backward pass: accumulates parameter gradients, returns dL/dx.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.input.as_ref().expect("backward before forward");
        self.grad_w = x.t_matmul(grad_out);
        self.grad_b = grad_out.col_sums();
        grad_out.matmul_t(&self.w)
    }

    /// Apply the accumulated gradients through `opt`. `slot` must be a
    /// stable per-layer index so Adam keeps its moments straight.
    pub fn apply(&mut self, opt: &mut Adam, slot: &mut usize, lr: f32) {
        opt.step(*slot, self.w.data_mut(), self.grad_w.data());
        *slot += 1;
        opt.step(*slot, &mut self.b, &self.grad_b);
        *slot += 1;
        let _ = lr; // learning rate lives in the optimizer
    }

    /// Number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// The weight matrix (inputs × outputs).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Rebuild a layer from serialized parameters.
    pub fn from_params(inputs: usize, outputs: usize, w: Vec<f32>, b: Vec<f32>) -> Self {
        assert_eq!(w.len(), inputs * outputs, "weight shape mismatch");
        assert_eq!(b.len(), outputs, "bias shape mismatch");
        Dense {
            w: Matrix::from_vec(inputs, outputs, w),
            b,
            grad_w: Matrix::zeros(inputs, outputs),
            grad_b: vec![0.0; outputs],
            input: None,
        }
    }
}

/// ReLU activation (stores its mask for backprop).
#[derive(Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Forward pass in place.
    pub fn forward(&mut self, mut x: Matrix) -> Matrix {
        self.mask.clear();
        self.mask.reserve(x.data().len());
        for v in x.data_mut() {
            let pass = *v > 0.0;
            self.mask.push(pass);
            if !pass {
                *v = 0.0;
            }
        }
        x
    }

    /// Backward pass in place.
    pub fn backward(&self, mut grad: Matrix) -> Matrix {
        assert_eq!(grad.data().len(), self.mask.len());
        for (g, &m) in grad.data_mut().iter_mut().zip(&self.mask) {
            if !m {
                *g = 0.0;
            }
        }
        grad
    }
}

/// A multilayer perceptron: Dense → ReLU → … → Dense (no final
/// activation; pair with a softmax loss or use raw outputs).
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    relus: Vec<Relu>,
}

impl Mlp {
    /// MLP with the given layer widths, e.g. `[39, 32, 16, 1]`.
    pub fn new(widths: &[usize], rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "MLP needs at least one layer");
        let layers: Vec<Dense> = widths
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        let relus = (0..layers.len().saturating_sub(1))
            .map(|_| Relu::default())
            .collect();
        Mlp { layers, relus }
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs()
    }

    /// Output width.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("non-empty").outputs()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut cur = self.layers[0].forward(x);
        for i in 1..n {
            cur = self.relus[i - 1].forward(cur);
            cur = self.layers[i].forward(&cur);
        }
        cur
    }

    /// Immutable inference forward: the same math as [`Mlp::forward`]
    /// — bit-identical, proven by the property suite in
    /// `tests/fused_infer.rs` — but `&self`, allocation-free once the
    /// scratch buffers are warm, and fused through the
    /// width-specialised kernels in [`crate::infer`]. `x` is
    /// `rows × inputs` row-major; the returned `rows × outputs` logits
    /// live in `scratch` until the next call.
    pub fn forward_into<'s>(
        &self,
        x: &[f32],
        rows: usize,
        scratch: &'s mut InferScratch,
    ) -> &'s [f32] {
        let InferScratch { a, b, .. } = scratch;
        self.forward_into_bufs(x, rows, a, b)
    }

    /// [`Mlp::forward_into`] over explicit ping-pong buffers, so callers
    /// holding a destructured [`InferScratch`] (e.g. to keep `x` staged)
    /// can chain through the same allocation.
    pub(crate) fn forward_into_bufs<'s>(
        &self,
        x: &[f32],
        rows: usize,
        a: &'s mut Vec<f32>,
        b: &'s mut Vec<f32>,
    ) -> &'s [f32] {
        assert_eq!(x.len(), rows * self.inputs(), "input shape mismatch");
        let n = self.layers.len();
        let l0 = &self.layers[0];
        dense_fused(
            x,
            rows,
            l0.inputs(),
            l0.w.data(),
            l0.outputs(),
            &l0.b,
            n > 1,
            a,
        );
        let (mut cur, mut nxt) = (a, b);
        for (i, l) in self.layers.iter().enumerate().skip(1) {
            dense_fused(
                cur,
                rows,
                l.inputs(),
                l.w.data(),
                l.outputs(),
                &l.b,
                i + 1 < n,
                nxt,
            );
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }

    /// Backward pass from dL/dy; returns dL/dx.
    pub fn backward(&mut self, grad: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut g = self.layers[n - 1].backward(grad);
        for i in (0..n - 1).rev() {
            g = self.relus[i].backward(g);
            g = self.layers[i].backward(&g);
        }
        g
    }

    /// Apply accumulated gradients.
    pub fn apply(&mut self, opt: &mut Adam, slot: &mut usize, lr: f32) {
        for l in &mut self.layers {
            l.apply(opt, slot, lr);
        }
    }

    /// Number of trainable parameters.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Dense::n_params).sum()
    }

    /// The layer widths, e.g. `[39, 32, 16, 1]`.
    pub fn widths(&self) -> Vec<usize> {
        let mut w = vec![self.layers[0].inputs()];
        w.extend(self.layers.iter().map(Dense::outputs));
        w
    }

    /// The layers, input-side first.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Rebuild an MLP from serialized layers.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty());
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].outputs(),
                pair[1].inputs(),
                "layer widths do not chain"
            );
        }
        let relus = (0..layers.len().saturating_sub(1))
            .map(|_| Relu::default())
            .collect();
        Mlp { layers, relus }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut r = rng();
        let mut d = Dense::new(3, 2, &mut r);
        d.b = vec![10.0, 20.0];
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input → output is the bias.
        for row in 0..4 {
            assert_eq!(y.row(row), &[10.0, 20.0]);
        }
    }

    #[test]
    fn relu_masks_negatives_in_backward() {
        let mut relu = Relu::default();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = relu.backward(Matrix::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut r = rng();
        let mut d = Dense::new(2, 2, &mut r);
        let x = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1]);
        // Loss = sum(y); dL/dy = ones.
        let loss = |d: &mut Dense, x: &Matrix| -> f32 { d.forward(x).data().iter().sum() };
        let base = loss(&mut d, &x);
        let ones = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let _ = d.forward(&x);
        let _ = d.backward(&ones);
        let analytic = d.grad_w.get(0, 1);
        let eps = 1e-3;
        let old = d.w.get(0, 1);
        d.w.set(0, 1, old + eps);
        let bumped = loss(&mut d, &x);
        let numeric = (bumped - base) / eps;
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} numeric {numeric}"
        );
    }

    #[test]
    fn mlp_learns_a_linear_rule() {
        // y = 1 if x0 > x1 else 0 — trivially learnable.
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 8, 2], &mut r);
        let mut opt = Adam::new(0.01);
        let n = 64;
        let x: Vec<f32> = (0..n)
            .flat_map(|i| {
                let a = ((i * 37) % 100) as f32 / 100.0;
                let b = ((i * 53) % 100) as f32 / 100.0;
                [a, b]
            })
            .collect();
        let xm = Matrix::from_vec(n, 2, x);
        let labels: Vec<usize> = (0..n)
            .map(|i| usize::from(xm.get(i, 0) > xm.get(i, 1)))
            .collect();
        for _ in 0..300 {
            let logits = mlp.forward(&xm);
            let (_, grad) = crate::loss::softmax_cross_entropy(&logits, &labels, &[1.0, 1.0]);
            mlp.backward(&grad);
            let mut slot = 0;
            mlp.apply(&mut opt, &mut slot, 0.01);
        }
        let logits = mlp.forward(&xm);
        let correct = (0..n)
            .filter(|&i| {
                let pred = usize::from(logits.get(i, 1) > logits.get(i, 0));
                pred == labels[i]
            })
            .count();
        assert!(correct as f64 / n as f64 > 0.9, "acc {}/{n}", correct);
    }

    #[test]
    fn param_counts() {
        let mut r = rng();
        let mlp = Mlp::new(&[4, 8, 3], &mut r);
        assert_eq!(mlp.n_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(mlp.inputs(), 4);
        assert_eq!(mlp.outputs(), 3);
    }
}
