//! The paper's kernel-based network (§III-C).
//!
//! One small dense "kernel" MLP is applied to *every* server's feature
//! vector, producing a single value per server; the per-server outputs
//! are concatenated and fed through an MLP classification head. Because
//! the kernel weights are shared across servers, the model generalises
//! over which OSTs an application happens to touch.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::infer::{dense_fused, InferScratch};
use crate::layers::Mlp;
use crate::matrix::Matrix;
use crate::optim::Adam;

/// Shared-kernel per-server network.
#[derive(Clone)]
pub struct KernelNet {
    kernel: Mlp,
    head: Mlp,
    n_servers: usize,
}

impl KernelNet {
    /// Build the network.
    ///
    /// - `n_features`: width of each per-server vector.
    /// - `n_servers`: vectors per sample (OSTs + MDT).
    /// - `kernel_hidden`: hidden widths of the kernel MLP (its output is
    ///   always 1 per server).
    /// - `head_hidden`: hidden widths of the classification head.
    /// - `n_classes`: output bins (2 for the binary model, 3 for Fig. 4,
    ///   1 for the regression extension).
    pub fn new(
        n_features: usize,
        n_servers: usize,
        kernel_hidden: &[usize],
        head_hidden: &[usize],
        n_classes: usize,
        seed: u64,
    ) -> Self {
        assert!(n_features > 0 && n_servers > 0 && n_classes >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kw = vec![n_features];
        kw.extend_from_slice(kernel_hidden);
        kw.push(1);
        let mut hw = vec![n_servers];
        hw.extend_from_slice(head_hidden);
        hw.push(n_classes);
        KernelNet {
            kernel: Mlp::new(&kw, &mut rng),
            head: Mlp::new(&hw, &mut rng),
            n_servers,
        }
    }

    /// Vectors per sample.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// Output classes.
    pub fn n_classes(&self) -> usize {
        self.head.outputs()
    }

    /// Feature width per server vector.
    pub fn n_features(&self) -> usize {
        self.kernel.inputs()
    }

    /// Trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.kernel.n_params() + self.head.n_params()
    }

    /// Forward a batch: `x` is `(batch * n_servers) × n_features`, rows
    /// grouped per sample. Returns `batch × n_classes` logits.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows() % self.n_servers,
            0,
            "rows not a multiple of n_servers"
        );
        let batch = x.rows() / self.n_servers;
        let k = self.kernel.forward(x); // (batch*S) × 1
        debug_assert_eq!(k.cols(), 1);
        // Row-major (batch*S)×1 re-reads directly as batch×S.
        let h_in = Matrix::from_vec(batch, self.n_servers, k.data().to_vec());
        self.head.forward(&h_in)
    }

    /// Immutable inference forward, bit-identical to
    /// [`KernelNet::forward`] but `&self` and allocation-free once the
    /// scratch is warm. `x` is `(batch * n_servers) × n_features`
    /// row-major; the returned `batch × n_classes` logits live in
    /// `scratch` until the next call.
    pub fn forward_into<'s>(
        &self,
        x: &[f32],
        rows: usize,
        scratch: &'s mut InferScratch,
    ) -> &'s [f32] {
        let InferScratch { a, b, .. } = scratch;
        self.forward_into_bufs(x, rows, a, b)
    }

    /// [`KernelNet::forward_into`] over explicit ping-pong buffers.
    /// The kernel MLP's `(batch*S) × 1` output re-reads in place as the
    /// head's `batch × S` input (both row-major), so the whole network
    /// runs as one fused layer chain across two buffers with no
    /// reshape copy.
    pub(crate) fn forward_into_bufs<'s>(
        &self,
        x: &[f32],
        rows: usize,
        a: &'s mut Vec<f32>,
        b: &'s mut Vec<f32>,
    ) -> &'s [f32] {
        assert_eq!(rows % self.n_servers, 0, "rows not a multiple of n_servers");
        assert_eq!(x.len(), rows * self.n_features(), "input shape mismatch");
        let batch = rows / self.n_servers;
        let kl = self.kernel.layers();
        let nk = kl.len();
        let l0 = &kl[0];
        dense_fused(
            x,
            rows,
            l0.inputs(),
            l0.weights().data(),
            l0.outputs(),
            l0.bias(),
            nk > 1,
            a,
        );
        let (mut cur, mut nxt) = (a, b);
        for (i, l) in kl.iter().enumerate().skip(1) {
            dense_fused(
                cur,
                rows,
                l.inputs(),
                l.weights().data(),
                l.outputs(),
                l.bias(),
                i + 1 < nk,
                nxt,
            );
            std::mem::swap(&mut cur, &mut nxt);
        }
        let hl = self.head.layers();
        let nh = hl.len();
        for (i, l) in hl.iter().enumerate() {
            dense_fused(
                cur,
                batch,
                l.inputs(),
                l.weights().data(),
                l.outputs(),
                l.bias(),
                i + 1 < nh,
                nxt,
            );
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }

    /// Backward from dL/dlogits; accumulates gradients in both MLPs.
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let g_head = self.head.backward(grad_logits); // batch × S
        let batch = g_head.rows();
        let g_kernel = Matrix::from_vec(batch * self.n_servers, 1, g_head.data().to_vec());
        let _ = self.kernel.backward(&g_kernel);
    }

    /// Apply accumulated gradients via Adam.
    pub fn apply(&mut self, opt: &mut Adam) {
        opt.tick();
        let mut slot = 0;
        let lr = opt.lr();
        self.kernel.apply(opt, &mut slot, lr);
        self.head.apply(opt, &mut slot, lr);
    }

    /// The shared kernel MLP.
    pub fn kernel(&self) -> &Mlp {
        &self.kernel
    }

    /// The classification head.
    pub fn head(&self) -> &Mlp {
        &self.head
    }

    /// Rebuild a network from serialized parts.
    pub fn from_parts(kernel: Mlp, head: Mlp, n_servers: usize) -> Self {
        assert_eq!(kernel.outputs(), 1, "kernel must emit one score");
        assert_eq!(head.inputs(), n_servers, "head width != servers");
        KernelNet {
            kernel,
            head,
            n_servers,
        }
    }

    /// Per-server kernel scores for one sample (interpretability helper:
    /// which server the model considers "hot").
    pub fn server_scores(&mut self, sample: &Matrix) -> Vec<f32> {
        assert_eq!(sample.rows(), self.n_servers);
        let k = self.kernel.forward(sample);
        k.data().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shapes() {
        let mut net = KernelNet::new(6, 3, &[8], &[8], 2, 1);
        let x = Matrix::zeros(4 * 3, 6);
        let logits = net.forward(&x);
        assert_eq!((logits.rows(), logits.cols()), (4, 2));
        assert_eq!(net.n_classes(), 2);
        assert_eq!(net.n_features(), 6);
        assert!(net.n_params() > 0);
    }

    #[test]
    #[should_panic(expected = "multiple of n_servers")]
    fn misaligned_batch_panics() {
        let mut net = KernelNet::new(4, 3, &[4], &[4], 2, 1);
        let x = Matrix::zeros(7, 4);
        let _ = net.forward(&x);
    }

    #[test]
    fn kernel_is_shared_across_server_positions() {
        // Permuting which server carries the signal must keep the kernel
        // outputs a permutation of each other (head inputs differ only in
        // order).
        let mut net = KernelNet::new(4, 2, &[6], &[6], 2, 3);
        let hot = [5.0f32, -2.0, 1.0, 0.5];
        let cold = [0.0f32; 4];
        let mut a = Vec::new();
        a.extend_from_slice(&hot);
        a.extend_from_slice(&cold);
        let mut b = Vec::new();
        b.extend_from_slice(&cold);
        b.extend_from_slice(&hot);
        let sa = net.server_scores(&Matrix::from_vec(2, 4, a));
        let sb = net.server_scores(&Matrix::from_vec(2, 4, b));
        assert!((sa[0] - sb[1]).abs() < 1e-6);
        assert!((sa[1] - sb[0]).abs() < 1e-6);
    }

    #[test]
    fn learns_any_server_hot_rule() {
        // Label = 1 iff ANY server's feature 0 is large. The flat head
        // sees the servers in different positions, so this is exactly the
        // generalisation the kernel design exists for.
        let mut net = KernelNet::new(3, 4, &[8], &[8], 2, 5);
        let mut opt = Adam::new(0.02);
        let n = 120;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let hot_server = if i % 2 == 0 { Some(i % 4) } else { None };
            for s in 0..4 {
                let hot = Some(s) == hot_server;
                rows.extend_from_slice(&[
                    if hot { 3.0 } else { 0.1 },
                    if hot { 2.0 } else { -0.1 },
                    0.5,
                ]);
            }
            labels.push(usize::from(hot_server.is_some()));
        }
        let x = Matrix::from_vec(n * 4, 3, rows);
        for _ in 0..200 {
            let logits = net.forward(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &labels, &[1.0, 1.0]);
            net.backward(&grad);
            net.apply(&mut opt);
        }
        let logits = net.forward(&x);
        let correct = (0..n)
            .filter(|&i| usize::from(logits.get(i, 1) > logits.get(i, 0)) == labels[i])
            .count();
        assert!(correct as f64 / n as f64 > 0.95, "acc {correct}/{n}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let build = || {
            let mut net = KernelNet::new(3, 2, &[4], &[4], 2, 9);
            let mut opt = Adam::new(0.01);
            let x = Matrix::from_vec(
                4,
                3,
                vec![1.0, 0.0, 2.0, 0.5, 1.5, -1.0, 2.0, 2.0, 0.0, -1.0, 0.3, 0.7],
            );
            let labels = vec![0, 1];
            for _ in 0..20 {
                let logits = net.forward(&x);
                let (_, grad) = softmax_cross_entropy(&logits, &labels, &[1.0, 1.0]);
                net.backward(&grad);
                net.apply(&mut opt);
            }
            let out = net.forward(&x);
            out.data().to_vec()
        };
        assert_eq!(build(), build());
    }
}
