//! # qi-ml
//!
//! A from-scratch neural-network stack sized for the paper's model: a
//! kernel-based network that applies one shared dense MLP to every
//! storage server's feature vector, concatenates the per-server outputs,
//! and classifies the window into interference-severity bins (§III-C).
//!
//! Everything is plain `f32` Rust — no BLAS, no framework — because the
//! model is tiny (thousands of parameters) and exact reproducibility
//! matters more than GPU throughput here: training is seeded and
//! bit-deterministic.
//!
//! - [`anomaly`] — deterministic isolation forest for unsupervised
//!   novel-fault detection over pipeline window vectors.
//! - [`matrix`] — row-major matrix ops (rayon-parallel matmul rows).
//! - [`layers`] — dense layers / ReLU / MLP with manual backprop.
//! - [`infer`] — immutable, fused, allocation-free serving forward pass.
//! - [`loss`] — weighted softmax cross-entropy.
//! - [`optim`] — Adam and SGD.
//! - [`model`] — the kernel-based network.
//! - [`data`] — datasets, 80/20 splits, z-score standardisation.
//! - [`train`] — the training loop.
//! - [`metrics`] — confusion matrices, precision/recall/F1.

pub mod anomaly;
pub mod attention;
pub mod data;
pub mod infer;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod regress;
pub mod serialize;
pub mod train;

pub use anomaly::{AnomalyScorer, AnomalyVerdict, ForestConfig, IsolationForest};
pub use attention::AttentionNet;
pub use data::{Dataset, Standardizer};
pub use infer::InferScratch;
pub use loss::{inverse_frequency_weights, softmax, softmax_cross_entropy};
pub use matrix::Matrix;
pub use metrics::ConfusionMatrix;
pub use model::KernelNet;
pub use optim::{Adam, Sgd};
pub use regress::{mse_loss, train_regression, RegressionModel};
pub use serialize::{load_model, model_from_text, model_to_text, save_model, ModelParseError};
pub use train::{train, TrainConfig, TrainedModel};
