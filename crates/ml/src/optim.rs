//! Optimizers: Adam (the default) and plain SGD for ablations.

/// Adam with bias correction. State for each parameter tensor is created
/// lazily and keyed by a caller-provided stable slot index.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    state: Vec<Option<(Vec<f32>, Vec<f32>)>>,
}

impl Adam {
    /// Adam with the usual (0.9, 0.999) betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (for simple decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Advance the shared timestep. Call once per optimisation step,
    /// before applying any tensor of that step.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Update `param` in place from `grad`. `slot` must be stable across
    /// steps for a given tensor.
    pub fn step(&mut self, slot: usize, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len());
        if self.t == 0 {
            self.t = 1; // tolerate a missing first tick()
        }
        if slot >= self.state.len() {
            self.state.resize_with(slot + 1, || None);
        }
        let (m, v) = self.state[slot]
            .get_or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        assert_eq!(m.len(), param.len(), "slot reused with a different tensor");
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for i in 0..param.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            param[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD (used by the optimizer ablation).
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with a fixed learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Update `param` in place.
    pub fn step(&self, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len());
        for (p, &g) in param.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // f(x) = (x - 3)^2, df/dx = 2(x - 3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            opt.tick();
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn adam_handles_multiple_slots() {
        let mut a = vec![0.0f32];
        let mut b = vec![10.0f32; 3];
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            opt.tick();
            let ga = [2.0 * (a[0] + 1.0)];
            opt.step(0, &mut a, &ga);
            let gb: Vec<f32> = b.iter().map(|&x| 2.0 * (x - 5.0)).collect();
            opt.step(1, &mut b, &gb);
        }
        assert!((a[0] + 1.0).abs() < 1e-2);
        for &x in &b {
            assert!((x - 5.0).abs() < 1e-2);
        }
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut x = vec![1.0f32];
        let sgd = Sgd::new(0.5);
        sgd.step(&mut x, &[2.0]);
        assert_eq!(x[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "slot reused")]
    fn slot_reuse_with_wrong_shape_panics() {
        let mut opt = Adam::new(0.1);
        opt.tick();
        opt.step(0, &mut [0.0], &[1.0]);
        opt.step(0, &mut [0.0, 0.0], &[1.0, 1.0]);
    }
}
