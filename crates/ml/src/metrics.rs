//! Evaluation metrics: confusion matrices, precision/recall/F1.
//!
//! The paper reports its results as confusion matrices (Figures 3-5) and
//! quotes "F1 scores exceeding 90%". [`ConfusionMatrix`] renders both.
//!
//! **Degenerate-input convention:** every score defined as a ratio
//! returns `0.0` when its denominator is empty — an absent class has
//! precision, recall, and F1 of 0; a matrix with no recorded pairs has
//! accuracy 0. No metric ever returns `NaN`, so downstream aggregation
//! (macro averages, telemetry gauges, report tables) never has to guard
//! against it. This matches scikit-learn's `zero_division=0` behavior.

use qi_simkit::table::AsciiTable;

/// An `n × n` confusion matrix; rows are ground truth, columns are
/// predictions (matching the paper's figures: true negatives top-left,
/// true positives bottom-right for the binary case).
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix over `n` classes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        ConfusionMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Record one (ground truth, prediction) pair.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n && predicted < self.n);
        self.counts[actual * self.n + predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n
    }

    /// Count in cell (actual, predicted).
    pub fn get(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.n + predicted]
    }

    /// Total recorded pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy. `0.0` (not NaN) when nothing was recorded.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n).map(|i| self.get(i, i)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of class `c`: TP / (TP + FP). `0.0` (not NaN) when the
    /// class was never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.get(c, c) as f64;
        let predicted: u64 = (0..self.n).map(|a| self.get(a, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Recall of class `c`: TP / (TP + FN). `0.0` (not NaN) when the
    /// class never actually occurred.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.get(c, c) as f64;
        let actual: u64 = (0..self.n).map(|p| self.get(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f64
        }
    }

    /// F1 of class `c`. `0.0` (not NaN) when precision and recall are
    /// both zero (e.g. the class is absent from truth and predictions).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over **all** classes, absent ones included
    /// (each contributing an F1 of 0) — so a model that only ever sees
    /// one class cannot score a perfect macro-F1. Never NaN.
    pub fn macro_f1(&self) -> f64 {
        (0..self.n).map(|c| self.f1(c)).sum::<f64>() / self.n as f64
    }

    /// Binary-classification convenience: F1 of the positive class
    /// (class 1) — what the paper's ">90% F1" refers to.
    pub fn f1_positive(&self) -> f64 {
        self.f1(1)
    }

    /// Binary-classification counts `(tn, fp, fn, tp)`.
    pub fn binary_counts(&self) -> (u64, u64, u64, u64) {
        assert_eq!(self.n, 2, "binary_counts on a multi-class matrix");
        (
            self.get(0, 0),
            self.get(0, 1),
            self.get(1, 0),
            self.get(1, 1),
        )
    }

    /// Render as an ASCII table with the given class labels.
    pub fn render(&self, labels: &[&str]) -> String {
        assert_eq!(labels.len(), self.n);
        let mut header: Vec<String> = vec!["actual \\ predicted".to_string()];
        header.extend(labels.iter().map(|l| l.to_string()));
        header.push("recall".to_string());
        let mut t = AsciiTable::new(header);
        for (a, label) in labels.iter().enumerate() {
            let mut row = vec![label.to_string()];
            for p in 0..self.n {
                row.push(self.get(a, p).to_string());
            }
            row.push(format!("{:.3}", self.recall(a)));
            t.add_row(row);
        }
        let mut prec = vec!["precision".to_string()];
        for c in 0..self.n {
            prec.push(format!("{:.3}", self.precision(c)));
        }
        prec.push(format!("acc {:.3}", self.accuracy()));
        t.add_row(prec);
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cm() -> ConfusionMatrix {
        // tn=50, fp=10, fn=5, tp=35
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..50 {
            cm.record(0, 0);
        }
        for _ in 0..10 {
            cm.record(0, 1);
        }
        for _ in 0..5 {
            cm.record(1, 0);
        }
        for _ in 0..35 {
            cm.record(1, 1);
        }
        cm
    }

    #[test]
    fn binary_counts_and_accuracy() {
        let cm = sample_cm();
        assert_eq!(cm.binary_counts(), (50, 10, 5, 35));
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert_eq!(cm.total(), 100);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = sample_cm();
        assert!((cm.precision(1) - 35.0 / 45.0).abs() < 1e-12);
        assert!((cm.recall(1) - 35.0 / 40.0).abs() < 1e-12);
        let p = 35.0 / 45.0;
        let r = 35.0 / 40.0;
        let f1 = 2.0 * p * r / (p + r);
        assert!((cm.f1_positive() - f1).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let cm = sample_cm();
        let expect = (cm.f1(0) + cm.f1(1)) / 2.0;
        assert!((cm.macro_f1() - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_classes_do_not_nan() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
        assert!(cm.macro_f1().is_finite());
    }

    #[test]
    fn render_contains_cells() {
        let cm = sample_cm();
        let s = cm.render(&["<2x", ">=2x"]);
        assert!(s.contains("50"));
        assert!(s.contains("35"));
        assert!(s.contains("precision"));
        assert!(s.contains("acc 0.850"));
    }

    /// No recorded pairs at all: every score is exactly 0.0, nothing is
    /// NaN, and rendering still works (the documented convention).
    #[test]
    fn empty_matrix_yields_zeros_not_nan() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        for c in 0..3 {
            assert_eq!(cm.precision(c), 0.0);
            assert_eq!(cm.recall(c), 0.0);
            assert_eq!(cm.f1(c), 0.0);
        }
        assert_eq!(cm.macro_f1(), 0.0);
        let rendered = cm.render(&["a", "b", "c"]);
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    /// Only one class ever appears (in truth AND predictions): that
    /// class scores perfectly, the absent class scores 0, and macro-F1
    /// averages them instead of going NaN.
    #[test]
    fn single_class_stream_is_well_defined() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..7 {
            cm.record(0, 0);
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(0), 1.0);
        assert_eq!(cm.recall(0), 1.0);
        assert_eq!(cm.f1(0), 1.0);
        // The absent positive class contributes zeros, not NaN.
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1_positive(), 0.0);
        assert_eq!(cm.macro_f1(), 0.5);
    }

    /// A class that exists in truth but is never predicted has defined
    /// precision 0 (never predicted) and recall 0 (never hit).
    #[test]
    fn never_predicted_class_scores_zero() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..4 {
            cm.record(1, 0); // positives exist but all predicted negative
            cm.record(0, 0);
        }
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1_positive(), 0.0);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        assert!(cm.macro_f1().is_finite());
    }

    #[test]
    fn perfect_prediction_has_unit_scores() {
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..10 {
            cm.record(0, 0);
            cm.record(1, 1);
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.f1_positive(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }
}
