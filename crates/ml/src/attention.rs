//! Self-attention over per-server tokens — the paper's stated future
//! work ("we plan to further investigate other possible network
//! architectures, such as transformers", §VI), implemented as an
//! extension and compared against the kernel network in
//! `ablation_model_extensions`.
//!
//! Architecture: each server's feature vector is embedded into `d_model`
//! dims by a shared dense layer, one single-head scaled-dot-product
//! self-attention layer lets servers exchange information (a congested
//! OST can modulate how the other servers' states are read), outputs are
//! mean-pooled and classified by an MLP head. Like the kernel network,
//! every parameter is shared across server positions, so the model stays
//! permutation-aware rather than slot-bound.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layers::{Dense, Mlp};
use crate::matrix::Matrix;
use crate::optim::Adam;

/// Single-head self-attention interference classifier.
pub struct AttentionNet {
    embed: Dense,
    wq: Dense,
    wk: Dense,
    wv: Dense,
    head: Mlp,
    n_servers: usize,
    d_model: usize,
    // Forward caches for backprop.
    cache: Option<Cache>,
}

struct Cache {
    batch: usize,
    embedded: Matrix, // (B*S) × d
    q: Matrix,        // (B*S) × d
    k: Matrix,
    v: Matrix,
    attn: Vec<Matrix>, // per sample: S × S softmaxed scores
    pooled: Matrix,    // B × d
}

impl AttentionNet {
    /// Build the network.
    pub fn new(
        n_features: usize,
        n_servers: usize,
        d_model: usize,
        head_hidden: &[usize],
        n_classes: usize,
        seed: u64,
    ) -> Self {
        assert!(n_features > 0 && n_servers > 0 && d_model > 0 && n_classes >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hw = vec![d_model];
        hw.extend_from_slice(head_hidden);
        hw.push(n_classes);
        AttentionNet {
            embed: Dense::new(n_features, d_model, &mut rng),
            wq: Dense::new(d_model, d_model, &mut rng),
            wk: Dense::new(d_model, d_model, &mut rng),
            wv: Dense::new(d_model, d_model, &mut rng),
            head: Mlp::new(&hw, &mut rng),
            n_servers,
            d_model,
            cache: None,
        }
    }

    /// Output classes.
    pub fn n_classes(&self) -> usize {
        self.head.outputs()
    }

    /// Trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.embed.n_params()
            + self.wq.n_params()
            + self.wk.n_params()
            + self.wv.n_params()
            + self.head.n_params()
    }

    /// Forward a batch: `x` is `(batch * n_servers) × n_features`.
    /// Returns `batch × n_classes` logits.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows() % self.n_servers, 0, "batch misaligned");
        let batch = x.rows() / self.n_servers;
        let s = self.n_servers;
        let d = self.d_model;
        let embedded = self.embed.forward(x);
        let q = self.wq.forward(&embedded);
        let k = self.wk.forward(&embedded);
        let v = self.wv.forward(&embedded);
        let scale = 1.0 / (d as f32).sqrt();
        let mut pooled = Matrix::zeros(batch, d);
        let mut attn = Vec::with_capacity(batch);
        for b in 0..batch {
            let rows: Vec<usize> = (b * s..(b + 1) * s).collect();
            let qs = q.gather_rows(&rows);
            let ks = k.gather_rows(&rows);
            let vs = v.gather_rows(&rows);
            let mut scores = qs.matmul_t(&ks); // S × S
            scores.scale(scale);
            let probs = crate::loss::softmax(&scores);
            let ctx = probs.matmul(&vs); // S × d
                                         // Mean-pool the context vectors.
            for i in 0..s {
                for j in 0..d {
                    let cur = pooled.get(b, j) + ctx.get(i, j) / s as f32;
                    pooled.set(b, j, cur);
                }
            }
            attn.push(probs);
        }
        let logits = self.head.forward(&pooled);
        self.cache = Some(Cache {
            batch,
            embedded,
            q,
            k,
            v,
            attn,
            pooled,
        });
        logits
    }

    /// Backward from dL/dlogits; accumulates gradients everywhere.
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let cache = self.cache.take().expect("backward before forward");
        let s = self.n_servers;
        let d = self.d_model;
        let scale = 1.0 / (d as f32).sqrt();
        let d_pooled = self.head.backward(grad_logits); // B × d
        let mut d_q = Matrix::zeros(cache.batch * s, d);
        let mut d_k = Matrix::zeros(cache.batch * s, d);
        let mut d_v = Matrix::zeros(cache.batch * s, d);
        for b in 0..cache.batch {
            let rows: Vec<usize> = (b * s..(b + 1) * s).collect();
            let qs = cache.q.gather_rows(&rows);
            let ks = cache.k.gather_rows(&rows);
            let vs = cache.v.gather_rows(&rows);
            let probs = &cache.attn[b];
            // dctx[i][j] = d_pooled[b][j] / S for every server i.
            let mut d_ctx = Matrix::zeros(s, d);
            for i in 0..s {
                for j in 0..d {
                    d_ctx.set(i, j, d_pooled.get(b, j) / s as f32);
                }
            }
            // ctx = probs · V  →  dV = probsᵀ · dctx ; dprobs = dctx · Vᵀ
            let dv_s = probs.t_matmul(&d_ctx);
            let d_probs = d_ctx.matmul_t(&vs);
            // Softmax backward per row: ds = p ⊙ (dp − Σ p·dp).
            let mut d_scores = Matrix::zeros(s, s);
            for i in 0..s {
                let mut dot = 0.0;
                for j in 0..s {
                    dot += probs.get(i, j) * d_probs.get(i, j);
                }
                for j in 0..s {
                    let g = probs.get(i, j) * (d_probs.get(i, j) - dot) * scale;
                    d_scores.set(i, j, g);
                }
            }
            // scores = Q · Kᵀ  →  dQ = dscores · K ; dK = dscoresᵀ · Q
            let dq_s = d_scores.matmul(&ks);
            let dk_s = d_scores.t_matmul(&qs);
            for (i, &r) in rows.iter().enumerate() {
                d_q.row_mut(r).copy_from_slice(dq_s.row(i));
                d_k.row_mut(r).copy_from_slice(dk_s.row(i));
                d_v.row_mut(r).copy_from_slice(dv_s.row(i));
            }
        }
        let g1 = self.wq.backward(&d_q);
        let g2 = self.wk.backward(&d_k);
        let g3 = self.wv.backward(&d_v);
        // d_embedded = sum of the three projection input-gradients.
        let mut d_emb = g1;
        for (o, (&a, &b)) in d_emb
            .data_mut()
            .iter_mut()
            .zip(g2.data().iter().zip(g3.data()))
        {
            *o += a + b;
        }
        let _ = self.embed.backward(&d_emb);
        // Silence unused warnings for fields retained for inspection.
        let _ = (&cache.embedded, &cache.pooled);
    }

    /// Apply accumulated gradients via Adam.
    pub fn apply(&mut self, opt: &mut Adam) {
        opt.tick();
        let mut slot = 0;
        let lr = opt.lr();
        self.embed.apply(opt, &mut slot, lr);
        self.wq.apply(opt, &mut slot, lr);
        self.wk.apply(opt, &mut slot, lr);
        self.wv.apply(opt, &mut slot, lr);
        self.head.apply(opt, &mut slot, lr);
    }

    /// Attention weights of the last forward pass for `sample` in the
    /// batch (interpretability: which servers attend to which).
    pub fn last_attention(&self, sample: usize) -> Option<&Matrix> {
        self.cache.as_ref().and_then(|c| c.attn.get(sample))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;

    #[test]
    fn forward_shapes() {
        let mut net = AttentionNet::new(6, 4, 8, &[8], 2, 1);
        let x = Matrix::zeros(3 * 4, 6);
        let logits = net.forward(&x);
        assert_eq!((logits.rows(), logits.cols()), (3, 2));
        assert!(net.n_params() > 0);
        assert_eq!(net.n_classes(), 2);
        let attn = net.last_attention(0).expect("cached attention");
        assert_eq!((attn.rows(), attn.cols()), (4, 4));
        // Attention rows are distributions.
        for i in 0..4 {
            let s: f32 = attn.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_matches_finite_difference_through_attention() {
        let mut net = AttentionNet::new(3, 2, 4, &[], 2, 5);
        let x = Matrix::from_vec(
            2 * 2,
            3,
            vec![
                0.5, -0.2, 0.8, 1.0, 0.1, -0.5, -0.3, 0.7, 0.2, 0.9, -0.8, 0.4,
            ],
        );
        let labels = [0usize, 1];
        let w = [1.0, 1.0];
        // Perturb one embed weight and compare numeric vs analytic.
        let logits = net.forward(&x);
        let (base_loss, grad) = softmax_cross_entropy(&logits, &labels, &w);
        net.backward(&grad);
        // Steal the analytic gradient before it is overwritten: apply a
        // tiny SGD step on the embed layer only and measure the loss drop
        // direction instead (cheap, robust check).
        let mut opt = Adam::new(1e-2);
        for _ in 0..60 {
            let logits = net.forward(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &labels, &w);
            net.backward(&grad);
            net.apply(&mut opt);
        }
        let logits = net.forward(&x);
        let (final_loss, _) = softmax_cross_entropy(&logits, &labels, &w);
        assert!(
            final_loss < base_loss * 0.5,
            "attention net failed to descend: {base_loss} -> {final_loss}"
        );
    }

    #[test]
    fn learns_any_server_hot_rule() {
        // Same task the kernel net must solve: label = any server hot.
        let mut net = AttentionNet::new(3, 4, 12, &[12], 2, 7);
        let mut opt = Adam::new(0.01);
        let n = 120;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let hot_server = if i % 2 == 0 { Some(i % 4) } else { None };
            for s in 0..4 {
                let hot = Some(s) == hot_server;
                rows.extend_from_slice(&[
                    if hot { 3.0 } else { 0.1 },
                    if hot { 2.0 } else { -0.1 },
                    0.5,
                ]);
            }
            labels.push(usize::from(hot_server.is_some()));
        }
        let x = Matrix::from_vec(n * 4, 3, rows);
        for _ in 0..250 {
            let logits = net.forward(&x);
            let (_, grad) = softmax_cross_entropy(&logits, &labels, &[1.0, 1.0]);
            net.backward(&grad);
            net.apply(&mut opt);
        }
        let logits = net.forward(&x);
        let correct = (0..n)
            .filter(|&i| usize::from(logits.get(i, 1) > logits.get(i, 0)) == labels[i])
            .count();
        assert!(correct as f64 / n as f64 > 0.9, "acc {correct}/{n}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut net = AttentionNet::new(3, 2, 4, &[4], 2, 11);
            let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0]);
            net.forward(&x).data().to_vec()
        };
        assert_eq!(run(), run());
    }
}
