//! Fused, allocation-free inference kernels for the serving hot path.
//!
//! Training wants gradients, so its forward pass caches inputs and takes
//! `&mut self`. Serving wants throughput from an *immutable* model: many
//! shards reading one set of weights, no per-batch allocation, no cached
//! state. This module is that path:
//!
//! - [`InferScratch`] — caller-owned ping-pong activation buffers. One
//!   scratch per serving shard; capacity grows to the largest batch seen
//!   and is reused forever after.
//! - [`dense_fused`] — one dense layer with the bias add and ReLU fused
//!   into the accumulation epilogue, dispatched to width-specialised
//!   micro-kernels (the serve shapes have tiny output widths: 32, 16, 1,
//!   2). Each kernel keeps a whole output row of accumulators on the
//!   stack — a `[f32; W]` the compiler holds in vector registers — and
//!   streams the weight matrix row-major, so the inner loop is a
//!   branch-free, autovectorizable axpy with no loads or stores of
//!   partial sums. Two input rows are processed per pass so each weight
//!   row fetched from cache is used twice.
//! - [`standardize_into`] — the z-score transform written into a scratch
//!   buffer instead of a cloned `Matrix`.
//!
//! **Bit-identity invariant** (the same one `qi_ml::matrix` keeps):
//! every output element is accumulated in strictly ascending-`k` order
//! into a single accumulator, the bias is added after the full sum, and
//! ReLU clamps exactly like [`crate::layers::Relu`]. Therefore the fused
//! path produces results bit-identical to the naive
//! `matmul` → `add_row_vec` → `Relu` composition — proven for arbitrary
//! shapes by the property suite in `crates/ml/tests/fused_infer.rs`.

/// Caller-owned scratch for the immutable inference path: an input
/// staging buffer plus two ping-pong activation buffers. Reusing one of
/// these across batches removes every per-batch allocation from serving.
#[derive(Default)]
pub struct InferScratch {
    /// Standardized input staging (written by [`standardize_into`]).
    pub(crate) x: Vec<f32>,
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
}

impl InferScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        InferScratch::default()
    }
}

/// Z-score standardisation into `out`: element-for-element the same
/// `(v - mean) / std` the training-side `Standardizer::transform`
/// computes, so the two paths see bit-identical standardized inputs.
pub(crate) fn standardize_into(
    x: &[f32],
    cols: usize,
    mean: &[f32],
    std: &[f32],
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(mean.len(), cols);
    debug_assert_eq!(std.len(), cols);
    debug_assert_eq!(x.len() % cols, 0);
    out.clear();
    out.reserve(x.len());
    for row in x.chunks_exact(cols) {
        for ((&v, &m), &s) in row.iter().zip(mean).zip(std) {
            out.push((v - m) / s);
        }
    }
}

/// One fused dense layer: `out[r] = act(x[r] · w + bias)` for each of
/// `rows` input rows, `w` row-major `in_w × out_w`. `relu` applies the
/// exact [`crate::layers::Relu`] clamp (`v > 0.0 ? v : 0.0`). `out` is
/// cleared and filled with `rows × out_w` values.
// Flat hot-path signature: the scratch-owned slices must stay separate
// borrows so the caller can ping-pong buffers without aliasing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dense_fused(
    x: &[f32],
    rows: usize,
    in_w: usize,
    w: &[f32],
    out_w: usize,
    bias: &[f32],
    relu: bool,
    out: &mut Vec<f32>,
) {
    debug_assert_eq!(x.len(), rows * in_w);
    debug_assert_eq!(w.len(), in_w * out_w);
    debug_assert_eq!(bias.len(), out_w);
    out.clear();
    out.reserve(rows * out_w);
    // Width-specialised micro-kernels: with `W` a compile-time constant
    // the accumulator array lives entirely in registers and the `j`
    // loop unrolls/vectorizes. The widths below cover every layer shape
    // the serve models use (and the common test shapes); anything else
    // takes the tiled dynamic fallback.
    match out_w {
        1 => dense_rows_fixed::<1>(x, rows, in_w, w, bias, relu, out),
        2 => dense_rows_fixed::<2>(x, rows, in_w, w, bias, relu, out),
        3 => dense_rows_fixed::<3>(x, rows, in_w, w, bias, relu, out),
        4 => dense_rows_fixed::<4>(x, rows, in_w, w, bias, relu, out),
        6 => dense_rows_fixed::<6>(x, rows, in_w, w, bias, relu, out),
        8 => dense_rows_fixed::<8>(x, rows, in_w, w, bias, relu, out),
        12 => dense_rows_fixed::<12>(x, rows, in_w, w, bias, relu, out),
        16 => dense_rows_fixed::<16>(x, rows, in_w, w, bias, relu, out),
        24 => dense_rows_fixed::<24>(x, rows, in_w, w, bias, relu, out),
        32 => dense_rows_fixed::<32>(x, rows, in_w, w, bias, relu, out),
        _ => dense_rows_any(x, rows, in_w, w, out_w, bias, relu, out),
    }
}

/// Bias + activation epilogue shared by every micro-kernel. The bias is
/// added after the complete ascending-`k` sum (matching
/// `matmul` → `add_row_vec`), and the ReLU clamp replicates
/// `Relu::forward` exactly: anything not strictly positive — including
/// `-0.0` and NaN — becomes `+0.0`.
#[inline(always)]
fn finish<const W: usize>(acc: &mut [f32; W], bias: &[f32], relu: bool) {
    for j in 0..W {
        let v = acc[j] + bias[j];
        // `pass` mirrors `Relu::forward`: strictly-positive keeps its
        // value, everything else (zero, negatives, NaN) becomes +0.0.
        let pass = v > 0.0;
        acc[j] = if !relu || pass { v } else { 0.0 };
    }
}

/// Register-tiled kernel for a compile-time output width `W`, two input
/// rows per pass (each streamed weight row is used twice).
fn dense_rows_fixed<const W: usize>(
    x: &[f32],
    rows: usize,
    in_w: usize,
    w: &[f32],
    bias: &[f32],
    relu: bool,
    out: &mut Vec<f32>,
) {
    let mut r = 0;
    while r + 2 <= rows {
        let x0 = &x[r * in_w..(r + 1) * in_w];
        let x1 = &x[(r + 1) * in_w..(r + 2) * in_w];
        let mut acc0 = [0.0f32; W];
        let mut acc1 = [0.0f32; W];
        for (k, (&a0, &a1)) in x0.iter().zip(x1).enumerate() {
            let wk = &w[k * W..k * W + W];
            for j in 0..W {
                acc0[j] += a0 * wk[j];
                acc1[j] += a1 * wk[j];
            }
        }
        finish::<W>(&mut acc0, bias, relu);
        finish::<W>(&mut acc1, bias, relu);
        out.extend_from_slice(&acc0);
        out.extend_from_slice(&acc1);
        r += 2;
    }
    if r < rows {
        let x0 = &x[r * in_w..(r + 1) * in_w];
        let mut acc0 = [0.0f32; W];
        for (k, &a0) in x0.iter().enumerate() {
            let wk = &w[k * W..k * W + W];
            for j in 0..W {
                acc0[j] += a0 * wk[j];
            }
        }
        finish::<W>(&mut acc0, bias, relu);
        out.extend_from_slice(&acc0);
    }
}

/// Dynamic-width fallback: the output row is processed in 16-wide
/// column tiles with a stack accumulator per tile, preserving the
/// ascending-`k` single-accumulator order per element.
#[allow(clippy::too_many_arguments)]
fn dense_rows_any(
    x: &[f32],
    rows: usize,
    in_w: usize,
    w: &[f32],
    out_w: usize,
    bias: &[f32],
    relu: bool,
    out: &mut Vec<f32>,
) {
    const T: usize = 16;
    for r in 0..rows {
        let xr = &x[r * in_w..(r + 1) * in_w];
        let base = out.len();
        out.resize(base + out_w, 0.0);
        let out_row = &mut out[base..base + out_w];
        let mut j0 = 0;
        while j0 < out_w {
            let jw = T.min(out_w - j0);
            let mut acc = [0.0f32; T];
            for (k, &a) in xr.iter().enumerate() {
                let wk = &w[k * out_w + j0..k * out_w + j0 + jw];
                for (aj, &wv) in acc[..jw].iter_mut().zip(wk) {
                    *aj += a * wv;
                }
            }
            for (o, (aj, bj)) in out_row[j0..j0 + jw]
                .iter_mut()
                .zip(acc[..jw].iter().zip(&bias[j0..j0 + jw]))
            {
                let v = aj + bj;
                let pass = v > 0.0;
                *o = if !relu || pass { v } else { 0.0 };
            }
            j0 += jw;
        }
    }
}

/// Row argmax with the exact tie-break `predict_batch` uses
/// (`Iterator::max_by` keeps the *last* maximum under ties).
pub(crate) fn argmax_row(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_fill(n: usize, salt: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                ((h >> 40) as f32 / 2048.0) - 4.0
            })
            .collect()
    }

    /// Naive reference: ascending-k dot product, then bias, then relu.
    fn reference(
        x: &[f32],
        rows: usize,
        in_w: usize,
        w: &[f32],
        out_w: usize,
        bias: &[f32],
        relu: bool,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * out_w];
        for r in 0..rows {
            for j in 0..out_w {
                let mut acc = 0.0f32;
                for k in 0..in_w {
                    acc += x[r * in_w + k] * w[k * out_w + j];
                }
                let v = acc + bias[j];
                let pass = v > 0.0;
                out[r * out_w + j] = if !relu || pass { v } else { 0.0 };
            }
        }
        out
    }

    #[test]
    fn fixed_and_fallback_widths_match_reference_bitwise() {
        // Every specialised width plus fallback widths (5, 17, 40),
        // odd/even row counts to hit both the paired and tail row paths.
        for &out_w in &[1usize, 2, 3, 4, 5, 6, 8, 12, 16, 17, 24, 32, 40] {
            for &rows in &[1usize, 2, 5, 8] {
                for &in_w in &[1usize, 7, 42] {
                    let x = hash_fill(rows * in_w, 1);
                    let w = hash_fill(in_w * out_w, 2);
                    let bias = hash_fill(out_w, 3);
                    for relu in [false, true] {
                        let mut got = Vec::new();
                        dense_fused(&x, rows, in_w, &w, out_w, &bias, relu, &mut got);
                        let want = reference(&x, rows, in_w, &w, out_w, &bias, relu);
                        assert_eq!(
                            got, want,
                            "mismatch at rows={rows} in_w={in_w} out_w={out_w} relu={relu}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn standardize_matches_transform() {
        use crate::data::Standardizer;
        use crate::matrix::Matrix;
        let x = hash_fill(6 * 4, 9);
        let m = Matrix::from_vec(6, 4, x.clone());
        let st = Standardizer::fit(&m);
        let mut viamatrix = m.clone();
        st.transform(&mut viamatrix);
        let mut out = Vec::new();
        standardize_into(&x, 4, st.mean(), st.std(), &mut out);
        assert_eq!(out, viamatrix.data());
    }

    #[test]
    fn argmax_keeps_last_max_on_ties() {
        assert_eq!(argmax_row(&[1.0, 3.0, 3.0, 2.0]), 2);
        assert_eq!(argmax_row(&[0.5]), 0);
    }
}
