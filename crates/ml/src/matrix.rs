//! A minimal row-major `f32` matrix with exactly the operations the
//! network needs. Row-parallel matmul via rayon stays deterministic
//! because each output row is accumulated sequentially.

use rayon::prelude::*;

/// Row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Row count below which matmul stays single-threaded.
const PAR_THRESHOLD: usize = 256;

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Build a matrix from a subset of rows of `self` (by index).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// `self · other` (standard matrix product).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        let compute_row = |r: usize, out_row: &mut [f32]| {
            let a_row = self.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };
        if self.rows >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| compute_row(r, out_row));
        } else {
            for r in 0..self.rows {
                compute_row(r, &mut out.data[r * n..(r + 1) * n]);
            }
        }
        out
    }

    /// `selfᵀ · other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            for c in 0..other.rows {
                let b_row = other.row(c);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[r * other.rows + c] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Add `v` to every row (broadcast bias).
    pub fn add_row_vec(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(v)
            {
                *x += b;
            }
        }
    }

    /// Column sums.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 2.0, 2.0, 2.0, -1.0, 1.0, -1.0],
        );
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_is_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_and_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![2.0, 4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.get(1, 2), 1.5);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Force the rayon path with > PAR_THRESHOLD rows.
        let rows = 300;
        let a = Matrix::from_vec(
            rows,
            8,
            (0..rows * 8).map(|i| (i % 13) as f32 - 6.0).collect(),
        );
        let b = Matrix::from_vec(8, 4, (0..32).map(|i| (i % 7) as f32 * 0.25).collect());
        let big = a.matmul(&b);
        // Compare one row against a serial slice computation.
        let one = a.gather_rows(&[123]).matmul(&b);
        assert_eq!(one.row(0), big.row(123));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
