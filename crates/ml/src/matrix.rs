//! A minimal row-major `f32` matrix with exactly the operations the
//! network needs.
//!
//! `matmul` is cache-blocked with a packed-B inner kernel and splits
//! output row-blocks across the rayon pool for large products. Every
//! code path — small, blocked, blocked-parallel, and the sparse
//! zero-skip path's dense twin — accumulates each output element in
//! ascending-`k` order into a single accumulator, so results are
//! **bit-identical** across paths and thread counts (f32 addition is
//! deterministic for a fixed order; only the order could differ, and it
//! never does).

use rayon::prelude::*;

/// Row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Work (`m·k·n` multiply-adds) below which matmul runs the plain
/// unblocked loop — for the tiny per-window inference products, packing
/// overhead would dominate.
const BLOCK_MIN_WORK: usize = 1 << 16;

/// Work at or above which output row-blocks are split across the rayon
/// pool. Re-tuned from the old row-count threshold (256 rows): with real
/// workers the crossover is ~1M multiply-adds (≈0.5 ms of arithmetic),
/// comfortably above the scoped-helper spawn cost.
const PAR_MIN_WORK: usize = 1 << 20;

/// Sampled zero fraction of the left matrix at or above which the
/// zero-skip kernel runs instead of the dense blocked one. Dense
/// activations never reach it, so the hot path carries no per-element
/// branch.
const SPARSE_SKIP_FRACTION: f32 = 0.75;

/// Columns per packed B panel (width of the contiguous inner axpy).
const PANEL_NC: usize = 128;

/// Depth (k) block: rows of a B panel streamed per pass over a row
/// block, sized so `PANEL_NC × PANEL_KC` floats stay L2-resident.
const PANEL_KC: usize = 128;

/// `B` repacked panel-major: panel `p` holds columns
/// `[p·PANEL_NC, …)` with each of its `k` rows contiguous, so the inner
/// kernel streams cache-line-aligned runs instead of striding across
/// the full row width of `B`.
struct PackedB {
    n: usize,
    /// Start of each panel in `data`.
    offsets: Vec<usize>,
    data: Vec<f32>,
}

impl PackedB {
    fn pack(b: &Matrix) -> PackedB {
        let (k, n) = (b.rows, b.cols);
        let mut data = Vec::with_capacity(k * n);
        let mut offsets = Vec::new();
        let mut c0 = 0;
        while c0 < n {
            let w = PANEL_NC.min(n - c0);
            offsets.push(data.len());
            for kk in 0..k {
                data.extend_from_slice(&b.data[kk * n + c0..kk * n + c0 + w]);
            }
            c0 += w;
        }
        PackedB { n, offsets, data }
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Build a matrix from a subset of rows of `self` (by index).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// `self · other` (standard matrix product).
    ///
    /// Dispatches on product size and left-matrix sparsity; all paths
    /// produce bit-identical results (ascending-`k` accumulation
    /// everywhere).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || k == 0 || n == 0 {
            return out;
        }
        let work = m * k * n;
        if work < BLOCK_MIN_WORK {
            self.matmul_rows_simple(other, 0, &mut out.data);
            return out;
        }
        let sparse = self.sampled_zero_fraction() >= SPARSE_SKIP_FRACTION;
        let threads = rayon::current_num_threads();
        if work >= PAR_MIN_WORK && threads > 1 && m > 1 {
            let rows_per_job = m.div_ceil(threads * 4).max(1);
            let packed = (!sparse).then(|| PackedB::pack(other));
            out.data
                .par_chunks_mut(rows_per_job * n)
                .enumerate()
                .for_each(|(j, block)| {
                    let r0 = j * rows_per_job;
                    match &packed {
                        Some(p) => self.matmul_rows_blocked(p, r0, block),
                        None => self.matmul_rows_skip(other, r0, block),
                    }
                });
        } else if sparse {
            self.matmul_rows_skip(other, 0, &mut out.data);
        } else {
            let packed = PackedB::pack(other);
            self.matmul_rows_blocked(&packed, 0, &mut out.data);
        }
        out
    }

    /// Fraction of zeros in a ≤256-element sample of `self`. Sample
    /// positions come from a multiplicative hash, not a regular stride,
    /// so structured sparsity patterns (every k-th element) can't alias
    /// with the probe. Deterministic in the matrix length alone.
    fn sampled_zero_fraction(&self) -> f32 {
        let len = self.data.len();
        if len == 0 {
            return 0.0;
        }
        let samples = len.min(256);
        let zeros = (0..samples as u64)
            .filter(|&i| {
                let pos = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % len;
                self.data[pos] == 0.0
            })
            .count();
        zeros as f32 / samples as f32
    }

    /// Plain row-major axpy kernel (no packing, no skip) for the rows
    /// starting at `r0` whose output occupies `out_block`.
    fn matmul_rows_simple(&self, other: &Matrix, r0: usize, out_block: &mut [f32]) {
        let n = other.cols;
        let rows = out_block.len() / n;
        for r in 0..rows {
            let a_row = self.row(r0 + r);
            let out_row = &mut out_block[r * n..(r + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Zero-skip axpy kernel for sparse left matrices (the branch only
    /// pays for itself when most `a` elements are zero).
    fn matmul_rows_skip(&self, other: &Matrix, r0: usize, out_block: &mut [f32]) {
        let n = other.cols;
        let rows = out_block.len() / n;
        for r in 0..rows {
            let a_row = self.row(r0 + r);
            let out_row = &mut out_block[r * n..(r + 1) * n];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Cache-blocked kernel over a packed `B`: for each column panel,
    /// stream `PANEL_KC`-deep slabs of the panel across the row block.
    /// Per output element the `k` loop still runs strictly ascending
    /// (panel blocks ascending, `kk` within each ascending), so the
    /// accumulation order — and therefore every bit of the result —
    /// matches [`Matrix::matmul_rows_simple`].
    fn matmul_rows_blocked(&self, packed: &PackedB, r0: usize, out_block: &mut [f32]) {
        let k = self.cols;
        let n = packed.n;
        let rows = out_block.len() / n;
        let mut c0 = 0;
        let mut panel = 0;
        while c0 < n {
            let w = PANEL_NC.min(n - c0);
            let poff = packed.offsets[panel];
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + PANEL_KC).min(k);
                for r in 0..rows {
                    let a_row = &self.data[(r0 + r) * k..(r0 + r) * k + k];
                    let out_row = &mut out_block[r * n + c0..r * n + c0 + w];
                    for (kk, &a) in a_row.iter().enumerate().take(k1).skip(k0) {
                        let b_row = &packed.data[poff + kk * w..poff + kk * w + w];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
                k0 = k1;
            }
            c0 += w;
            panel += 1;
        }
    }

    /// `selfᵀ · other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let a_row = self.row(r);
            for c in 0..other.rows {
                let b_row = other.row(c);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[r * other.rows + c] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Add `v` to every row (broadcast bias).
    pub fn add_row_vec(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.data[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(v)
            {
                *x += b;
            }
        }
    }

    /// Column sums.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 2.0, 2.0, 2.0, -1.0, 1.0, -1.0],
        );
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_is_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_and_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![2.0, 4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.get(1, 2), 1.5);
    }

    #[test]
    fn gather_rows_selects() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    /// Reference product: the textbook triple loop with ascending-`k`
    /// accumulation — the order every optimised path must reproduce
    /// bit-for-bit.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows);
        let mut out = Matrix::zeros(a.rows, b.cols);
        for r in 0..a.rows {
            for c in 0..b.cols {
                let mut acc = 0.0f32;
                for kk in 0..a.cols {
                    acc += a.get(r, kk) * b.get(kk, c);
                }
                out.set(r, c, acc);
            }
        }
        out
    }

    fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                    ((h >> 40) as f32 / 1024.0) - 8.0
                })
                .collect(),
        )
    }

    #[test]
    fn naive_blocked_and_parallel_are_bit_identical() {
        // Shapes chosen to land in each dispatch tier:
        //   8×8·8       → simple loop (work < BLOCK_MIN_WORK)
        //   80×90·70    → blocked serial (>= BLOCK_MIN_WORK)
        //   150×160·170 → blocked + row-parallel under a 4-thread pool
        // with ragged sizes so partial panels and ragged row-blocks are
        // exercised too.
        for (m, k, n) in [(8, 8, 8), (80, 90, 70), (150, 160, 170), (257, 129, 131)] {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            let reference = matmul_reference(&a, &b);
            let serial = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| a.matmul(&b));
            let parallel = rayon::ThreadPoolBuilder::new()
                .num_threads(4)
                .build()
                .unwrap()
                .install(|| a.matmul(&b));
            assert_eq!(
                serial.data(),
                reference.data(),
                "serial diverged at {m}x{k}x{n}"
            );
            assert_eq!(
                parallel.data(),
                reference.data(),
                "parallel diverged at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn sparse_skip_path_matches_reference() {
        // ~94% zeros → the probe selects the zero-skip kernel; results
        // must still match the dense reference exactly.
        // Work >= PAR_MIN_WORK so the 4-thread run takes the parallel
        // zero-skip path; the plain call takes the serial one.
        let (m, k, n) = (160, 128, 128);
        let mut a = filled(m, k, 3);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 16 != 0 {
                *v = 0.0;
            }
        }
        assert!(a.sampled_zero_fraction() >= SPARSE_SKIP_FRACTION);
        let b = filled(k, n, 4);
        let reference = matmul_reference(&a, &b);
        let serial = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| a.matmul(&b));
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| a.matmul(&b));
        assert_eq!(serial.data(), reference.data());
        assert_eq!(parallel.data(), reference.data());
    }

    #[test]
    fn dense_probe_stays_on_dense_path() {
        let a = filled(64, 64, 5);
        assert!(a.sampled_zero_fraction() < SPARSE_SKIP_FRACTION);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
