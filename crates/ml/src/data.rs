//! Datasets of per-server vectors, train/test splitting, and feature
//! standardisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// A labelled dataset. Each *sample* is `n_servers` consecutive rows of
/// `x` (one per-server vector each); `y[i]` is sample `i`'s class.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature rows: `(n_samples * n_servers) × n_features`.
    pub x: Matrix,
    /// One label per sample.
    pub y: Vec<usize>,
    /// Per-server rows per sample.
    pub n_servers: usize,
}

impl Dataset {
    /// Assemble a dataset from per-sample server matrices.
    ///
    /// `samples[i]` must be an `n_servers × n_features` row-major block.
    pub fn from_samples(samples: Vec<Vec<f32>>, y: Vec<usize>, n_servers: usize) -> Self {
        assert_eq!(samples.len(), y.len());
        assert!(!samples.is_empty(), "empty dataset");
        let block = samples[0].len();
        assert!(
            block.is_multiple_of(n_servers),
            "block not divisible by servers"
        );
        let n_features = block / n_servers;
        let mut data = Vec::with_capacity(samples.len() * block);
        for s in &samples {
            assert_eq!(s.len(), block, "ragged sample");
            data.extend_from_slice(s);
        }
        Dataset {
            x: Matrix::from_vec(samples.len() * n_servers, n_features, data),
            y,
            n_servers,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature width of each per-server row.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of distinct classes present (max label + 1).
    pub fn n_classes(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Per-class sample counts, length [`Dataset::n_classes`].
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_classes()];
        for &l in &self.y {
            c[l] += 1;
        }
        c
    }

    /// The feature rows of sample `i` as a matrix view copy.
    pub fn sample_rows(&self, i: usize) -> Matrix {
        let idx: Vec<usize> = (i * self.n_servers..(i + 1) * self.n_servers).collect();
        self.x.gather_rows(&idx)
    }

    /// Select a subset of samples by index.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let rows: Vec<usize> = idx
            .iter()
            .flat_map(|&i| i * self.n_servers..(i + 1) * self.n_servers)
            .collect();
        Dataset {
            x: self.x.gather_rows(&rows),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            n_servers: self.n_servers,
        }
    }

    /// Random split into (train, test) with `test_fraction` of samples
    /// reserved for testing — the paper's 80/20 protocol with 0.2.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n_test = ((self.len() as f64) * test_fraction).round() as usize;
        let n_test = n_test.clamp(1, self.len().saturating_sub(1).max(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }
}

/// Per-feature z-score standardiser, fitted on training data only.
#[derive(Clone, Debug)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit on every row of `x`.
    pub fn fit(x: &Matrix) -> Self {
        let n = x.rows().max(1) as f64;
        let mut mean = vec![0.0f64; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; x.cols()];
        for r in 0..x.rows() {
            for ((s, &v), &m) in var.iter_mut().zip(x.row(r)).zip(&mean) {
                let d = v as f64 - m;
                *s += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&s| {
                let sd = (s / n).sqrt() as f32;
                if sd < 1e-8 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Standardizer {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std,
        }
    }

    /// Transform a matrix in place.
    pub fn transform(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.mean.len());
        for r in 0..x.rows() {
            let row = x.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Feature means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Feature standard deviations (constant features report 1).
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Rebuild from serialized parameters.
    pub fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len());
        assert!(std.iter().all(|&s| s > 0.0), "non-positive std");
        Standardizer { mean, std }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, servers: usize, feats: usize) -> Dataset {
        let samples: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..servers * feats)
                    .map(|j| (i * 31 + j * 7) as f32 % 13.0)
                    .collect()
            })
            .collect();
        let y = (0..n).map(|i| i % 2).collect();
        Dataset::from_samples(samples, y, servers)
    }

    #[test]
    fn from_samples_shapes() {
        let d = toy(10, 3, 4);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 4);
        assert_eq!(d.x.rows(), 30);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = toy(50, 2, 3);
        let (train, test) = d.split(0.2, 42);
        assert_eq!(train.len() + test.len(), 50);
        assert_eq!(test.len(), 10);
        assert_eq!(train.x.rows(), train.len() * 2);
    }

    #[test]
    fn split_is_seeded() {
        let d = toy(40, 2, 3);
        let (a, _) = d.split(0.25, 7);
        let (b, _) = d.split(0.25, 7);
        assert_eq!(a.y, b.y);
        let (c, _) = d.split(0.25, 8);
        assert_ne!(a.y, c.y); // overwhelmingly likely
    }

    #[test]
    fn sample_rows_round_trip() {
        let d = toy(5, 2, 3);
        let s3 = d.sample_rows(3);
        assert_eq!(s3.rows(), 2);
        assert_eq!(s3.row(0), d.x.row(6));
        assert_eq!(s3.row(1), d.x.row(7));
    }

    #[test]
    fn standardizer_zero_means_unit_std() {
        let d = toy(20, 2, 3);
        let st = Standardizer::fit(&d.x);
        let mut x = d.x.clone();
        st.transform(&mut x);
        for c in 0..x.cols() {
            let mut mean = 0.0;
            for r in 0..x.rows() {
                mean += x.get(r, c);
            }
            mean /= x.rows() as f32;
            assert!(mean.abs() < 1e-5, "col {c} mean {mean}");
        }
    }

    #[test]
    fn constant_features_survive() {
        let x = Matrix::from_vec(3, 2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        let st = Standardizer::fit(&x);
        assert_eq!(st.std()[0], 1.0);
        let mut t = x.clone();
        st.transform(&mut t);
        assert!(t.data().iter().all(|v| v.is_finite()));
        assert_eq!(t.get(0, 0), 0.0);
    }
}
