//! Training loop and trained-model inference.

use qi_monitor::schema::FeatureSchema;
use qi_simkit::error::QiError;
use qi_simkit::stats::OnlineStats;
use qi_telemetry::{MetricValue, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Standardizer};
use crate::infer::{argmax_row, standardize_into, InferScratch};
use crate::loss::{softmax_cross_entropy, tempered_frequency_weights};
use crate::matrix::Matrix;
use crate::metrics::ConfusionMatrix;
use crate::model::KernelNet;
use crate::optim::Adam;

/// Hyperparameters for [`train`].
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (in samples).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Hidden widths of the shared kernel MLP.
    pub kernel_hidden: Vec<usize>,
    /// Hidden widths of the classification head.
    pub head_hidden: Vec<usize>,
    /// Output classes (2 = binary `<2x / >=2x`, 3 = the Fig. 4 bins).
    pub n_classes: usize,
    /// Weight initialisation / shuffling seed.
    pub seed: u64,
    /// Multiply the learning rate by this each epoch (1.0 = constant).
    pub lr_decay: f32,
    /// Exponent tempering the inverse-frequency class weights
    /// (1.0 = full reweighting, 0.5 = square-root tempering, 0 = none).
    pub class_weight_exponent: f32,
    /// Optional early stopping on a held-out validation split.
    pub early_stop: Option<EarlyStop>,
}

/// Early-stopping policy: carve `val_fraction` of the training samples
/// into a validation set, track its (unweighted) loss each epoch, and
/// stop after `patience` epochs without improvement, restoring the best
/// epoch's weights.
#[derive(Clone, Copy, Debug)]
pub struct EarlyStop {
    /// Epochs without validation improvement before stopping.
    pub patience: usize,
    /// Fraction of training samples held out for validation.
    pub val_fraction: f64,
}

impl Default for EarlyStop {
    fn default() -> Self {
        EarlyStop {
            patience: 5,
            val_fraction: 0.15,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch: 64,
            lr: 1e-3,
            kernel_hidden: vec![32, 16],
            head_hidden: vec![16],
            n_classes: 2,
            seed: 17,
            lr_decay: 0.97,
            class_weight_exponent: 0.5,
            early_stop: None,
        }
    }
}

/// The input/output contract of a trained model: how many per-server
/// vectors one sample holds, how wide each is, and how many classes
/// come out. The serving registry compares this against the monitor's
/// feature configuration before activating a model, so a model trained
/// under a different cluster size or feature ablation cannot silently
/// serve garbage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelShape {
    /// Vectors per sample (OSTs + MDT).
    pub n_servers: usize,
    /// Features per vector.
    pub n_features: usize,
    /// Output classes.
    pub n_classes: usize,
}

impl std::fmt::Display for ModelShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} servers x {} features -> {} classes",
            self.n_servers, self.n_features, self.n_classes
        )
    }
}

/// A trained model: network + the standardiser fitted on its training
/// data. Apply to raw (unstandardised) feature blocks.
pub struct TrainedModel {
    net: KernelNet,
    standardizer: Standardizer,
    schema: FeatureSchema,
    /// Mean training loss per epoch (for convergence checks/plots).
    pub loss_curve: Vec<f32>,
    /// Validation loss per epoch when early stopping was enabled.
    pub val_curve: Vec<f32>,
    /// Training telemetry (`ml.train.*`): epoch/batch/sample counters
    /// and the per-epoch loss distribution. Derived entirely from the
    /// deterministic training loop — no wall-clock reads — so it is
    /// byte-stable for a fixed dataset, config, and seed.
    pub metrics: MetricsSnapshot,
}

impl TrainedModel {
    /// The underlying network (serialization / introspection).
    pub fn net(&self) -> &KernelNet {
        &self.net
    }

    /// The fitted standardizer.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Rebuild a model from serialized parts.
    pub fn from_parts(net: KernelNet, standardizer: Standardizer, schema: FeatureSchema) -> Self {
        TrainedModel {
            net,
            standardizer,
            schema,
            loss_curve: Vec::new(),
            val_curve: Vec::new(),
            metrics: MetricsSnapshot::new(),
        }
    }

    /// The feature schema this model was trained under — the versioned
    /// description of what its input vectors *mean*. The serving
    /// registry and the predictor compare it against the pipeline's
    /// schema before any inference runs.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Number of classes the model outputs.
    pub fn n_classes(&self) -> usize {
        self.net.n_classes()
    }

    /// Vectors per sample (OSTs + MDT) the model expects.
    pub fn n_servers(&self) -> usize {
        self.net.n_servers()
    }

    /// Feature width of each per-server vector.
    pub fn n_features(&self) -> usize {
        self.net.n_features()
    }

    /// The model's input/output shape, as the serving registry validates
    /// it: every deployed model must agree with the monitor's feature
    /// layout before it can be activated.
    pub fn shape(&self) -> ModelShape {
        ModelShape {
            n_servers: self.net.n_servers(),
            n_features: self.net.n_features(),
            n_classes: self.net.n_classes(),
        }
    }

    /// Predict class labels for `k` raw sample blocks stacked into one
    /// `(k * n_servers) × n_features` matrix — the serving layer's
    /// micro-batch forward pass. A batch of `k` produces one network
    /// invocation instead of `k`, and because every kernel accumulates
    /// in a fixed order the results are bit-identical to `k` calls of
    /// [`TrainedModel::predict_one`] at any thread count.
    pub fn predict_batch(&mut self, stacked: &Matrix) -> Vec<usize> {
        let mut x = stacked.clone();
        self.standardizer.transform(&mut x);
        let logits = self.net.forward(&x);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// The serving-path twin of [`TrainedModel::predict_batch`]:
    /// `&self`, zero allocation once `scratch` is warm, and fused
    /// through the width-specialised kernels in [`crate::infer`].
    /// `stacked` is the same `(k * n_servers) × n_features` row-major
    /// block, `samples` is `k`; predicted classes are appended to `out`
    /// (cleared first). Outputs are bit-identical to
    /// [`TrainedModel::predict_batch`] — same standardisation
    /// arithmetic, same ascending-`k` accumulation order, same
    /// last-max-wins argmax.
    pub fn predict_batch_into(
        &self,
        stacked: &[f32],
        samples: usize,
        scratch: &mut InferScratch,
        out: &mut Vec<usize>,
    ) {
        let rows = samples * self.net.n_servers();
        let feats = self.net.n_features();
        assert_eq!(stacked.len(), rows * feats, "stacked block shape mismatch");
        let InferScratch { x, a, b } = scratch;
        standardize_into(
            stacked,
            feats,
            self.standardizer.mean(),
            self.standardizer.std(),
            x,
        );
        let logits = self.net.forward_into_bufs(x, rows, a, b);
        out.clear();
        out.reserve(samples);
        for row in logits.chunks_exact(self.net.n_classes()) {
            out.push(argmax_row(row));
        }
    }

    /// Predict class labels for every sample of `data`.
    pub fn predict(&mut self, data: &Dataset) -> Vec<usize> {
        let mut x = data.x.clone();
        self.standardizer.transform(&mut x);
        let logits = self.net.forward(&x);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Predict one raw sample (an `n_servers × n_features` block).
    pub fn predict_one(&mut self, block: &Matrix) -> usize {
        let mut x = block.clone();
        self.standardizer.transform(&mut x);
        let logits = self.net.forward(&x);
        let row = logits.row(0);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row")
    }

    /// Evaluate on a labelled dataset, producing the confusion matrix.
    pub fn evaluate(&mut self, data: &Dataset) -> ConfusionMatrix {
        let preds = self.predict(data);
        let mut cm = ConfusionMatrix::new(self.n_classes());
        for (&actual, pred) in data.y.iter().zip(preds) {
            cm.record(actual, pred);
        }
        cm
    }
}

/// Train the kernel network on `train_set` with inverse-frequency class
/// weights (the datasets are imbalanced; see paper §IV-A).
///
/// The resulting model carries a *custom* (window-unbound) feature
/// schema sized to the dataset — appropriate for synthetic data,
/// benches, and tests. Models destined for serving against a real
/// feature pipeline must be trained with [`train_with_schema`] so the
/// registry can validate them against the pipeline.
pub fn train(train_set: &Dataset, cfg: &TrainConfig) -> TrainedModel {
    assert!(!train_set.is_empty(), "empty training set");
    assert!(
        train_set.n_classes() <= cfg.n_classes,
        "label exceeds configured classes"
    );
    let standardizer = Standardizer::fit(&train_set.x);
    let mut x = train_set.x.clone();
    standardizer.transform(&mut x);
    let std_train = Dataset {
        x,
        y: train_set.y.clone(),
        n_servers: train_set.n_servers,
    };

    // Optional validation carve-out for early stopping.
    let (fit_set, val_set) = match cfg.early_stop {
        Some(es) => {
            let (fit, val) = std_train.split(es.val_fraction, cfg.seed ^ 0x7A1);
            (fit, Some(val))
        }
        None => (std_train, None),
    };

    let mut net = KernelNet::new(
        fit_set.n_features(),
        fit_set.n_servers,
        &cfg.kernel_hidden,
        &cfg.head_hidden,
        cfg.n_classes,
        cfg.seed,
    );
    let mut opt = Adam::new(cfg.lr);
    let weights = tempered_frequency_weights(&fit_set.y, cfg.n_classes, cfg.class_weight_exponent);
    let flat = vec![1.0f32; cfg.n_classes];
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let n = fit_set.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    let mut val_curve = Vec::new();
    let mut best: Option<(f32, KernelNet)> = None;
    let mut since_best = 0usize;
    let mut batches_run: u64 = 0;
    let mut samples_seen: u64 = 0;

    for _epoch in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch) {
            let batch_set = fit_set.subset(chunk);
            let logits = net.forward(&batch_set.x);
            let (loss, grad) = softmax_cross_entropy(&logits, &batch_set.y, &weights);
            net.backward(&grad);
            net.apply(&mut opt);
            epoch_loss += loss;
            batches += 1;
            batches_run += 1;
            samples_seen += chunk.len() as u64;
        }
        loss_curve.push(epoch_loss / batches.max(1) as f32);
        opt.set_lr(opt.lr() * cfg.lr_decay);

        if let (Some(es), Some(val)) = (cfg.early_stop, val_set.as_ref()) {
            let logits = net.forward(&val.x);
            let (vloss, _) = softmax_cross_entropy(&logits, &val.y, &flat);
            val_curve.push(vloss);
            let improved = best.as_ref().map(|(b, _)| vloss < *b).unwrap_or(true);
            if improved {
                best = Some((vloss, net.clone()));
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= es.patience {
                    break;
                }
            }
        }
    }
    let early_stopped = loss_curve.len() < cfg.epochs;
    let mut best_val_loss = None;
    if let Some((best_vloss, best_net)) = best {
        net = best_net;
        best_val_loss = Some(best_vloss);
    }

    let mut metrics = MetricsSnapshot::new();
    metrics.put(
        "ml.train.epochs_run",
        MetricValue::Counter(loss_curve.len() as u64),
    );
    metrics.put("ml.train.batches_run", MetricValue::Counter(batches_run));
    metrics.put("ml.train.samples_seen", MetricValue::Counter(samples_seen));
    let mut loss_stats = OnlineStats::new();
    for &l in &loss_curve {
        loss_stats.push(l as f64);
    }
    metrics.put("ml.train.epoch_loss", MetricValue::Stats(loss_stats));
    metrics.put(
        "ml.train.final_loss",
        MetricValue::Gauge(loss_curve.last().copied().unwrap_or(0.0) as f64),
    );
    metrics.put(
        "ml.train.early_stopped",
        MetricValue::Counter(u64::from(early_stopped)),
    );
    if let Some(v) = best_val_loss {
        metrics.put("ml.train.best_val_loss", MetricValue::Gauge(v as f64));
    }

    TrainedModel {
        net,
        standardizer,
        schema: FeatureSchema::custom(train_set.n_features()),
        loss_curve,
        val_curve,
        metrics,
    }
}

/// Like [`train`], but stamp the resulting model with the pipeline
/// schema its training vectors were assembled under. Errors with
/// [`QiError::SchemaMismatch`] if the schema's per-server vector
/// length disagrees with the dataset — a schema that does not describe
/// the data must never be embedded in a model.
pub fn train_with_schema(
    train_set: &Dataset,
    cfg: &TrainConfig,
    schema: FeatureSchema,
) -> Result<TrainedModel, QiError> {
    if schema.vector_len() != train_set.n_features() {
        return Err(QiError::SchemaMismatch {
            context: "stamping a trained model".into(),
            expected: format!("{} features per server vector", train_set.n_features()),
            got: schema.to_string(),
        });
    }
    let mut model = train(train_set, cfg);
    model.schema = schema;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic interference-shaped dataset: positive samples have one
    /// "contended" server (big queue features), negatives don't.
    fn synth(n: usize, servers: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let feats = 6;
        let mut samples = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let positive = i % 3 != 0; // ~67% positive, imbalanced
            let hot = rng.gen_range(0..servers);
            let mut block = Vec::with_capacity(servers * feats);
            for s in 0..servers {
                let base: f32 = rng.gen_range(0.0..0.5);
                let contended = positive && s == hot;
                block.extend_from_slice(&[
                    base + if contended { 4.0 } else { 0.0 },
                    base * 2.0
                        + if contended {
                            rng.gen_range(2.0..5.0)
                        } else {
                            0.0
                        },
                    rng.gen_range(0.0..1.0),
                    if contended {
                        8.0
                    } else {
                        rng.gen_range(0.0..0.8)
                    },
                    base,
                    rng.gen_range(-0.2..0.2),
                ]);
            }
            samples.push(block);
            y.push(usize::from(positive));
        }
        Dataset::from_samples(samples, y, servers)
    }

    #[test]
    fn trains_to_high_f1_on_separable_data() {
        let data = synth(600, 4, 3);
        let (train_set, test_set) = data.split(0.2, 11);
        let cfg = TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        };
        let mut model = train(&train_set, &cfg);
        let cm = model.evaluate(&test_set);
        assert!(
            cm.f1_positive() > 0.9,
            "F1 {:.3}\n{}",
            cm.f1_positive(),
            cm.render(&["neg", "pos"])
        );
    }

    #[test]
    fn loss_decreases() {
        let data = synth(300, 3, 5);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        let model = train(&data, &cfg);
        let first = model.loss_curve[0];
        let last = *model.loss_curve.last().expect("non-empty");
        assert!(last < first * 0.7, "loss {first} -> {last}");
    }

    #[test]
    fn training_is_reproducible() {
        let data = synth(200, 3, 7);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut m1 = train(&data, &cfg);
        let mut m2 = train(&data, &cfg);
        assert_eq!(m1.predict(&data), m2.predict(&data));
        assert_eq!(m1.loss_curve, m2.loss_curve);
    }

    #[test]
    fn predict_one_matches_batch() {
        let data = synth(100, 3, 9);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut model = train(&data, &cfg);
        let batch = model.predict(&data);
        for i in [0, 13, 57] {
            assert_eq!(model.predict_one(&data.sample_rows(i)), batch[i]);
        }
    }

    #[test]
    fn predict_batch_matches_per_sample_calls() {
        let data = synth(90, 3, 13);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        let mut model = train(&data, &cfg);
        assert_eq!(
            model.shape(),
            ModelShape {
                n_servers: 3,
                n_features: 6,
                n_classes: 2
            }
        );
        // Stack samples 4..12 into one micro-batch.
        let idx: Vec<usize> = (4..12).collect();
        let mut rows = Vec::new();
        for &i in &idx {
            rows.extend_from_slice(data.sample_rows(i).data());
        }
        let stacked = Matrix::from_vec(idx.len() * 3, 6, rows);
        let batched = model.predict_batch(&stacked);
        let singles: Vec<usize> = idx
            .iter()
            .map(|&i| model.predict_one(&data.sample_rows(i)))
            .collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn early_stopping_halts_and_keeps_best_weights() {
        // Small, noisy dataset: validation loss stalls quickly. The
        // seed is chosen so training converges before the val split
        // stalls under the vendored RNG backend (see vendor/rand).
        let data = synth(60, 3, 7);
        let cfg = TrainConfig {
            epochs: 400,
            lr: 5e-3,
            lr_decay: 1.0,
            early_stop: Some(EarlyStop {
                patience: 5,
                val_fraction: 0.25,
            }),
            ..TrainConfig::default()
        };
        let mut model = train(&data, &cfg);
        // Stopped well before the epoch budget.
        assert!(
            model.loss_curve.len() < 400,
            "ran all {} epochs",
            model.loss_curve.len()
        );
        assert_eq!(model.val_curve.len(), model.loss_curve.len());
        // Still a good classifier on this separable data.
        let cm = model.evaluate(&data);
        assert!(cm.accuracy() > 0.8, "acc {:.3}", cm.accuracy());
        // The best validation loss is at least `patience` from the end.
        let best = model
            .val_curve
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let last = *model.val_curve.last().expect("non-empty");
        assert!(best <= last);
    }

    #[test]
    fn train_with_schema_validates_vector_length() {
        let data = synth(60, 3, 7); // 6 features per server vector
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        };
        let good = FeatureSchema::custom(6);
        let m = match train_with_schema(&data, &cfg, good.clone()) {
            Ok(m) => m,
            Err(e) => panic!("matching schema rejected: {e}"),
        };
        assert_eq!(m.schema(), &good);
        let err = train_with_schema(&data, &cfg, FeatureSchema::custom(7))
            .err()
            .expect("schema wider than the data");
        assert!(matches!(err, QiError::SchemaMismatch { .. }), "{err}");
    }

    #[test]
    fn three_class_training_works() {
        // Class = 0/1/2 by the magnitude of the hot-server feature.
        let mut rng = StdRng::seed_from_u64(21);
        let servers = 3;
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for i in 0..450 {
            let class = i % 3;
            let mag = match class {
                0 => 0.0,
                1 => 3.0,
                _ => 9.0,
            };
            let mut block = Vec::new();
            for _ in 0..servers {
                block.extend_from_slice(&[
                    mag + rng.gen_range(-0.3..0.3f32),
                    rng.gen_range(0.0..1.0),
                ]);
            }
            samples.push(block);
            y.push(class);
        }
        let data = Dataset::from_samples(samples, y, servers);
        let (tr, te) = data.split(0.2, 1);
        let cfg = TrainConfig {
            n_classes: 3,
            epochs: 80,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let mut model = train(&tr, &cfg);
        let cm = model.evaluate(&te);
        assert!(cm.accuracy() > 0.9, "acc {:.3}", cm.accuracy());
        assert_eq!(cm.n_classes(), 3);
    }
}
