//! Unsupervised anomaly scoring: a deterministic isolation forest.
//!
//! The paper's classifier (§III-C) can only recognise interference
//! regimes it was trained on. This module adds the observability half
//! for *novel* degradation: an isolation forest (Liu et al., 2008)
//! fitted on healthy-baseline window vectors from the one
//! [`FeaturePipeline`](qi_monitor::pipeline::FeaturePipeline)
//! featurization path, scoring each window by how easy it is to isolate
//! with random axis-aligned splits. Faulted windows sit far from the
//! healthy manifold, take few splits to isolate, and score near 1.
//!
//! One departure from the 2008 construction: leaves are
//! **range-aware** (in the spirit of SCiForest's acceptance ranges).
//! Simulator feature sets are heavily duplicated — distinct seeds
//! produce many identical healthy windows — so multi-point leaves are
//! usually *pure* clusters that no axis-aligned cut can subdivide. The
//! textbook scoring rule grants every point landing in a leaf the full
//! `c(size)` average-subtree credit, which hands an out-of-manifold
//! window the same long path as the duplicates it rode in with and
//! caps its score at the healthy ceiling. Each leaf therefore records
//! the bounding box of its training points: a scored point inside the
//! box earns the usual `c(size)` credit, while a point outside it
//! would be separated from the cluster by roughly one more cut and
//! earns exactly `+1`.
//!
//! Determinism contract (the headline differential suite pins it):
//!
//! - All randomness flows from per-tree [`SimRng`] substreams derived
//!   from `ForestConfig::seed` alone — fitting is single-threaded and
//!   split order is fixed, so the forest is a pure function of
//!   `(row multiset, config)`.
//! - Training rows are first sorted into a canonical content order
//!   (lexicographic `f32::total_cmp`), so *permuting* the training rows
//!   yields a bit-identical forest.
//! - Scoring a vector is a pure function of the vector, so duplicate
//!   points score equal and thread pools cannot perturb results;
//!   [`IsolationForest::score_batch`] fans rows out over rayon and
//!   collects in index order, byte-identical at any worker count.

use qi_simkit::rng::SimRng;
use qi_simkit::stats::percentile;
use rayon::prelude::*;

/// Euler–Mascheroni constant, for the average BST path length.
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Average unsuccessful-search path length of a BST over `n` points —
/// the isolation-forest normaliser `c(n)`.
fn avg_path(n: u64) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 1.0,
        _ => {
            let n = n as f64;
            2.0 * ((n - 1.0).ln() + EULER_GAMMA) - 2.0 * (n - 1.0) / n
        }
    }
}

/// Isolation-forest hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestConfig {
    /// Trees in the ensemble.
    pub n_trees: usize,
    /// Subsample size ψ per tree (capped at the training-set size).
    pub sample_size: usize,
    /// Seed for the per-tree [`SimRng`] substreams.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            sample_size: 256,
            seed: 0,
        }
    }
}

/// One node of an isolation tree, stored in a flat arena.
#[derive(Clone, Copy, Debug)]
enum Node {
    /// Unsplit external node holding `size` training points. `bbox`
    /// indexes the tree's bounding-box arena (in units of `2 × dim`
    /// floats); [`NO_BBOX`] for leaves of fewer than two points, which
    /// never consult it.
    Leaf { size: u32, bbox: u32 },
    /// `x[dim] < thresh` goes left, else right.
    Split {
        dim: u32,
        thresh: f32,
        left: u32,
        right: u32,
    },
}

/// Bounding-box sentinel for leaves that carry none.
const NO_BBOX: u32 = u32::MAX;

/// One isolation tree: a flat node arena (root at index 0) plus the
/// leaf bounding boxes, flattened `[lo₀, hi₀, lo₁, hi₁, …]` per box.
#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
    boxes: Vec<f32>,
}

/// A fitted ensemble of isolation trees.
#[derive(Clone, Debug)]
pub struct IsolationForest {
    trees: Vec<Tree>,
    dim: usize,
    /// Effective subsample size ψ (normalises path lengths).
    sample_size: u64,
}

/// Lexicographic total order on feature rows.
fn row_cmp(a: &[f32], b: &[f32]) -> std::cmp::Ordering {
    a.iter()
        .zip(b)
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or(std::cmp::Ordering::Equal)
}

impl IsolationForest {
    /// Fit on `rows` (all the same nonzero length). Panics on an empty
    /// training set or ragged rows — those are caller bugs, not data
    /// conditions.
    pub fn fit(cfg: ForestConfig, rows: &[Vec<f32>]) -> IsolationForest {
        assert!(!rows.is_empty(), "isolation forest needs training rows");
        assert!(cfg.n_trees > 0, "isolation forest needs at least one tree");
        let dim = rows[0].len();
        assert!(dim > 0, "feature rows must be non-empty");
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "ragged feature rows: expected dim {dim}"
        );
        let n = rows.len();
        let psi = cfg.sample_size.clamp(1, n);
        let max_depth = if psi > 1 {
            (usize::BITS - (psi - 1).leading_zeros()) as usize
        } else {
            0
        };
        // Canonical content order: permutation invariance. Duplicate
        // rows tie, but ties carry identical content, so any resolution
        // builds the same trees.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| row_cmp(&rows[a], &rows[b]));
        let parent = SimRng::new(cfg.seed);
        let trees = (0..cfg.n_trees)
            .map(|t| {
                let mut rng = parent.substream(0xA0_0000 + t as u64);
                let perm = rng.permutation(n);
                let chosen: Vec<usize> = perm[..psi].iter().map(|&i| order[i]).collect();
                let mut tree = Tree {
                    nodes: Vec::new(),
                    boxes: Vec::new(),
                };
                build_tree(&mut tree, rows, chosen, 0, max_depth, &mut rng);
                tree
            })
            .collect();
        IsolationForest {
            trees,
            dim,
            sample_size: psi as u64,
        }
    }

    /// Feature dimensionality this forest was fitted on.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Anomaly score of `x` in `[0, 1]`: `2^(−E[h(x)]/c(ψ))`. Scores
    /// near 1 isolate in far fewer splits than a healthy point; scores
    /// near or below 0.5 are unremarkable.
    pub fn score(&self, x: &[f32]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dim mismatch");
        let denom = avg_path(self.sample_size);
        if denom <= 0.0 {
            // ψ = 1: every path has length 0; no isolation signal.
            return 0.5;
        }
        let total: f64 = self.trees.iter().map(|t| path_length(t, x, self.dim)).sum();
        let mean = total / self.trees.len() as f64;
        2f64.powf(-mean / denom).clamp(0.0, 1.0)
    }

    /// Score many rows, fanned out over the current rayon pool and
    /// collected in index order (byte-identical at any thread count).
    pub fn score_batch(&self, rows: &[Vec<f32>]) -> Vec<f64> {
        rows.par_iter().map(|r| self.score(r)).collect()
    }
}

/// Observed `[lo, hi]` of dimension `d` among `items` (total-order
/// comparisons, so NaNs cannot poison the range).
fn dim_range(rows: &[Vec<f32>], items: &[usize], d: usize) -> (f32, f32) {
    let mut lo = rows[items[0]][d];
    let mut hi = lo;
    for &i in &items[1..] {
        let v = rows[i][d];
        if v.total_cmp(&lo).is_lt() {
            lo = v;
        }
        if v.total_cmp(&hi).is_gt() {
            hi = v;
        }
    }
    (lo, hi)
}

/// Register the bounding box of `items` in the tree's box arena (for
/// leaves of two or more points; smaller leaves take [`NO_BBOX`]).
fn push_bbox(tree: &mut Tree, rows: &[Vec<f32>], items: &[usize]) -> u32 {
    if items.len() < 2 {
        return NO_BBOX;
    }
    let dim = rows[items[0]].len();
    let idx = (tree.boxes.len() / (2 * dim)) as u32;
    for d in 0..dim {
        let (lo, hi) = dim_range(rows, items, d);
        tree.boxes.push(lo);
        tree.boxes.push(hi);
    }
    idx
}

/// Recursively build one isolation tree over `items` (indices into
/// `rows`), returning the arena index of the built node.
fn build_tree(
    tree: &mut Tree,
    rows: &[Vec<f32>],
    items: Vec<usize>,
    depth: usize,
    max_depth: usize,
    rng: &mut SimRng,
) -> u32 {
    let here = tree.nodes.len() as u32;
    if items.len() <= 1 || depth >= max_depth {
        let bbox = push_bbox(tree, rows, &items);
        tree.nodes.push(Node::Leaf {
            size: items.len() as u32,
            bbox,
        });
        return here;
    }
    // Dims with spread among the points at this node.
    let dim = rows[items[0]].len();
    let mut splittable = Vec::new();
    for d in 0..dim {
        let (lo, hi) = dim_range(rows, &items, d);
        if lo.total_cmp(&hi).is_lt() {
            splittable.push((d, lo, hi));
        }
    }
    if splittable.is_empty() {
        // All remaining points identical: a pure leaf (its bounding
        // box is the one shared point).
        let bbox = push_bbox(tree, rows, &items);
        tree.nodes.push(Node::Leaf {
            size: items.len() as u32,
            bbox,
        });
        return here;
    }
    let (d, lo, hi) = splittable[rng.index(splittable.len())];
    let thresh = rng.range_f64(lo as f64, hi as f64) as f32;
    let (left_items, right_items): (Vec<usize>, Vec<usize>) =
        items.iter().partition(|&&i| rows[i][d] < thresh);
    // Reserve the split slot, then build children (left first: fixed
    // split order is part of the determinism contract).
    tree.nodes.push(Node::Leaf {
        size: 0,
        bbox: NO_BBOX,
    });
    let left = build_tree(tree, rows, left_items, depth + 1, max_depth, rng);
    let right = build_tree(tree, rows, right_items, depth + 1, max_depth, rng);
    tree.nodes[here as usize] = Node::Split {
        dim: d as u32,
        thresh,
        left,
        right,
    };
    here
}

/// Path length of `x` through one tree: splits taken, plus the average
/// sub-tree depth `c(size)` of the leaf it lands in when `x` sits
/// inside the leaf's bounding box — or `+1` when it does not (one more
/// cut would separate it from the leaf cluster; see the module docs).
fn path_length(tree: &Tree, x: &[f32], dim: usize) -> f64 {
    let mut at = 0u32;
    let mut depth = 0u64;
    loop {
        match tree.nodes[at as usize] {
            Node::Leaf { size, bbox } => {
                if size < 2 {
                    return depth as f64;
                }
                let b = bbox as usize * 2 * dim;
                let inside = (0..dim)
                    .all(|d| tree.boxes[b + 2 * d] <= x[d] && x[d] <= tree.boxes[b + 2 * d + 1]);
                return if inside {
                    depth as f64 + avg_path(size as u64)
                } else {
                    depth as f64 + 1.0
                };
            }
            Node::Split {
                dim,
                thresh,
                left,
                right,
            } => {
                at = if x[dim as usize] < thresh {
                    left
                } else {
                    right
                };
                depth += 1;
            }
        }
    }
}

/// One thresholded scoring decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnomalyVerdict {
    /// Isolation score of the window in `[0, 1]`.
    pub score: f64,
    /// Healthy-calibration threshold the score was compared against.
    pub threshold: f64,
    /// `score > threshold` (strict).
    pub anomalous: bool,
}

/// A forest plus a threshold calibrated on its healthy training scores.
#[derive(Clone, Debug)]
pub struct AnomalyScorer {
    forest: IsolationForest,
    threshold: f64,
}

impl AnomalyScorer {
    /// Fit a forest on healthy window vectors and set the alert
    /// threshold at the `pct`-th percentile (e.g. 95.0) of the training
    /// rows' own scores — the ROC operating point the differential
    /// suite checks faulted windows against.
    pub fn fit_healthy(cfg: ForestConfig, rows: &[Vec<f32>], pct: f64) -> AnomalyScorer {
        let forest = IsolationForest::fit(cfg, rows);
        let scores = forest.score_batch(rows);
        let threshold = percentile(&scores, pct);
        AnomalyScorer { forest, threshold }
    }

    /// The calibrated alert threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying forest.
    pub fn forest(&self) -> &IsolationForest {
        &self.forest
    }

    /// Score one window vector.
    pub fn score(&self, x: &[f32]) -> f64 {
        self.forest.score(x)
    }

    /// Score and threshold one window vector.
    pub fn verdict(&self, x: &[f32]) -> AnomalyVerdict {
        let score = self.forest.score(x);
        AnomalyVerdict {
            score,
            threshold: self.threshold,
            anomalous: score > self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tight healthy cluster plus knobs for outliers.
    fn cluster_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.normal(1.0, 0.05) as f32).collect())
            .collect()
    }

    #[test]
    fn refit_is_bit_identical() {
        let rows = cluster_rows(200, 6, 11);
        let cfg = ForestConfig {
            n_trees: 25,
            sample_size: 64,
            seed: 5,
        };
        let a = IsolationForest::fit(cfg, &rows);
        let b = IsolationForest::fit(cfg, &rows);
        for r in &rows {
            assert_eq!(a.score(r).to_bits(), b.score(r).to_bits());
        }
    }

    #[test]
    fn outliers_score_above_the_cluster() {
        let rows = cluster_rows(300, 4, 3);
        let f = IsolationForest::fit(
            ForestConfig {
                n_trees: 50,
                sample_size: 128,
                seed: 9,
            },
            &rows,
        );
        let healthy_max = rows
            .iter()
            .map(|r| f.score(r))
            .fold(f64::NEG_INFINITY, f64::max);
        let outlier = vec![25.0f32; 4];
        assert!(
            f.score(&outlier) > healthy_max,
            "outlier {} vs healthy max {healthy_max}",
            f.score(&outlier)
        );
    }

    #[test]
    fn scores_are_finite_unit_interval() {
        let rows = cluster_rows(50, 3, 1);
        let f = IsolationForest::fit(ForestConfig::default(), &rows);
        for r in &rows {
            let s = f.score(r);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn batch_matches_serial() {
        let rows = cluster_rows(80, 5, 2);
        let f = IsolationForest::fit(
            ForestConfig {
                n_trees: 10,
                sample_size: 32,
                seed: 1,
            },
            &rows,
        );
        let batch = f.score_batch(&rows);
        for (r, s) in rows.iter().zip(&batch) {
            assert_eq!(f.score(r).to_bits(), s.to_bits());
        }
    }

    #[test]
    fn scorer_thresholds_at_the_percentile() {
        let rows = cluster_rows(100, 4, 8);
        let sc = AnomalyScorer::fit_healthy(
            ForestConfig {
                n_trees: 30,
                sample_size: 64,
                seed: 4,
            },
            &rows,
            95.0,
        );
        // ~5% of training rows sit above their own p95.
        let above = rows.iter().filter(|r| sc.verdict(r).anomalous).count();
        assert!(
            above <= rows.len() / 10,
            "{above} of {} flagged",
            rows.len()
        );
        let v = sc.verdict(&[50.0f32; 4]);
        assert!(v.anomalous);
        assert_eq!(v.threshold, sc.threshold());
        assert!(v.score > v.threshold);
    }

    #[test]
    fn duplicate_heavy_training_still_exposes_outliers() {
        // Three distinct healthy windows, each repeated 40× — the
        // simulator-trace shape that defeats textbook leaf credit.
        // Range-aware leaves must still put a novel point above every
        // healthy score.
        let mut rows = Vec::new();
        for _ in 0..40 {
            rows.push(vec![1.0f32, 2.0, 3.0]);
            rows.push(vec![1.5f32, 2.5, 3.5]);
            rows.push(vec![0.5f32, 1.5, 2.5]);
        }
        let f = IsolationForest::fit(
            ForestConfig {
                n_trees: 50,
                sample_size: 64,
                seed: 2,
            },
            &rows,
        );
        let healthy_max = rows
            .iter()
            .map(|r| f.score(r))
            .fold(f64::NEG_INFINITY, f64::max);
        let novel = f.score(&[8.0, 0.1, 9.0]);
        assert!(
            novel > healthy_max,
            "novel {novel} vs healthy max {healthy_max}"
        );
    }

    #[test]
    fn degenerate_single_row_training() {
        let rows = vec![vec![1.0f32, 2.0]];
        let f = IsolationForest::fit(
            ForestConfig {
                n_trees: 5,
                sample_size: 64,
                seed: 0,
            },
            &rows,
        );
        // ψ = 1: no isolation signal, everything scores 0.5.
        assert_eq!(f.score(&[1.0, 2.0]), 0.5);
        assert_eq!(f.score(&[9.0, 9.0]), 0.5);
    }
}
