//! Regression extension: predict the *raw* degradation level instead of
//! a severity bin.
//!
//! The paper deliberately classifies into bins ("we do not try to
//! predict the exact slowdown ratio", §IV-A). This module implements the
//! alternative so the design choice can be quantified: a kernel network
//! with a single linear output trained on `ln(level)` with MSE, whose
//! predictions can be thresholded back into the paper's bins. The
//! `ablation_model_extensions` bench compares both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::{Dataset, Standardizer};
use crate::matrix::Matrix;
use crate::model::KernelNet;
use crate::optim::Adam;
use crate::train::TrainConfig;

/// Mean-squared-error loss and gradient for a single-output prediction.
pub fn mse_loss(pred: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    assert_eq!(pred.cols(), 1, "regression expects one output");
    assert_eq!(pred.rows(), targets.len());
    let n = targets.len() as f32;
    let mut grad = Matrix::zeros(pred.rows(), 1);
    let mut loss = 0.0;
    for (i, &t) in targets.iter().enumerate() {
        let d = pred.get(i, 0) - t;
        loss += d * d;
        grad.set(i, 0, 2.0 * d / n);
    }
    (loss / n, grad)
}

/// A trained degradation-level regressor.
pub struct RegressionModel {
    net: KernelNet,
    standardizer: Standardizer,
    /// Mean training MSE per epoch.
    pub loss_curve: Vec<f32>,
}

impl RegressionModel {
    /// Predict the degradation level (≥ ~0) for every sample of `data`.
    pub fn predict_levels(&mut self, data: &Dataset) -> Vec<f64> {
        let mut x = data.x.clone();
        self.standardizer.transform(&mut x);
        let out = self.net.forward(&x);
        (0..out.rows())
            .map(|r| (out.get(r, 0) as f64).exp())
            .collect()
    }
}

/// Train a level regressor on `data` with per-sample raw degradation
/// `levels` (the pre-binning values from dataset generation). Targets
/// are log-transformed: levels span 1x to 40x+, and the log keeps the
/// loss from being dominated by the extreme tail.
pub fn train_regression(data: &Dataset, levels: &[f64], cfg: &TrainConfig) -> RegressionModel {
    assert_eq!(data.len(), levels.len());
    assert!(!data.is_empty());
    let standardizer = Standardizer::fit(&data.x);
    let mut x = data.x.clone();
    standardizer.transform(&mut x);
    let std_data = Dataset {
        x,
        y: data.y.clone(),
        n_servers: data.n_servers,
    };
    let targets: Vec<f32> = levels.iter().map(|&l| (l.max(1e-3) as f32).ln()).collect();

    let mut net = KernelNet::new(
        std_data.n_features(),
        std_data.n_servers,
        &cfg.kernel_hidden,
        &cfg.head_hidden,
        1,
        cfg.seed,
    );
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7E62);
    let n = std_data.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch) {
            let sub = std_data.subset(chunk);
            let t: Vec<f32> = chunk.iter().map(|&i| targets[i]).collect();
            let pred = net.forward(&sub.x);
            let (loss, grad) = mse_loss(&pred, &t);
            net.backward(&grad);
            net.apply(&mut opt);
            epoch_loss += loss;
            batches += 1;
        }
        loss_curve.push(epoch_loss / batches.max(1) as f32);
        opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    RegressionModel {
        net,
        standardizer,
        loss_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize) -> (Dataset, Vec<f64>) {
        // Level = 1 + 3 * mean(hot feature), recoverable from features.
        let servers = 3;
        let mut rng = StdRng::seed_from_u64(9);
        let mut samples = Vec::new();
        let mut levels = Vec::new();
        for _ in 0..n {
            let hot: f32 = rng.gen_range(0.0..2.0f32);
            let mut block = Vec::new();
            for _ in 0..servers {
                block.extend_from_slice(&[
                    hot + rng.gen_range(-0.05..0.05f32),
                    rng.gen_range(0.0..1.0),
                    hot * 0.5,
                    rng.gen_range(-0.2..0.2),
                ]);
            }
            samples.push(block);
            levels.push(1.0 + 3.0 * hot as f64);
        }
        let y = levels.iter().map(|&l| usize::from(l >= 2.0)).collect();
        (Dataset::from_samples(samples, y, servers), levels)
    }

    #[test]
    fn mse_loss_gradient_is_correct() {
        let pred = Matrix::from_vec(2, 1, vec![1.0, -0.5]);
        let (loss, grad) = mse_loss(&pred, &[0.0, 0.5]);
        assert!((loss - (1.0 + 1.0) / 2.0).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6); // 2*(1-0)/2
        assert!((grad.get(1, 0) + 1.0).abs() < 1e-6); // 2*(-1)/2
    }

    #[test]
    fn regressor_recovers_the_level() {
        let (data, levels) = synth(400);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let mut model = train_regression(&data, &levels, &cfg);
        let preds = model.predict_levels(&data);
        let mae: f64 = preds
            .iter()
            .zip(&levels)
            .map(|(p, t)| (p - t).abs())
            .sum::<f64>()
            / levels.len() as f64;
        assert!(mae < 0.6, "MAE {mae:.3}");
        // Loss decreased substantially.
        let first = model.loss_curve[0];
        let last = *model.loss_curve.last().expect("non-empty");
        assert!(last < first * 0.3, "loss {first} -> {last}");
    }

    #[test]
    fn thresholded_regression_classifies() {
        let (data, levels) = synth(400);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let mut model = train_regression(&data, &levels, &cfg);
        let preds = model.predict_levels(&data);
        let correct = preds
            .iter()
            .zip(&data.y)
            .filter(|(p, &y)| usize::from(**p >= 2.0) == y)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "acc {correct}/{}",
            data.len()
        );
    }
}
