//! Event-time replay driver: trace → streaming monitor → serve engine.
//!
//! The deterministic stand-in for a live metric feed. A finished
//! [`RunTrace`] is merged into a single non-decreasing event stream
//! (ops by completion, RPCs by issue, server samples by sample time)
//! and pushed through a [`StreamingMonitor`]; the instant a window is
//! emitted, one [`PredictRequest`](crate::engine::PredictRequest) per
//! active application is submitted to the engine at that window's close
//! time. Because every timestamp comes from the trace, replaying the
//! same trace yields the same requests at the same simulated instants —
//! and therefore byte-identical serving telemetry.

use qi_monitor::features::FeatureConfig;
use qi_monitor::stream::{EmittedWindow, StreamingMonitor};
use qi_monitor::window::WindowConfig;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_simkit::time::SimTime;

use crate::engine::{Admission, PredictRequest, Prediction, ServeEngine};

/// What a replay produced, in emission order.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Windows the monitor emitted.
    pub windows: u64,
    /// Requests submitted to the engine (one per active app per window).
    pub submitted: u64,
    /// Requests answered with a fresh (possibly batched) prediction.
    pub predictions: Vec<Prediction>,
    /// Requests answered from a stale class (DegradeToStale).
    pub stale: u64,
    /// Requests shed (never answered).
    pub shed: u64,
}

/// Replay `trace` through a fresh [`StreamingMonitor`] into `engine`.
///
/// Each emitted window is converted to per-app feature blocks via
/// [`EmittedWindow::feature_blocks`] (apps in ascending id order) and
/// submitted at the window's close instant, `wcfg.start_of(window + 1)`.
/// After the stream drains, the monitor's trailing windows are flushed
/// and the engine is finished, so every admitted request is answered.
pub fn replay_trace(
    engine: &mut ServeEngine,
    trace: &RunTrace,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
) -> Result<ReplaySummary, QiError> {
    let mut monitor = StreamingMonitor::new(wcfg, n_devices);
    let mut summary = ReplaySummary::default();
    let mut now = SimTime(0);

    let submit_window = |engine: &mut ServeEngine,
                             summary: &mut ReplaySummary,
                             now: &mut SimTime,
                             w: &EmittedWindow|
     -> Result<(), QiError> {
        summary.windows += 1;
        let close = wcfg.start_of(w.window + 1);
        *now = close.max(*now);
        for (app, block, _avail) in w.feature_blocks(fcfg, n_devices, wcfg.window) {
            summary.submitted += 1;
            let req = PredictRequest {
                tenant: app,
                window: w.window,
                block,
            };
            let (admission, done) = engine.submit(*now, req)?;
            summary.predictions.extend(done);
            match admission {
                Admission::Enqueued => {}
                Admission::Stale(_) => summary.stale += 1,
                Admission::Shed => summary.shed += 1,
            }
        }
        Ok(())
    };

    let (mut oi, mut ri, mut si) = (0, 0, 0);
    loop {
        let t_op = trace.ops.get(oi).map(|o| o.completed);
        let t_rpc = trace.rpcs.get(ri).map(|r| r.issued);
        let t_smp = trace.samples.get(si).map(|s| s.time);
        let Some(next) = [t_op, t_rpc, t_smp].into_iter().flatten().min() else {
            break;
        };
        let emitted = if t_op == Some(next) {
            oi += 1;
            monitor.push_op(&trace.ops[oi - 1])?
        } else if t_rpc == Some(next) {
            ri += 1;
            monitor.push_rpc(&trace.rpcs[ri - 1])?
        } else {
            si += 1;
            monitor.push_sample(&trace.samples[si - 1])?
        };
        for w in &emitted {
            submit_window(engine, &mut summary, &mut now, w)?;
        }
    }
    for w in monitor.finish() {
        submit_window(engine, &mut summary, &mut now, &w)?;
    }
    summary.predictions.extend(engine.finish(now)?);
    Ok(summary)
}
