//! Event-time replay driver: trace → feature pipeline → serve engine.
//!
//! The deterministic stand-in for a live metric feed. A finished
//! [`RunTrace`] is pushed through the canonical
//! [`FeaturePipeline`] — the same windowing/accumulation/assembly code
//! training data was built with — and the instant a window is emitted,
//! one [`PredictRequest`](crate::engine::PredictRequest) per active
//! application is submitted to the engine at that window's close time.
//! Because every timestamp comes from the trace, replaying the same
//! trace yields the same requests at the same simulated instants — and
//! therefore byte-identical serving telemetry.
//!
//! The monitoring configuration is **not** a parameter: it is derived
//! from the engine registry's expected [`FeatureSchema`], so the replay
//! can never assemble vectors under a layout different from the one the
//! active model was validated against.

use qi_monitor::pipeline::FeaturePipeline;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_simkit::time::SimTime;

use crate::engine::{Admission, PredictRequest, Prediction, ServeEngine};
use crate::registry::ModelRegistry;
use crate::sharded::ShardedServeEngine;

/// What the replay driver needs from a prediction service. Both
/// [`ServeEngine`] and [`ShardedServeEngine`] implement it, so a trace
/// replays identically-shaped through either — the sharding test suite
/// leans on this to compare engines like for like.
pub trait PredictService {
    /// The registry backing the service (the replay derives its
    /// pipeline configuration from the registry's expected schema).
    fn registry(&self) -> &ModelRegistry;
    /// Submit one request at simulated instant `now`.
    fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError>;
    /// End of stream: flush whatever is queued.
    fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError>;
}

impl PredictService for ServeEngine {
    fn registry(&self) -> &ModelRegistry {
        ServeEngine::registry(self)
    }
    fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        ServeEngine::submit(self, now, req)
    }
    fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        ServeEngine::finish(self, now)
    }
}

impl PredictService for ShardedServeEngine {
    fn registry(&self) -> &ModelRegistry {
        ShardedServeEngine::registry(self)
    }
    fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        ShardedServeEngine::submit(self, now, req)
    }
    fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        ShardedServeEngine::finish(self, now)
    }
}

/// What a replay produced, in emission order.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Windows the monitor emitted.
    pub windows: u64,
    /// Requests submitted to the engine (one per active app per window).
    pub submitted: u64,
    /// Requests answered with a fresh (possibly batched) prediction.
    pub predictions: Vec<Prediction>,
    /// Requests answered from a stale class (DegradeToStale).
    pub stale: u64,
    /// Requests shed (never answered).
    pub shed: u64,
}

/// Replay `trace` through a fresh [`FeaturePipeline`] into `engine`.
///
/// The pipeline's window and feature configuration come from the
/// registry's expected schema ([`crate::ModelRegistry::expected_schema`]);
/// a registry configured with an unbound ([`custom`]) schema cannot
/// drive a replay and errors out up front.
///
/// Each emitted window is converted to per-app feature blocks via
/// [`EmittedWindow::feature_blocks`][qi_monitor::pipeline::EmittedWindow::feature_blocks]
/// (apps in ascending id order) and submitted at the window's close
/// instant, `wcfg.start_of(window + 1)`. After the stream drains, the
/// pipeline's trailing windows are flushed and the engine is finished,
/// so every admitted request is answered.
///
/// [`custom`]: qi_monitor::schema::FeatureSchema::custom
pub fn replay_trace<S: PredictService>(
    engine: &mut S,
    trace: &RunTrace,
    n_devices: u32,
) -> Result<ReplaySummary, QiError> {
    let schema = engine.registry().expected_schema();
    let wcfg = schema.window_config().ok_or_else(|| {
        QiError::Serve(format!(
            "registry schema [{schema}] has no window length; replay needs a windowed schema"
        ))
    })?;
    let fcfg = schema.feature_config();
    let mut pipeline = FeaturePipeline::new(wcfg, fcfg, n_devices);
    let mut summary = ReplaySummary::default();
    let mut now = SimTime(0);

    let emitted = pipeline.ingest_trace(trace)?;
    let final_windows = pipeline.finish();
    for w in emitted.iter().chain(final_windows.iter()) {
        summary.windows += 1;
        let close = wcfg.start_of(w.window + 1);
        now = close.max(now);
        for (app, block, _avail) in w.feature_blocks(fcfg, n_devices, wcfg.window) {
            summary.submitted += 1;
            let req = PredictRequest {
                tenant: app,
                window: w.window,
                block,
            };
            let (admission, done) = engine.submit(now, req)?;
            summary.predictions.extend(done);
            match admission {
                Admission::Enqueued => {}
                Admission::Stale(_) => summary.stale += 1,
                Admission::Shed => summary.shed += 1,
            }
        }
    }
    summary.predictions.extend(engine.finish(now)?);
    Ok(summary)
}
