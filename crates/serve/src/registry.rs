//! Versioned model registry.
//!
//! A deployment retrains periodically; the serving side must pick up new
//! model versions without dropping in-flight traffic and must refuse a
//! model that disagrees with the monitor's feature layout (wrong cluster
//! size, wrong feature ablation, wrong class count). The registry owns
//! those rules:
//!
//! - models are **loaded** by version from their `QIMODEL` text form
//!   ([`qi_ml::serialize`]) and validated against the expected
//!   [`ModelShape`] *and* [`FeatureSchema`] before they become visible —
//!   a model trained under a different window length, feature ablation,
//!   or imputation policy is refused with
//!   [`QiError::SchemaMismatch`] before it can serve a single vector;
//! - exactly one version is **active** at a time; activation is the only
//!   hot-swap point and the engine performs it between batches, so a
//!   batch is never split across model versions;
//! - every load/reject/activation is counted, and the registry reports
//!   its state (`serve.registry.*`) into the serving telemetry snapshot.

use std::collections::BTreeMap;

use qi_ml::serialize::model_from_text;
use qi_ml::train::{ModelShape, TrainedModel};
use qi_monitor::schema::FeatureSchema;
use qi_simkit::error::QiError;
use qi_telemetry::{MetricValue, MetricsSnapshot};

/// Versioned store of validated models, with one active version.
pub struct ModelRegistry {
    expected: ModelShape,
    expected_schema: FeatureSchema,
    versions: BTreeMap<u64, TrainedModel>,
    active: Option<u64>,
    loads_ok: u64,
    loads_rejected: u64,
    activations: u64,
}

impl ModelRegistry {
    /// Empty registry that will only accept models of `expected` shape
    /// whose embedded feature schema equals `expected_schema`.
    pub fn new(expected: ModelShape, expected_schema: FeatureSchema) -> Self {
        ModelRegistry {
            expected,
            expected_schema,
            versions: BTreeMap::new(),
            active: None,
            loads_ok: 0,
            loads_rejected: 0,
            activations: 0,
        }
    }

    /// The shape every registered model must have.
    pub fn expected_shape(&self) -> ModelShape {
        self.expected
    }

    /// The feature schema every registered model must carry.
    pub fn expected_schema(&self) -> &FeatureSchema {
        &self.expected_schema
    }

    fn check_schema(&self, version: u64, model: &TrainedModel) -> Result<(), QiError> {
        if model.schema() != &self.expected_schema {
            return Err(QiError::SchemaMismatch {
                context: format!("validating model version {version}"),
                expected: self.expected_schema.to_string(),
                got: model.schema().to_string(),
            });
        }
        Ok(())
    }

    /// Register an already-deserialized model under `version`.
    /// Rejects duplicate versions, shape mismatches, and feature-schema
    /// mismatches (checked in that order).
    pub fn insert(&mut self, version: u64, model: TrainedModel) -> Result<(), QiError> {
        if self.versions.contains_key(&version) {
            self.loads_rejected += 1;
            return Err(QiError::Serve(format!(
                "model version {version} already registered"
            )));
        }
        let shape = model.shape();
        if shape != self.expected {
            self.loads_rejected += 1;
            return Err(QiError::Serve(format!(
                "model version {version} has shape [{shape}], monitor expects [{}]",
                self.expected
            )));
        }
        if let Err(e) = self.check_schema(version, &model) {
            self.loads_rejected += 1;
            return Err(e);
        }
        self.versions.insert(version, model);
        self.loads_ok += 1;
        Ok(())
    }

    /// Parse a `QIMODEL` text file and register it under `version`.
    /// This is the registry's trust boundary: a corrupt or truncated
    /// file surfaces as an error (never a panic), and a well-formed
    /// model of the wrong shape is rejected before it can serve.
    pub fn load_text(&mut self, version: u64, text: &str) -> Result<(), QiError> {
        let model = model_from_text(text).map_err(|e| {
            self.loads_rejected += 1;
            QiError::Serve(format!("model version {version} failed to parse: {e}"))
        })?;
        self.insert(version, model)
    }

    /// Make `version` the serving model. The caller (the engine) must
    /// flush pending work first so the swap lands between batches.
    /// Re-validates the stored model's feature schema, so even a model
    /// registered before the expectation could change can never go live
    /// with a stale layout.
    pub fn activate(&mut self, version: u64) -> Result<(), QiError> {
        let Some(model) = self.versions.get(&version) else {
            return Err(QiError::Serve(format!(
                "cannot activate unknown model version {version}"
            )));
        };
        self.check_schema(version, model)?;
        self.active = Some(version);
        self.activations += 1;
        Ok(())
    }

    /// Currently active version, if any.
    pub fn active_version(&self) -> Option<u64> {
        self.active
    }

    /// The active model, immutably — the serving forward pass. Since
    /// the fused inference path (`TrainedModel::predict_batch_into`)
    /// takes `&self`, any number of shards can serve from one registry
    /// without cloning the model.
    pub fn active_model(&self) -> Option<&TrainedModel> {
        let v = self.active?;
        self.versions.get(&v)
    }

    /// Mutable access to the active model (training-path inference,
    /// e.g. `predict_batch`, which caches activations).
    pub fn active_model_mut(&mut self) -> Option<&mut TrainedModel> {
        let v = self.active?;
        self.versions.get_mut(&v)
    }

    /// All registered versions, ascending.
    pub fn versions(&self) -> Vec<u64> {
        self.versions.keys().copied().collect()
    }

    /// Fold the registry state into a telemetry snapshot
    /// (`serve.registry.*`). Every key is always present so snapshot
    /// key sets stay stable whether or not loads were rejected.
    pub fn metrics_into(&self, snap: &mut MetricsSnapshot) {
        snap.put(
            "serve.registry.models_loaded",
            MetricValue::Counter(self.loads_ok),
        );
        snap.put(
            "serve.registry.loads_rejected",
            MetricValue::Counter(self.loads_rejected),
        );
        snap.put(
            "serve.registry.activations",
            MetricValue::Counter(self.activations),
        );
        snap.put(
            "serve.registry.registered_versions",
            MetricValue::Gauge(self.versions.len() as f64),
        );
        snap.put(
            "serve.registry.active_version",
            MetricValue::Gauge(self.active.map_or(-1.0, |v| v as f64)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_ml::data::Dataset;
    use qi_ml::serialize::model_to_text;
    use qi_ml::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trained(servers: usize, feats: usize, seed: u64) -> TrainedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let pos = i % 2 == 0;
            let block: Vec<f32> = (0..servers * feats)
                .map(|_| {
                    if pos {
                        rng.gen_range(1.0..2.0)
                    } else {
                        rng.gen_range(-2.0..-1.0)
                    }
                })
                .collect();
            samples.push(block);
            y.push(usize::from(pos));
        }
        let data = Dataset::from_samples(samples, y, servers);
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        train(&data, &cfg)
    }

    #[test]
    fn load_activate_and_hot_swap() {
        let m1 = trained(3, 5, 1);
        let expected = m1.shape();
        let mut reg = ModelRegistry::new(expected, m1.schema().clone());
        assert_eq!(reg.active_version(), None);
        assert!(reg.active_model_mut().is_none());
        reg.load_text(1, &model_to_text(&m1)).expect("v1 loads");
        reg.insert(2, trained(3, 5, 2)).expect("v2 loads");
        assert_eq!(reg.versions(), vec![1, 2]);
        reg.activate(1).expect("v1 activates");
        assert_eq!(reg.active_version(), Some(1));
        reg.activate(2).expect("hot swap to v2");
        assert_eq!(reg.active_version(), Some(2));
        let mut snap = MetricsSnapshot::new();
        reg.metrics_into(&mut snap);
        assert_eq!(snap.counter("serve.registry.models_loaded"), Some(2));
        assert_eq!(snap.counter("serve.registry.activations"), Some(2));
        assert_eq!(snap.gauge("serve.registry.active_version"), Some(2.0));
    }

    #[test]
    fn wrong_shape_is_rejected() {
        let right = trained(3, 5, 1);
        let mut reg = ModelRegistry::new(right.shape(), right.schema().clone());
        // Wrong feature width and wrong server count both bounce.
        for (v, bad) in [(7, trained(3, 6, 1)), (8, trained(4, 5, 1))] {
            let err = reg.insert(v, bad).expect_err("shape mismatch");
            assert!(err.to_string().contains("shape"), "{err}");
        }
        assert!(reg.versions().is_empty());
        let mut snap = MetricsSnapshot::new();
        reg.metrics_into(&mut snap);
        assert_eq!(snap.counter("serve.registry.loads_rejected"), Some(2));
        assert_eq!(snap.gauge("serve.registry.active_version"), Some(-1.0));
    }

    #[test]
    fn schema_mismatched_model_is_rejected_before_it_can_serve() {
        use qi_monitor::features::{FeatureConfig, Imputation};
        use qi_monitor::window::WindowConfig;

        let m = trained(3, 5, 1);
        // Registry configured for the full 1-second-window pipeline; the
        // model was trained on a hand-built 5-feature dataset, so its
        // embedded schema disagrees even though nothing panics about it.
        let expected = FeatureSchema::current(
            WindowConfig::seconds(1),
            FeatureConfig::default(),
            Imputation::Zero,
        );
        let mut reg = ModelRegistry::new(m.shape(), expected);
        let err = reg.insert(1, m).expect_err("schema mismatch at load");
        assert!(matches!(err, QiError::SchemaMismatch { .. }), "{err}");
        assert!(reg.versions().is_empty());
        assert!(reg.active_model_mut().is_none(), "nothing can serve");
        let mut snap = MetricsSnapshot::new();
        reg.metrics_into(&mut snap);
        assert_eq!(snap.counter("serve.registry.loads_rejected"), Some(1));
    }

    #[test]
    fn corrupt_text_duplicate_version_and_unknown_activation_error() {
        let m = trained(2, 4, 3);
        let mut reg = ModelRegistry::new(m.shape(), m.schema().clone());
        assert!(reg.load_text(1, "not a model").is_err());
        reg.insert(1, m).expect("clean load");
        let dup = trained(2, 4, 4);
        assert!(reg.insert(1, dup).is_err(), "duplicate version");
        assert!(reg.activate(9).is_err(), "unknown version");
        // Failed activation leaves the active pointer untouched.
        reg.activate(1).expect("activate v1");
        assert!(reg.activate(9).is_err());
        assert_eq!(reg.active_version(), Some(1));
    }
}
