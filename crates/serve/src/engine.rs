//! Micro-batching inference engine with admission control.
//!
//! One prediction request arrives per emitted `(app, window)` cell.
//! Requests accumulate in a bounded queue and are flushed as a **single
//! stacked forward pass** when either threshold trips:
//!
//! - **batch size** — the queue reached [`ServeConfig::max_batch`];
//! - **batch delay** — the oldest queued request has waited
//!   [`ServeConfig::max_delay`] (checked by [`ServeEngine::poll`], which
//!   callers drive from simulated time).
//!
//! Ahead of the queue sits a [`TokenBucket`] admission controller and an
//! explicit [`OverloadPolicy`]; behind it, the batched forward pass runs
//! through the fused immutable inference path
//! ([`qi_ml::train::TrainedModel::predict_batch_into`]): `&self` on the model,
//! engine-owned scratch buffers, zero allocation per batch, and kernels
//! bit-identical to the training-path forward at any thread count.
//! Scale-out is by *sharding* ([`crate::sharded::ShardedServeEngine`]),
//! not by parallelising one batch — serve batches are far too small to
//! amortise fork/join. Inference cost is *modelled* (a deterministic
//! affine function of batch size in simulated time), so latency
//! telemetry is byte-stable across replays and across thread counts.
//!
//! Accounting invariant (asserted in tests): every submitted request is
//! answered by inference, answered stale, shed, or still queued —
//! `requests == answered + stale + shed + queue_depth`.

use std::collections::HashMap;

use qi_ml::InferScratch;
use qi_pfs::ids::AppId;
use qi_simkit::error::QiError;
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricId, MetricValue, MetricsSnapshot, Registry};

use crate::registry::ModelRegistry;

/// Modelled inference cost: fixed dispatch overhead per batch…
pub(crate) const INFER_BASE_US: u64 = 150;
/// …plus a per-sample cost. Batching amortises the base term — that is
/// the whole point of micro-batching, and the bench measures the real
/// (wall-clock) analogue of the same effect.
pub(crate) const INFER_PER_SAMPLE_US: u64 = 40;

/// What the service does when a request cannot be admitted (the token
/// bucket is empty or the queue is at capacity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Drop the request and count it; the caller gets no answer.
    /// Queue depth stays bounded by construction.
    Shed,
    /// Admit anyway: token debt delays the request's effective arrival
    /// (the caller waits for admission), and a full queue forces an
    /// immediate flush to make room. Latency absorbs the overload.
    Block,
    /// Answer immediately from the tenant's most recent prediction
    /// (class 0 — "no interference" — before any answer exists) without
    /// touching the queue or the model. Freshness absorbs the overload.
    DegradeToStale,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush when this many requests are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued request has waited this long.
    pub max_delay: SimDuration,
    /// Queue capacity; admission beyond it triggers the overload policy.
    pub queue_cap: usize,
    /// Optional token-bucket admission control `(rate_per_sec, burst)`.
    pub admission: Option<(f64, f64)>,
    /// What to do when admission fails.
    pub overload: OverloadPolicy,
    /// Tenants allowed to submit. Fixed up front so the per-tenant
    /// telemetry key set is stable across scenarios.
    pub tenants: Vec<AppId>,
    /// Worker threads for driving shards concurrently
    /// ([`crate::sharded::ShardedServeEngine`]); a plain [`ServeEngine`]
    /// accepts the knob for config compatibility but runs its fused
    /// forward pass inline — results are byte-identical either way.
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_delay: SimDuration::from_millis(200),
            queue_cap: 32,
            admission: None,
            overload: OverloadPolicy::Shed,
            tenants: Vec::new(),
            threads: None,
        }
    }
}

/// One prediction request: the feature block of one `(app, window)`
/// cell, as produced by `EmittedWindow::feature_blocks`.
#[derive(Clone, Debug)]
pub struct PredictRequest {
    /// The application the prediction is for.
    pub tenant: AppId,
    /// The monitor window the block describes.
    pub window: u64,
    /// Flattened `n_servers × n_features` feature block.
    pub block: Vec<f32>,
}

/// A completed prediction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The application the prediction is for.
    pub tenant: AppId,
    /// The monitor window it describes.
    pub window: u64,
    /// Predicted severity bin.
    pub class: usize,
    /// Time spent queued (effective arrival → flush).
    pub queued: SimDuration,
    /// Size of the batch this prediction was flushed in.
    pub batch: usize,
    /// Instant the answer became available (flush + modelled cost).
    pub done_at: SimTime,
    /// Registry version of the model that answered. Every prediction in
    /// one batch carries the same version — the hot-swap point flushes
    /// first, so a batch never mixes model versions.
    pub version: u64,
}

/// What happened to a request at submission time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Queued; its prediction arrives from a later flush.
    Enqueued,
    /// Answered immediately with a stale class (DegradeToStale).
    Stale(usize),
    /// Dropped (Shed); it will never be answered.
    Shed,
}

struct TenantIds {
    requests: MetricId,
    answered: MetricId,
    shed: MetricId,
}

struct QueuedRequest {
    req: PredictRequest,
    /// Effective arrival: submission time, pushed later by token debt
    /// under [`OverloadPolicy::Block`].
    arrival: SimTime,
}

/// The micro-batching prediction service.
pub struct ServeEngine {
    cfg: ServeConfig,
    registry: ModelRegistry,
    bucket: Option<TokenBucket>,
    pending: Vec<QueuedRequest>,
    /// Scratch for the fused forward pass; reused across every batch so
    /// the steady-state flush path allocates nothing.
    scratch: InferScratch,
    /// Stacked feature rows of the batch being flushed (reused).
    row_buf: Vec<f32>,
    /// Predicted classes of the batch being flushed (reused).
    class_buf: Vec<usize>,
    last_answer: HashMap<AppId, usize>,
    reg: Registry,
    m_requests: MetricId,
    m_answered: MetricId,
    m_stale: MetricId,
    m_shed: MetricId,
    m_blocked: MetricId,
    m_batches: MetricId,
    m_batch_size: MetricId,
    m_queue_depth: MetricId,
    m_queue_wait: MetricId,
    m_infer: MetricId,
    m_admission_wait: MetricId,
    tenant_ids: HashMap<AppId, TenantIds>,
}

impl ServeEngine {
    /// Build an engine over a registry. Fails on a nonsensical config
    /// (zero batch size, queue smaller than a batch, zero delay, bad
    /// admission parameters).
    pub fn new(cfg: ServeConfig, registry: ModelRegistry) -> Result<Self, QiError> {
        Self::validate_config(&cfg)?;
        let bucket = cfg
            .admission
            .map(|(rate, burst)| TokenBucket::new(rate, burst));

        let mut reg = Registry::new();
        let m_requests = reg.counter("serve.requests");
        let m_answered = reg.counter("serve.answered");
        let m_stale = reg.counter("serve.stale");
        let m_shed = reg.counter("serve.shed");
        let m_blocked = reg.counter("serve.blocked");
        let m_batches = reg.counter("serve.batches");
        let m_batch_size = reg.stats("serve.batch_size");
        let m_queue_depth = reg.stats("serve.queue_depth");
        let m_queue_wait = reg.histogram("serve.queue_wait_us", 0.0, 2_000_000.0, 40);
        let m_infer = reg.histogram("serve.infer_us", 0.0, 5_000.0, 50);
        let m_admission_wait = reg.histogram("serve.admission_wait_us", 0.0, 2_000_000.0, 40);
        let mut tenants = cfg.tenants.clone();
        tenants.sort_unstable_by_key(|a| a.0);
        tenants.dedup();
        let tenant_ids = tenants
            .iter()
            .map(|&t| {
                let ids = TenantIds {
                    requests: reg.counter(&format!("serve.tenant.app{}.requests", t.0)),
                    answered: reg.counter(&format!("serve.tenant.app{}.answered", t.0)),
                    shed: reg.counter(&format!("serve.tenant.app{}.shed", t.0)),
                };
                (t, ids)
            })
            .collect();

        Ok(ServeEngine {
            cfg,
            registry,
            bucket,
            pending: Vec::new(),
            scratch: InferScratch::new(),
            row_buf: Vec::new(),
            class_buf: Vec::new(),
            last_answer: HashMap::new(),
            reg,
            m_requests,
            m_answered,
            m_stale,
            m_shed,
            m_blocked,
            m_batches,
            m_batch_size,
            m_queue_depth,
            m_queue_wait,
            m_infer,
            m_admission_wait,
            tenant_ids,
        })
    }

    /// The config rules shared by every engine kind (single and
    /// sharded): a nonsensical config is refused up front.
    pub(crate) fn validate_config(cfg: &ServeConfig) -> Result<(), QiError> {
        if cfg.max_batch == 0 {
            return Err(QiError::Serve("max_batch must be at least 1".into()));
        }
        if cfg.queue_cap < cfg.max_batch {
            return Err(QiError::Serve(format!(
                "queue_cap {} smaller than max_batch {}",
                cfg.queue_cap, cfg.max_batch
            )));
        }
        if cfg.max_delay.as_nanos() == 0 {
            return Err(QiError::Serve("max_delay must be positive".into()));
        }
        if let Some((rate, burst)) = cfg.admission {
            if rate <= 0.0 || burst <= 0.0 {
                return Err(QiError::Serve(format!(
                    "admission rate/burst must be positive, got ({rate}, {burst})"
                )));
            }
        }
        Ok(())
    }

    /// The model registry (inspection).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Load a serialized model into the registry under `version`.
    pub fn load_model_text(&mut self, version: u64, text: &str) -> Result<(), QiError> {
        self.registry.load_text(version, text)
    }

    /// Hot-swap the active model. Pending requests are flushed first so
    /// the swap is atomic with respect to batches: no batch ever mixes
    /// model versions. Returns the flushed predictions.
    pub fn activate(&mut self, now: SimTime, version: u64) -> Result<Vec<Prediction>, QiError> {
        let flushed = self.flush(now)?;
        self.registry.activate(version)?;
        Ok(flushed)
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Submit one request at simulated instant `now` (non-decreasing
    /// across calls). Returns what happened to the request plus any
    /// predictions that completed as a side effect (delay-expired
    /// batches, a size-tripped flush, a forced flush under `Block`).
    pub fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        let shape = self.registry.expected_shape();
        let expected = shape.n_servers * shape.n_features;
        if req.block.len() != expected {
            return Err(QiError::Shape {
                what: "serve request block floats",
                expected,
                got: req.block.len(),
            });
        }
        if !self.tenant_ids.contains_key(&req.tenant) {
            return Err(QiError::Serve(format!(
                "unknown tenant app{} (not in ServeConfig::tenants)",
                req.tenant.0
            )));
        }

        // Delay-expired batches flush before the new arrival is judged.
        let mut completed = self.poll(now)?;

        self.reg.inc(self.m_requests);
        self.reg.inc(self.tenant_ids[&req.tenant].requests);

        // Admission control: a request costs one token. The bucket is
        // probed on a copy so a shed (or stale) request consumes nothing.
        let mut arrival = now;
        if let Some(bucket) = &self.bucket {
            let mut probe = bucket.clone();
            let grant = probe.earliest(now, 1.0);
            if grant > now {
                match self.cfg.overload {
                    OverloadPolicy::Shed => {
                        self.shed(req.tenant);
                        return Ok((Admission::Shed, completed));
                    }
                    OverloadPolicy::DegradeToStale => {
                        let class = self.stale_answer(req.tenant);
                        return Ok((Admission::Stale(class), completed));
                    }
                    OverloadPolicy::Block => {
                        // The caller waits for admission: the request's
                        // effective arrival is the grant instant.
                        self.bucket = Some(probe);
                        self.reg.inc(self.m_blocked);
                        self.reg.observe(
                            self.m_admission_wait,
                            grant.saturating_since(now).as_nanos() as f64 / 1_000.0,
                        );
                        arrival = grant;
                    }
                }
            } else {
                self.bucket = Some(probe);
                self.reg.observe(self.m_admission_wait, 0.0);
            }
        }

        // Bounded queue: a full queue is the other overload trigger.
        if self.pending.len() >= self.cfg.queue_cap {
            match self.cfg.overload {
                OverloadPolicy::Shed => {
                    self.shed(req.tenant);
                    return Ok((Admission::Shed, completed));
                }
                OverloadPolicy::DegradeToStale => {
                    let class = self.stale_answer(req.tenant);
                    return Ok((Admission::Stale(class), completed));
                }
                OverloadPolicy::Block => {
                    // Backpressure: drain the queue now to make room.
                    completed.extend(self.flush(now)?);
                }
            }
        }

        self.pending.push(QueuedRequest { req, arrival });
        self.reg
            .observe(self.m_queue_depth, self.pending.len() as f64);
        if self.pending.len() >= self.cfg.max_batch {
            completed.extend(self.flush(now)?);
        }
        Ok((Admission::Enqueued, completed))
    }

    /// Flush any batch whose delay threshold expired by `now`. Callers
    /// drive this from simulated time (e.g. once per emitted window).
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        let expired = self
            .pending
            .first()
            .is_some_and(|p| p.arrival + self.cfg.max_delay <= now);
        if expired {
            self.flush(now)
        } else {
            Ok(Vec::new())
        }
    }

    /// End of stream: flush whatever is queued.
    pub fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        self.flush(now)
    }

    /// Run one stacked forward pass over everything queued.
    fn flush(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let version = self
            .registry
            .active_version()
            .ok_or_else(|| QiError::Serve("no active model version".into()))?;
        let model = self.registry.active_model().expect("active version stored");
        let batch = std::mem::take(&mut self.pending);
        let k = batch.len();
        self.row_buf.clear();
        for p in &batch {
            self.row_buf.extend_from_slice(&p.req.block);
        }
        // Fused immutable forward: no Matrix clone, no per-layer
        // allocation — everything runs in the engine-owned scratch.
        model.predict_batch_into(&self.row_buf, k, &mut self.scratch, &mut self.class_buf);
        debug_assert_eq!(self.class_buf.len(), k);

        let cost = SimDuration::from_micros(INFER_BASE_US + INFER_PER_SAMPLE_US * k as u64);
        let done_at = now + cost;
        self.reg.inc(self.m_batches);
        self.reg.observe(self.m_batch_size, k as f64);
        self.reg
            .observe(self.m_infer, cost.as_nanos() as f64 / 1_000.0);
        let mut out = Vec::with_capacity(k);
        for (p, &class) in batch.into_iter().zip(&self.class_buf) {
            let queued = now.saturating_since(p.arrival);
            self.reg
                .observe(self.m_queue_wait, queued.as_nanos() as f64 / 1_000.0);
            self.reg.inc(self.m_answered);
            self.reg.inc(self.tenant_ids[&p.req.tenant].answered);
            self.last_answer.insert(p.req.tenant, class);
            out.push(Prediction {
                tenant: p.req.tenant,
                window: p.req.window,
                class,
                queued,
                batch: k,
                done_at,
                version,
            });
        }
        Ok(out)
    }

    fn shed(&mut self, tenant: AppId) {
        self.reg.inc(self.m_shed);
        self.reg.inc(self.tenant_ids[&tenant].shed);
    }

    fn stale_answer(&mut self, tenant: AppId) -> usize {
        self.reg.inc(self.m_stale);
        *self.last_answer.get(&tenant).unwrap_or(&0)
    }

    /// Serving telemetry: the engine's counters/histograms, the derived
    /// p50/p95/p99 latency gauges, and the registry state — every key
    /// present from construction, so key sets are stable.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.reg.snapshot();
        for name in ["serve.queue_wait_us", "serve.infer_us"] {
            let h = snap.histogram(name).expect("registered in new()").clone();
            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                snap.put(&format!("{name}.{tag}"), MetricValue::Gauge(h.quantile(q)));
            }
        }
        self.registry.metrics_into(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelRegistry;
    use qi_ml::data::Dataset;
    use qi_ml::train::{train, TrainConfig, TrainedModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SERVERS: usize = 3;
    const FEATS: usize = 4;

    fn model(seed: u64) -> TrainedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let pos = i % 2 == 0;
            let block: Vec<f32> = (0..SERVERS * FEATS)
                .map(|_| {
                    if pos {
                        rng.gen_range(1.0..2.0)
                    } else {
                        rng.gen_range(-2.0..-1.0)
                    }
                })
                .collect();
            samples.push(block);
            y.push(usize::from(pos));
        }
        let cfg = TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        };
        train(&Dataset::from_samples(samples, y, SERVERS), &cfg)
    }

    fn engine(cfg: ServeConfig) -> ServeEngine {
        let m = model(1);
        let mut reg = ModelRegistry::new(m.shape(), m.schema().clone());
        reg.insert(1, m).expect("load");
        reg.activate(1).expect("activate");
        ServeEngine::new(cfg, reg).expect("valid config")
    }

    fn req(tenant: u32, window: u64, hot: bool) -> PredictRequest {
        let v = if hot { 1.5 } else { -1.5 };
        PredictRequest {
            tenant: AppId(tenant),
            window,
            block: vec![v; SERVERS * FEATS],
        }
    }

    fn t_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn size_threshold_trips_a_batch() {
        let mut e = engine(ServeConfig {
            max_batch: 3,
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        let (_, c1) = e.submit(t_ms(0), req(0, 0, true)).unwrap();
        let (_, c2) = e.submit(t_ms(1), req(0, 1, false)).unwrap();
        assert!(c1.is_empty() && c2.is_empty());
        assert_eq!(e.queue_depth(), 2);
        let (_, c3) = e.submit(t_ms(2), req(0, 2, true)).unwrap();
        assert_eq!(c3.len(), 3, "size threshold flushed the batch");
        assert_eq!(e.queue_depth(), 0);
        assert!(c3.iter().all(|p| p.batch == 3));
        // Batched answers equal the per-sample model output.
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("serve.answered"), Some(3));
        assert_eq!(snap.counter("serve.batches"), Some(1));
    }

    #[test]
    fn delay_threshold_trips_via_poll() {
        let mut e = engine(ServeConfig {
            max_batch: 8,
            max_delay: SimDuration::from_millis(50),
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        e.submit(t_ms(0), req(0, 0, true)).unwrap();
        assert!(e.poll(t_ms(49)).unwrap().is_empty(), "not yet expired");
        let out = e.poll(t_ms(50)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].queued, SimDuration::from_millis(50));
        assert_eq!(out[0].done_at, t_ms(50) + SimDuration::from_micros(190));
    }

    #[test]
    fn batched_equals_unbatched_classes() {
        let mk = |max_batch| {
            let mut e = engine(ServeConfig {
                max_batch,
                tenants: vec![AppId(0)],
                ..ServeConfig::default()
            });
            let mut classes = Vec::new();
            for w in 0..10u64 {
                let (_, done) = e.submit(t_ms(w), req(0, w, w % 3 == 0)).unwrap();
                classes.extend(done.into_iter().map(|p| (p.window, p.class)));
            }
            classes.extend(
                e.finish(t_ms(10))
                    .unwrap()
                    .into_iter()
                    .map(|p| (p.window, p.class)),
            );
            classes.sort_unstable();
            classes
        };
        assert_eq!(mk(1), mk(8), "batching must not change predictions");
    }

    #[test]
    fn shed_policy_bounds_the_queue_and_counts_exactly() {
        let mut e = engine(ServeConfig {
            max_batch: 4,
            queue_cap: 4,
            admission: Some((10.0, 2.0)), // 2-token burst, 10/s refill
            overload: OverloadPolicy::Shed,
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        // 6 requests at the same instant: 2 admitted (burst), 4 shed.
        let mut shed = 0;
        let mut answered = 0;
        for w in 0..6u64 {
            let (adm, done) = e.submit(t_ms(0), req(0, w, true)).unwrap();
            if adm == Admission::Shed {
                shed += 1;
            }
            answered += done.len();
        }
        answered += e.finish(t_ms(1)).unwrap().len();
        assert_eq!(shed, 4);
        assert_eq!(answered, 2);
        assert!(e.queue_depth() <= 4);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("serve.shed"), Some(4));
        assert_eq!(snap.counter("serve.tenant.app0.shed"), Some(4));
        assert_eq!(
            snap.counter("serve.requests"),
            Some(snap.counter("serve.answered").unwrap() + snap.counter("serve.shed").unwrap())
        );
    }

    #[test]
    fn block_policy_delays_instead_of_dropping() {
        let mut e = engine(ServeConfig {
            max_batch: 2,
            admission: Some((10.0, 1.0)),
            overload: OverloadPolicy::Block,
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        let (a1, _) = e.submit(t_ms(0), req(0, 0, true)).unwrap();
        let (a2, done) = e.submit(t_ms(0), req(0, 1, true)).unwrap();
        assert_eq!(a1, Admission::Enqueued);
        assert_eq!(a2, Admission::Enqueued, "blocked, not shed");
        // Second request waited 100 ms for a token; flush at t=0 came
        // from the size threshold, so its queue wait saturates at zero.
        assert_eq!(done.len(), 2);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("serve.blocked"), Some(1));
        assert_eq!(snap.counter("serve.shed"), Some(0));
        assert_eq!(snap.counter("serve.answered"), Some(2));
    }

    #[test]
    fn degrade_to_stale_reuses_the_last_answer() {
        let mut e = engine(ServeConfig {
            max_batch: 1, // every request flushes immediately when admitted
            admission: Some((10.0, 1.0)),
            overload: OverloadPolicy::DegradeToStale,
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        let (a1, done) = e.submit(t_ms(0), req(0, 0, true)).unwrap();
        assert_eq!(a1, Admission::Enqueued);
        let fresh = done[0].class;
        let (a2, _) = e.submit(t_ms(0), req(0, 1, false)).unwrap();
        assert_eq!(a2, Admission::Stale(fresh), "last answer echoed");
        let snap = e.metrics_snapshot();
        assert_eq!(snap.counter("serve.stale"), Some(1));
    }

    #[test]
    fn hot_swap_flushes_between_batches() {
        let m2 = model(2);
        let mut e = engine(ServeConfig {
            max_batch: 8,
            tenants: vec![AppId(0)],
            ..ServeConfig::default()
        });
        // Queue two requests, then activate a new version: the queued
        // work must flush under the OLD version first.
        e.submit(t_ms(0), req(0, 0, true)).unwrap();
        e.submit(t_ms(1), req(0, 1, false)).unwrap();
        let mut reg_snap = MetricsSnapshot::new();
        e.registry().metrics_into(&mut reg_snap);
        assert_eq!(reg_snap.gauge("serve.registry.active_version"), Some(1.0));
        // (register v2 through the engine's registry access)
        let text = qi_ml::serialize::model_to_text(&m2);
        e.load_model_text(2, &text).unwrap();
        let flushed = e.activate(t_ms(2), 2).unwrap();
        assert_eq!(flushed.len(), 2, "pending work flushed before the swap");
        assert_eq!(e.registry().active_version(), Some(2));
    }

    #[test]
    fn config_and_request_validation() {
        let m = model(1);
        let shape = m.shape();
        let mk_reg = || {
            let mut r = ModelRegistry::new(shape, m.schema().clone());
            r.insert(1, model(1)).unwrap();
            r.activate(1).unwrap();
            r
        };
        assert!(ServeEngine::new(
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            mk_reg()
        )
        .is_err());
        assert!(ServeEngine::new(
            ServeConfig {
                max_batch: 8,
                queue_cap: 4,
                ..ServeConfig::default()
            },
            mk_reg()
        )
        .is_err());
        assert!(ServeEngine::new(
            ServeConfig {
                admission: Some((0.0, 5.0)),
                ..ServeConfig::default()
            },
            mk_reg()
        )
        .is_err());
        let mut e = ServeEngine::new(
            ServeConfig {
                tenants: vec![AppId(0)],
                ..ServeConfig::default()
            },
            mk_reg(),
        )
        .unwrap();
        // Wrong block shape.
        let bad = PredictRequest {
            tenant: AppId(0),
            window: 0,
            block: vec![0.0; 3],
        };
        assert!(matches!(e.submit(t_ms(0), bad), Err(QiError::Shape { .. })));
        // Unknown tenant.
        assert!(e.submit(t_ms(0), req(9, 0, true)).is_err());
        // No active model: flushing errors, but only when work exists.
        let mut r = ModelRegistry::new(shape, m.schema().clone());
        r.insert(1, model(1)).unwrap();
        let mut e2 = ServeEngine::new(
            ServeConfig {
                max_batch: 1,
                tenants: vec![AppId(0)],
                ..ServeConfig::default()
            },
            r,
        )
        .unwrap();
        assert!(e2.finish(t_ms(0)).unwrap().is_empty());
        assert!(e2.submit(t_ms(0), req(0, 0, true)).is_err());
    }

    #[test]
    fn telemetry_key_set_is_stable_and_quantiles_present() {
        let e = engine(ServeConfig {
            tenants: vec![AppId(0), AppId(3)],
            ..ServeConfig::default()
        });
        let snap = e.metrics_snapshot();
        for key in [
            "serve.requests",
            "serve.answered",
            "serve.stale",
            "serve.shed",
            "serve.blocked",
            "serve.batches",
            "serve.tenant.app0.requests",
            "serve.tenant.app3.shed",
            "serve.registry.models_loaded",
            "serve.registry.active_version",
        ] {
            assert!(snap.get(key).is_some(), "missing {key}");
        }
        assert_eq!(snap.gauge("serve.queue_wait_us.p50"), Some(0.0));
        assert_eq!(snap.gauge("serve.infer_us.p99"), Some(0.0));
        assert!(snap.histogram("serve.queue_wait_us").is_some());
    }

    #[test]
    fn replay_is_byte_identical() {
        let run = || {
            let mut e = engine(ServeConfig {
                max_batch: 4,
                admission: Some((100.0, 8.0)),
                tenants: vec![AppId(0), AppId(1)],
                ..ServeConfig::default()
            });
            for w in 0..20u64 {
                let _ = e.submit(t_ms(w * 10), req((w % 2) as u32, w, w % 3 == 0));
            }
            e.finish(t_ms(200)).unwrap();
            e.metrics_snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
