//! Tenant-sharded serving: N independent worker shards behind one
//! registry, byte-identical at ANY shard count and thread count.
//!
//! The scale-out story of the serving layer. One [`ServeEngine`] runs a
//! single micro-batch queue; past a few hundred thousand predictions
//! per second the engine — not the model — becomes the wall. A
//! [`ShardedServeEngine`] splits the work across `n_shards` worker
//! shards by **tenant hash** (FNV-1a of the application id, mod shard
//! count), each shard owning its own micro-batcher, scratch buffers,
//! token buckets, and statistics, all serving from a single shared
//! [`ModelRegistry`] through the fused immutable inference path
//! (`TrainedModel::predict_batch_into`, `&self` on the model — no
//! per-shard clones).
//!
//! ## The determinism argument
//!
//! The shard invariant carried from PRs 2/5/6: predicted classes and
//! the telemetry snapshot are **byte-identical at any shard count and
//! any thread count**. That holds because *no observable state lives at
//! shard granularity*:
//!
//! - every queue, token bucket, stale-answer cache, and statistic is
//!   owned by a per-tenant **lane**; a shard is nothing but the set of
//!   lanes the tenant hash assigns it, so reassigning lanes to a
//!   different number of shards moves ownership without touching any
//!   lane's request stream;
//! - batches never span tenants, so batch composition — sizes,
//!   classes, queue waits, modelled `done_at` instants — is a pure
//!   function of each tenant's own stream;
//! - shards share no mutable state (statistics are "lock-free" the
//!   honest way: exclusively owned, via disjoint `&mut`, not atomics),
//!   and the snapshot merges lane statistics in **ascending tenant
//!   order** — a fixed order, independent of shard assignment, which
//!   matters because [`OnlineStats::merge`] is order-sensitive in the
//!   last floating-point bits;
//! - the one shared resource, the registry, is read-only between
//!   hot-swap points, and [`ShardedServeEngine::activate`] flushes
//!   every lane *before* flipping the version, so no batch ever mixes
//!   model versions (each [`Prediction`] records the version that
//!   answered it, and the sharding test suite asserts the invariant).
//!
//! Two deliberate semantic differences from [`ServeEngine`], both
//! consequences of making state per-tenant: admission control applies
//! **per tenant** (`ServeConfig::admission` rates one bucket per lane,
//! where the single engine rates all tenants together), and
//! `queue_cap`/`max_batch`/`max_delay` bound each lane's queue rather
//! than one global queue. Per-tenant admission is what a multi-tenant
//! deployment wants anyway — one noisy tenant cannot starve the rest.
//!
//! ## Driving shards in parallel
//!
//! [`ShardedServeEngine::workers`] hands out one [`ShardWorker`] per
//! shard — disjoint `&mut` borrows over a shared `&ModelRegistry` —
//! so a caller can drive every shard from its own thread (the
//! throughput bench does exactly that). Because shards share nothing,
//! parallel and serial drives produce identical bytes.
//!
//! [`OnlineStats::merge`]: qi_simkit::stats::OnlineStats::merge

use std::collections::HashMap;

use qi_ml::train::TrainedModel;
use qi_ml::InferScratch;
use qi_pfs::ids::AppId;
use qi_simkit::error::QiError;
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::stats::{Histogram, OnlineStats};
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricValue, MetricsSnapshot};

use crate::engine::{
    Admission, OverloadPolicy, PredictRequest, Prediction, ServeConfig, ServeEngine, INFER_BASE_US,
    INFER_PER_SAMPLE_US,
};
use crate::registry::ModelRegistry;

/// Shard index for `tenant` at a given shard count: FNV-1a over the
/// little-endian application id, mod `n_shards`. Stable across
/// processes and platforms — the routing table is part of the
/// engine's observable contract (see the routing-stability test).
pub fn shard_of_tenant(tenant: AppId, n_shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in tenant.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    (h % n_shards as u64) as usize
}

/// One queued request (lane-local twin of the engine's queue entry).
struct LaneRequest {
    req: PredictRequest,
    arrival: SimTime,
}

/// Per-lane statistics: the same quantities the single engine keeps in
/// its telemetry registry, owned exclusively by the lane and merged in
/// ascending tenant order at snapshot time.
struct LaneStats {
    requests: u64,
    answered: u64,
    stale: u64,
    shed: u64,
    blocked: u64,
    batches: u64,
    batch_size: OnlineStats,
    queue_depth: OnlineStats,
    queue_wait: Histogram,
    infer: Histogram,
    admission_wait: Histogram,
}

impl LaneStats {
    /// Bucket layouts match the single engine's registrations exactly,
    /// so merged histograms are comparable across engine kinds.
    fn new() -> Self {
        LaneStats {
            requests: 0,
            answered: 0,
            stale: 0,
            shed: 0,
            blocked: 0,
            batches: 0,
            batch_size: OnlineStats::new(),
            queue_depth: OnlineStats::new(),
            queue_wait: Histogram::new(0.0, 2_000_000.0, 40),
            infer: Histogram::new(0.0, 5_000.0, 50),
            admission_wait: Histogram::new(0.0, 2_000_000.0, 40),
        }
    }
}

/// All serving state of one tenant. The unit of work ownership: a
/// shard is a set of lanes, and moving a lane between shards (by
/// changing the shard count) cannot change anything the lane computes.
struct Lane {
    tenant: AppId,
    pending: Vec<LaneRequest>,
    bucket: Option<TokenBucket>,
    /// Most recent answered class (0 before any answer), for
    /// [`OverloadPolicy::DegradeToStale`].
    last_answer: usize,
    stats: LaneStats,
}

/// One worker shard: the lanes the tenant hash assigned to it, plus
/// the shard-private inference scratch. Nothing in here is shared.
struct Shard {
    /// Lanes in ascending tenant order.
    lanes: Vec<Lane>,
    scratch: InferScratch,
    row_buf: Vec<f32>,
    class_buf: Vec<usize>,
}

/// `(version, model)` of the active registry entry, resolved once per
/// engine call. A free function so the borrow stays on the registry
/// field alone while shards are borrowed mutably.
fn active_of(registry: &ModelRegistry) -> Option<(u64, &TrainedModel)> {
    let v = registry.active_version()?;
    Some((v, registry.active_model()?))
}

impl Shard {
    fn new() -> Self {
        Shard {
            lanes: Vec::new(),
            scratch: InferScratch::new(),
            row_buf: Vec::new(),
            class_buf: Vec::new(),
        }
    }

    /// Position of `tenant`'s lane in this shard, if it routes here.
    fn lane_pos(&self, tenant: AppId) -> Option<usize> {
        self.lanes
            .binary_search_by_key(&tenant.0, |l| l.tenant.0)
            .ok()
    }

    /// Flush one lane's pending batch through the fused forward pass.
    fn flush_lane(
        &mut self,
        active: Option<(u64, &TrainedModel)>,
        lane_idx: usize,
        now: SimTime,
    ) -> Result<Vec<Prediction>, QiError> {
        let Shard {
            lanes,
            scratch,
            row_buf,
            class_buf,
        } = self;
        let lane = &mut lanes[lane_idx];
        if lane.pending.is_empty() {
            return Ok(Vec::new());
        }
        let (version, model) =
            active.ok_or_else(|| QiError::Serve("no active model version".into()))?;
        let batch = std::mem::take(&mut lane.pending);
        let k = batch.len();
        row_buf.clear();
        for p in &batch {
            row_buf.extend_from_slice(&p.req.block);
        }
        model.predict_batch_into(row_buf, k, scratch, class_buf);
        debug_assert_eq!(class_buf.len(), k);

        let cost = SimDuration::from_micros(INFER_BASE_US + INFER_PER_SAMPLE_US * k as u64);
        let done_at = now + cost;
        lane.stats.batches += 1;
        lane.stats.batch_size.push(k as f64);
        lane.stats.infer.record(cost.as_nanos() as f64 / 1_000.0);
        let mut out = Vec::with_capacity(k);
        for (p, &class) in batch.into_iter().zip(class_buf.iter()) {
            let queued = now.saturating_since(p.arrival);
            lane.stats
                .queue_wait
                .record(queued.as_nanos() as f64 / 1_000.0);
            lane.stats.answered += 1;
            lane.last_answer = class;
            out.push(Prediction {
                tenant: p.req.tenant,
                window: p.req.window,
                class,
                queued,
                batch: k,
                done_at,
                version,
            });
        }
        Ok(out)
    }

    /// Flush the lane if its oldest request's delay threshold expired.
    fn poll_lane(
        &mut self,
        cfg: &ServeConfig,
        active: Option<(u64, &TrainedModel)>,
        lane_idx: usize,
        now: SimTime,
    ) -> Result<Vec<Prediction>, QiError> {
        let expired = self.lanes[lane_idx]
            .pending
            .first()
            .is_some_and(|p| p.arrival + cfg.max_delay <= now);
        if expired {
            self.flush_lane(active, lane_idx, now)
        } else {
            Ok(Vec::new())
        }
    }

    /// The lane-local submission path: the same admission/overload
    /// state machine as [`ServeEngine::submit`], applied to one
    /// tenant's own queue and bucket.
    fn submit(
        &mut self,
        cfg: &ServeConfig,
        active: Option<(u64, &TrainedModel)>,
        lane_idx: usize,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        let mut completed = self.poll_lane(cfg, active, lane_idx, now)?;

        let lane = &mut self.lanes[lane_idx];
        lane.stats.requests += 1;

        // Admission: one token per request, probed on a copy so a shed
        // or stale request consumes nothing from the lane's bucket.
        let mut arrival = now;
        if let Some(bucket) = &lane.bucket {
            let mut probe = bucket.clone();
            let grant = probe.earliest(now, 1.0);
            if grant > now {
                match cfg.overload {
                    OverloadPolicy::Shed => {
                        lane.stats.shed += 1;
                        return Ok((Admission::Shed, completed));
                    }
                    OverloadPolicy::DegradeToStale => {
                        lane.stats.stale += 1;
                        return Ok((Admission::Stale(lane.last_answer), completed));
                    }
                    OverloadPolicy::Block => {
                        lane.bucket = Some(probe);
                        lane.stats.blocked += 1;
                        lane.stats
                            .admission_wait
                            .record(grant.saturating_since(now).as_nanos() as f64 / 1_000.0);
                        arrival = grant;
                    }
                }
            } else {
                lane.bucket = Some(probe);
                lane.stats.admission_wait.record(0.0);
            }
        }

        // Bounded lane queue: the other overload trigger.
        if lane.pending.len() >= cfg.queue_cap {
            match cfg.overload {
                OverloadPolicy::Shed => {
                    lane.stats.shed += 1;
                    return Ok((Admission::Shed, completed));
                }
                OverloadPolicy::DegradeToStale => {
                    lane.stats.stale += 1;
                    return Ok((Admission::Stale(lane.last_answer), completed));
                }
                OverloadPolicy::Block => {
                    completed.extend(self.flush_lane(active, lane_idx, now)?);
                }
            }
        }

        let lane = &mut self.lanes[lane_idx];
        lane.pending.push(LaneRequest { req, arrival });
        lane.stats.queue_depth.push(lane.pending.len() as f64);
        if lane.pending.len() >= cfg.max_batch {
            completed.extend(self.flush_lane(active, lane_idx, now)?);
        }
        Ok((Admission::Enqueued, completed))
    }
}

/// The tenant-sharded prediction service. See the module docs for the
/// routing and determinism story; the public surface mirrors
/// [`ServeEngine`] so the two are drop-in interchangeable behind
/// [`crate::driver::PredictService`].
pub struct ShardedServeEngine {
    cfg: ServeConfig,
    registry: ModelRegistry,
    shards: Vec<Shard>,
    /// tenant → (shard index, lane position within the shard).
    route: HashMap<AppId, (usize, usize)>,
    /// All lanes in ascending tenant order, as (shard, lane) pairs —
    /// the one true iteration order for drains and stat merges.
    order: Vec<(usize, usize)>,
}

impl ShardedServeEngine {
    /// Build a sharded engine over a shared registry. Validates the
    /// same config rules as [`ServeEngine::new`], plus `n_shards >= 1`.
    pub fn new(
        cfg: ServeConfig,
        registry: ModelRegistry,
        n_shards: usize,
    ) -> Result<Self, QiError> {
        if n_shards == 0 {
            return Err(QiError::Serve("n_shards must be at least 1".into()));
        }
        // Reuse the single engine's config validation verbatim.
        ServeEngine::validate_config(&cfg)?;

        let mut tenants = cfg.tenants.clone();
        tenants.sort_unstable_by_key(|a| a.0);
        tenants.dedup();

        let mut shards: Vec<Shard> = (0..n_shards).map(|_| Shard::new()).collect();
        let mut route = HashMap::new();
        let mut order = Vec::with_capacity(tenants.len());
        for &t in &tenants {
            let s = shard_of_tenant(t, n_shards);
            let lane_idx = shards[s].lanes.len();
            shards[s].lanes.push(Lane {
                tenant: t,
                pending: Vec::new(),
                bucket: cfg
                    .admission
                    .map(|(rate, burst)| TokenBucket::new(rate, burst)),
                last_answer: 0,
                stats: LaneStats::new(),
            });
            route.insert(t, (s, lane_idx));
            order.push((s, lane_idx));
        }

        Ok(ShardedServeEngine {
            cfg,
            registry,
            shards,
            route,
            order,
        })
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `tenant` routes to (`None` for unknown tenants).
    pub fn shard_of(&self, tenant: AppId) -> Option<usize> {
        self.route.get(&tenant).map(|&(s, _)| s)
    }

    /// The shared model registry (inspection).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Load a serialized model into the registry under `version`.
    pub fn load_model_text(&mut self, version: u64, text: &str) -> Result<(), QiError> {
        self.registry.load_text(version, text)
    }

    /// Requests currently queued, across every lane.
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.lanes.iter())
            .map(|l| l.pending.len())
            .sum()
    }

    /// Submit one request: route to its tenant's lane and run the
    /// lane-local admission path. Only the owning shard is touched.
    pub fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        let shape = self.registry.expected_shape();
        let expected = shape.n_servers * shape.n_features;
        if req.block.len() != expected {
            return Err(QiError::Shape {
                what: "serve request block floats",
                expected,
                got: req.block.len(),
            });
        }
        let Some(&(s, l)) = self.route.get(&req.tenant) else {
            return Err(QiError::Serve(format!(
                "unknown tenant app{} (not in ServeConfig::tenants)",
                req.tenant.0
            )));
        };
        let active = active_of(&self.registry);
        self.shards[s].submit(&self.cfg, active, l, now, req)
    }

    /// Flush every lane whose delay threshold expired, in ascending
    /// tenant order.
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        let active = active_of(&self.registry);
        let mut out = Vec::new();
        for &(s, l) in &self.order {
            out.extend(self.shards[s].poll_lane(&self.cfg, active, l, now)?);
        }
        Ok(out)
    }

    /// End of stream: flush everything queued, in ascending tenant
    /// order.
    pub fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        let active = active_of(&self.registry);
        let mut out = Vec::new();
        for &(s, l) in &self.order {
            out.extend(self.shards[s].flush_lane(active, l, now)?);
        }
        Ok(out)
    }

    /// Hot-swap the active model. Every shard's pending work flushes
    /// under the OLD version before the flip, so no batch — on any
    /// shard — ever mixes model versions. Returns the flushed
    /// predictions (each stamped with the pre-swap version).
    pub fn activate(&mut self, now: SimTime, version: u64) -> Result<Vec<Prediction>, QiError> {
        let flushed = self.finish(now)?;
        self.registry.activate(version)?;
        Ok(flushed)
    }

    /// One worker per shard: disjoint `&mut` shard borrows over the
    /// shared registry, for driving shards from parallel threads. The
    /// borrows end when the workers drop; statistics land in the lanes
    /// either way, so a parallel drive snapshots identically to a
    /// serial one.
    pub fn workers(&mut self) -> Vec<ShardWorker<'_>> {
        let cfg = &self.cfg;
        let registry = &self.registry;
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(index, shard)| ShardWorker {
                cfg,
                registry,
                shard,
                index,
            })
            .collect()
    }

    /// Serving telemetry, merged from every lane in ascending tenant
    /// order: the same key set as [`ServeEngine::metrics_snapshot`]
    /// (aggregate counters, batch/queue statistics, latency histograms
    /// with p50/p95/p99 gauges, per-tenant counters, registry state) —
    /// and NO shard-count-dependent key, which is precisely what makes
    /// the snapshot byte-identical at any shard count.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let mut requests = 0u64;
        let mut answered = 0u64;
        let mut stale = 0u64;
        let mut shed = 0u64;
        let mut blocked = 0u64;
        let mut batches = 0u64;
        let mut batch_size = OnlineStats::new();
        let mut queue_depth = OnlineStats::new();
        let mut queue_wait = Histogram::new(0.0, 2_000_000.0, 40);
        let mut infer = Histogram::new(0.0, 5_000.0, 50);
        let mut admission_wait = Histogram::new(0.0, 2_000_000.0, 40);
        for &(s, l) in &self.order {
            let lane = &self.shards[s].lanes[l];
            let st = &lane.stats;
            requests += st.requests;
            answered += st.answered;
            stale += st.stale;
            shed += st.shed;
            blocked += st.blocked;
            batches += st.batches;
            batch_size.merge(&st.batch_size);
            queue_depth.merge(&st.queue_depth);
            queue_wait.merge(&st.queue_wait);
            infer.merge(&st.infer);
            admission_wait.merge(&st.admission_wait);
            let t = lane.tenant.0;
            snap.put(
                &format!("serve.tenant.app{t}.requests"),
                MetricValue::Counter(st.requests),
            );
            snap.put(
                &format!("serve.tenant.app{t}.answered"),
                MetricValue::Counter(st.answered),
            );
            snap.put(
                &format!("serve.tenant.app{t}.shed"),
                MetricValue::Counter(st.shed),
            );
        }
        snap.put("serve.requests", MetricValue::Counter(requests));
        snap.put("serve.answered", MetricValue::Counter(answered));
        snap.put("serve.stale", MetricValue::Counter(stale));
        snap.put("serve.shed", MetricValue::Counter(shed));
        snap.put("serve.blocked", MetricValue::Counter(blocked));
        snap.put("serve.batches", MetricValue::Counter(batches));
        snap.put("serve.batch_size", MetricValue::Stats(batch_size));
        snap.put("serve.queue_depth", MetricValue::Stats(queue_depth));
        for (name, h) in [
            ("serve.queue_wait_us", &queue_wait),
            ("serve.infer_us", &infer),
        ] {
            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                snap.put(&format!("{name}.{tag}"), MetricValue::Gauge(h.quantile(q)));
            }
        }
        snap.put("serve.queue_wait_us", MetricValue::Histogram(queue_wait));
        snap.put("serve.infer_us", MetricValue::Histogram(infer));
        snap.put(
            "serve.admission_wait_us",
            MetricValue::Histogram(admission_wait),
        );
        self.registry.metrics_into(&mut snap);
        snap
    }
}

/// Exclusive handle to one shard, over the shared registry. Obtained
/// from [`ShardedServeEngine::workers`]; each worker can be driven
/// from its own thread because workers share no mutable state.
pub struct ShardWorker<'a> {
    cfg: &'a ServeConfig,
    registry: &'a ModelRegistry,
    shard: &'a mut Shard,
    index: usize,
}

impl ShardWorker<'_> {
    /// This worker's shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Does `tenant` route to this shard?
    pub fn owns(&self, tenant: AppId) -> bool {
        self.shard.lane_pos(tenant).is_some()
    }

    /// Submit a request for a tenant this shard owns.
    pub fn submit(
        &mut self,
        now: SimTime,
        req: PredictRequest,
    ) -> Result<(Admission, Vec<Prediction>), QiError> {
        let shape = self.registry.expected_shape();
        let expected = shape.n_servers * shape.n_features;
        if req.block.len() != expected {
            return Err(QiError::Shape {
                what: "serve request block floats",
                expected,
                got: req.block.len(),
            });
        }
        let Some(lane) = self.shard.lane_pos(req.tenant) else {
            return Err(QiError::Serve(format!(
                "tenant app{} does not route to shard {}",
                req.tenant.0, self.index
            )));
        };
        let active = active_of(self.registry);
        self.shard.submit(self.cfg, active, lane, now, req)
    }

    /// Flush this shard's expired lanes (ascending tenant order).
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        let active = active_of(self.registry);
        let mut out = Vec::new();
        for l in 0..self.shard.lanes.len() {
            out.extend(self.shard.poll_lane(self.cfg, active, l, now)?);
        }
        Ok(out)
    }

    /// Flush everything queued on this shard (ascending tenant order).
    pub fn finish(&mut self, now: SimTime) -> Result<Vec<Prediction>, QiError> {
        let active = active_of(self.registry);
        let mut out = Vec::new();
        for l in 0..self.shard.lanes.len() {
            out.extend(self.shard.flush_lane(active, l, now)?);
        }
        Ok(out)
    }
}
