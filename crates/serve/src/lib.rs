//! # qi-serve
//!
//! The online half of the paper's two-phase framework (Fig. 2, §III-C):
//! train offline, then *predict at runtime, per time window, while the
//! applications run*. This crate turns a [`qi_ml::train::TrainedModel`]
//! into a production-style prediction service with the machinery a real
//! deployment needs — and keeps every bit of it deterministic, because
//! it is driven entirely from **simulated time**:
//!
//! - [`registry`] — a versioned model registry over `qi_ml::serialize`:
//!   load/validate/activate `QIMODEL` files by version, hot-swap the
//!   active model between batches, reject models whose shape or embedded
//!   [`qi_monitor::FeatureSchema`] does not match the monitor's feature
//!   layout.
//! - [`engine`] — a micro-batching inference engine: prediction requests
//!   (one per emitted `(app, window)` cell) accumulate in a bounded
//!   queue and are flushed as a single stacked forward pass when either
//!   the batch-size or the batch-delay threshold trips, with token-bucket
//!   admission control and an explicit overload policy
//!   ([`engine::OverloadPolicy`]: shed, block, or degrade to stale
//!   answers) so the service degrades gracefully instead of growing
//!   unbounded queues.
//! - [`driver`] — replays a finished [`qi_pfs::ops::RunTrace`] through
//!   the [`qi_monitor::FeaturePipeline`] and the engine in event-time
//!   order, the deterministic stand-in for a live metric stream. The
//!   pipeline configuration is derived from the registry's expected
//!   schema, so replay and validation can never disagree.
//!
//! Determinism argument: no wall clock is ever read — arrival times,
//! batch-delay deadlines, admission grants, and the modelled inference
//! cost are all [`qi_simkit::time::SimTime`] arithmetic; the batched
//! forward pass runs on the PR-2 work-stealing pool whose kernels are
//! bit-identical to sequential execution at any thread count; and the
//! serving telemetry ([`qi_telemetry`]) registers every key up front so
//! snapshot key sets are stable across scenarios. Identical inputs
//! therefore produce byte-identical outputs and telemetry, replay after
//! replay, at 1, 2, or 8 worker threads.

#![forbid(unsafe_code)]

pub mod driver;
pub mod engine;
pub mod registry;

pub use driver::{replay_trace, ReplaySummary};
pub use engine::{Admission, OverloadPolicy, PredictRequest, Prediction, ServeConfig, ServeEngine};
pub use registry::ModelRegistry;
