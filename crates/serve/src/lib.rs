//! # qi-serve
//!
//! The online half of the paper's two-phase framework (Fig. 2, §III-C):
//! train offline, then *predict at runtime, per time window, while the
//! applications run*. This crate turns a [`qi_ml::train::TrainedModel`]
//! into a production-style prediction service with the machinery a real
//! deployment needs — and keeps every bit of it deterministic, because
//! it is driven entirely from **simulated time**:
//!
//! - [`registry`] — a versioned model registry over `qi_ml::serialize`:
//!   load/validate/activate `QIMODEL` files by version, hot-swap the
//!   active model between batches, reject models whose shape or embedded
//!   [`qi_monitor::FeatureSchema`] does not match the monitor's feature
//!   layout.
//! - [`engine`] — a micro-batching inference engine: prediction requests
//!   (one per emitted `(app, window)` cell) accumulate in a bounded
//!   queue and are flushed as a single stacked forward pass when either
//!   the batch-size or the batch-delay threshold trips, with token-bucket
//!   admission control and an explicit overload policy
//!   ([`engine::OverloadPolicy`]: shed, block, or degrade to stale
//!   answers) so the service degrades gracefully instead of growing
//!   unbounded queues.
//! - [`sharded`] — the scale-out engine: N independent worker shards
//!   routed by tenant hash, each owning its own micro-batcher, token
//!   buckets, scratch buffers, and statistics, all serving from ONE
//!   shared registry through the fused immutable inference path. Per
//!   the module's determinism argument, predicted classes and telemetry
//!   snapshots are byte-identical at any shard count and thread count.
//! - [`driver`] — replays a finished [`qi_pfs::ops::RunTrace`] through
//!   the [`qi_monitor::FeaturePipeline`] and any [`PredictService`]
//!   (single or sharded engine) in event-time order, the deterministic
//!   stand-in for a live metric stream. The pipeline configuration is
//!   derived from the registry's expected schema, so replay and
//!   validation can never disagree.
//!
//! Determinism argument: no wall clock is ever read — arrival times,
//! batch-delay deadlines, admission grants, and the modelled inference
//! cost are all [`qi_simkit::time::SimTime`] arithmetic; the batched
//! forward pass runs through `qi_ml`'s fused immutable kernels, which
//! are bit-identical to the training-path forward (proven by property
//! tests) and identical at any shard or thread count; and the serving
//! telemetry ([`qi_telemetry`]) registers every key up front so
//! snapshot key sets are stable across scenarios. Identical inputs
//! therefore produce byte-identical outputs and telemetry, replay after
//! replay, at 1, 2, or 8 worker threads and 1..N shards.

#![forbid(unsafe_code)]

pub mod driver;
pub mod engine;
pub mod registry;
pub mod sharded;

pub use driver::{replay_trace, PredictService, ReplaySummary};
pub use engine::{Admission, OverloadPolicy, PredictRequest, Prediction, ServeConfig, ServeEngine};
pub use registry::ModelRegistry;
pub use sharded::{shard_of_tenant, ShardWorker, ShardedServeEngine};
