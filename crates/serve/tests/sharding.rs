//! Cross-shard-count / cross-thread-count byte-equality suite.
//!
//! The tentpole invariant of the sharded serving layer: predicted
//! classes and telemetry snapshots are **byte-identical at any shard
//! count and any thread count**. These tests drive the same request
//! stream through `ShardedServeEngine` at 1/2/4/8 shards (serially)
//! and through parallel `ShardWorker` drives on 1/2/8-thread rayon
//! pools, and require exact `Prediction` equality plus byte-equal
//! telemetry JSON. A routing-stability test pins the FNV-1a tenant
//! hash (the routing table is part of the engine's observable
//! contract), and a hot-swap test proves no batch mixes model
//! versions.

use qi_ml::data::Dataset;
use qi_ml::serialize::model_to_text;
use qi_ml::train::{train, TrainConfig, TrainedModel};
use qi_pfs::ids::AppId;
use qi_serve::{
    shard_of_tenant, ModelRegistry, OverloadPolicy, PredictRequest, Prediction, ServeConfig,
    ShardedServeEngine,
};
use qi_simkit::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SERVERS: usize = 3;
const FEATS: usize = 5;

/// Small two-class model over hand-built blocks (same recipe as the
/// registry unit tests): positive blocks in `1.0..2.0`, negative in
/// `-2.0..-1.0`, so held-out blocks from either band classify cleanly.
fn trained(seed: u64) -> TrainedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    let mut y = Vec::new();
    for i in 0..80 {
        let pos = i % 2 == 0;
        let block: Vec<f32> = (0..SERVERS * FEATS)
            .map(|_| {
                if pos {
                    rng.gen_range(1.0..2.0)
                } else {
                    rng.gen_range(-2.0..-1.0)
                }
            })
            .collect();
        samples.push(block);
        y.push(usize::from(pos));
    }
    let data = Dataset::from_samples(samples, y, SERVERS);
    let cfg = TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    };
    train(&data, &cfg)
}

fn tenants() -> Vec<AppId> {
    [1u32, 2, 3, 5, 8, 13].map(AppId).to_vec()
}

/// A deterministic multi-tenant request stream: `n` requests round-
/// robined over the tenants, arrivals 1 ms apart, blocks drawn from
/// the model's own training bands so classes are meaningful.
fn stream(n: usize, seed: u64) -> Vec<(SimTime, PredictRequest)> {
    let ts = tenants();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let tenant = ts[i % ts.len()];
            let pos = rng.gen_bool(0.5);
            let block: Vec<f32> = (0..SERVERS * FEATS)
                .map(|_| {
                    if pos {
                        rng.gen_range(1.0..2.0)
                    } else {
                        rng.gen_range(-2.0..-1.0)
                    }
                })
                .collect();
            let now = SimTime(i as u64 * 1_000_000);
            let req = PredictRequest {
                tenant,
                window: (i / ts.len()) as u64,
                block,
            };
            (now, req)
        })
        .collect()
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        max_delay: SimDuration::from_millis(10),
        queue_cap: 16,
        admission: Some((2_000.0, 4.0)),
        overload: OverloadPolicy::DegradeToStale,
        tenants: tenants(),
        threads: None,
    }
}

fn engine(n_shards: usize) -> ShardedServeEngine {
    let model = trained(7);
    let mut reg = ModelRegistry::new(model.shape(), model.schema().clone());
    reg.load_text(1, &model_to_text(&model)).expect("v1 loads");
    reg.activate(1).expect("v1 activates");
    let mut eng = ShardedServeEngine::new(serve_cfg(), reg, n_shards).expect("engine builds");
    // Register v2 up front so every engine's registry telemetry agrees.
    let v2 = model_to_text(&trained(8));
    eng.load_model_text(2, &v2).expect("v2 loads");
    eng
}

/// Serial drive: submit the whole stream, polling as time advances,
/// then finish. Returns every prediction plus the telemetry JSON.
fn drive_serial(
    eng: &mut ShardedServeEngine,
    reqs: &[(SimTime, PredictRequest)],
) -> Vec<Prediction> {
    let mut out = Vec::new();
    for (now, req) in reqs {
        out.extend(eng.poll(*now).expect("poll"));
        let (_adm, done) = eng.submit(*now, req.clone()).expect("submit");
        out.extend(done);
    }
    let end = reqs.last().map_or(SimTime(0), |(t, _)| *t) + SimDuration::from_millis(50);
    out.extend(eng.finish(end).expect("finish"));
    out
}

/// Sort key making prediction lists comparable across drive orders:
/// within one tenant the order is already identical, so (tenant,
/// done_at, window) is a total order for deduped streams.
fn sorted(mut preds: Vec<Prediction>) -> Vec<Prediction> {
    preds.sort_by_key(|p| (p.tenant.0, p.done_at, p.window));
    preds
}

#[test]
fn classes_and_telemetry_identical_across_shard_counts() {
    let reqs = stream(240, 11);
    let mut eng1 = engine(1);
    let base_preds = sorted(drive_serial(&mut eng1, &reqs));
    let base_json = eng1.metrics_snapshot().to_json();
    assert!(
        !base_preds.is_empty(),
        "stream must produce predictions for the comparison to mean anything"
    );
    for n_shards in [2usize, 4, 8] {
        let mut eng = engine(n_shards);
        let preds = sorted(drive_serial(&mut eng, &reqs));
        assert_eq!(
            preds, base_preds,
            "predictions diverged at {n_shards} shards"
        );
        let json = eng.metrics_snapshot().to_json();
        assert_eq!(
            json, base_json,
            "telemetry bytes diverged at {n_shards} shards"
        );
    }
}

#[test]
fn parallel_worker_drive_matches_serial_at_any_thread_count() {
    let reqs = stream(240, 11);
    let mut serial_eng = engine(4);
    let serial_preds = sorted(drive_serial(&mut serial_eng, &reqs));
    let serial_json = serial_eng.metrics_snapshot().to_json();

    for threads in [1usize, 2, 8] {
        let mut eng = engine(4);
        // Every worker walks the SAME global event schedule — polling
        // its lanes at every instant, submitting only requests it owns
        // — because flush timing is a function of when poll runs, and
        // the serial drive polls every lane at every event time.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let end = reqs.last().map_or(SimTime(0), |(t, _)| *t) + SimDuration::from_millis(50);
        let mut workers = eng.workers();
        let shard_outs: Vec<Vec<Prediction>> = pool.install(|| {
            use rayon::prelude::*;
            workers
                .par_iter_mut()
                .map(|w| {
                    let mut out = Vec::new();
                    for (now, req) in &reqs {
                        out.extend(w.poll(*now).expect("poll"));
                        if w.owns(req.tenant) {
                            let (_adm, done) = w.submit(*now, req.clone()).expect("submit");
                            out.extend(done);
                        }
                    }
                    out.extend(w.finish(end).expect("finish"));
                    out
                })
                .collect()
        });
        drop(workers);
        let preds = sorted(shard_outs.into_iter().flatten().collect());
        assert_eq!(
            preds, serial_preds,
            "parallel drive diverged at {threads} threads"
        );
        let json = eng.metrics_snapshot().to_json();
        assert_eq!(
            json, serial_json,
            "telemetry bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn tenant_hash_routing_is_stable() {
    // Pinned FNV-1a(LE id) mod n literals: changing the hash silently
    // re-shards every deployment, so the table is contract, not detail.
    let expect = [
        (1u32, [0usize, 0, 4]),
        (2, [1, 3, 7]),
        (3, [0, 2, 6]),
        (5, [0, 0, 0]),
        (8, [1, 1, 5]),
        (13, [0, 0, 0]),
        (21, [0, 0, 0]),
        (42, [1, 3, 7]),
        (1000, [0, 0, 4]),
    ];
    for (id, by_count) in expect {
        assert_eq!(shard_of_tenant(AppId(id), 1), 0);
        for (i, n) in [2usize, 4, 8].into_iter().enumerate() {
            assert_eq!(
                shard_of_tenant(AppId(id), n),
                by_count[i],
                "app{id} at {n} shards"
            );
        }
    }
    // The engine's own routing agrees with the public function.
    let eng = engine(4);
    for t in tenants() {
        assert_eq!(eng.shard_of(t), Some(shard_of_tenant(t, 4)));
    }
    assert_eq!(eng.shard_of(AppId(999)), None, "unknown tenant");
}

#[test]
fn hot_swap_flushes_every_shard_and_never_mixes_versions() {
    let reqs = stream(240, 13);
    let mut eng = engine(4);
    let mut preds = Vec::new();
    let mut swapped = false;
    for (i, (now, req)) in reqs.iter().enumerate() {
        preds.extend(eng.poll(*now).expect("poll"));
        if i == reqs.len() / 2 {
            // Mid-stream hot swap: queued work flushes under v1 first.
            let flushed = eng.activate(*now, 2).expect("swap to v2");
            assert!(
                flushed.iter().all(|p| p.version == 1),
                "pre-swap flush must be answered by the old version"
            );
            preds.extend(flushed);
            swapped = true;
            assert_eq!(eng.queue_depth(), 0, "swap point leaves nothing queued");
        }
        let (_adm, done) = eng.submit(*now, req.clone()).expect("submit");
        preds.extend(done);
    }
    let end = reqs.last().unwrap().0 + SimDuration::from_millis(50);
    preds.extend(eng.finish(end).expect("finish"));
    assert!(swapped);

    // Both versions answered, and no batch mixes them: batch-mates
    // share (tenant, done_at), so every such group is version-uniform.
    assert!(preds.iter().any(|p| p.version == 1), "v1 answered early");
    assert!(preds.iter().any(|p| p.version == 2), "v2 answered late");
    use std::collections::HashMap;
    let mut groups: HashMap<(u32, SimTime), Vec<u64>> = HashMap::new();
    for p in &preds {
        groups
            .entry((p.tenant.0, p.done_at))
            .or_default()
            .push(p.version);
    }
    for ((tenant, done_at), versions) in groups {
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "batch for app{tenant} at {done_at:?} mixed versions {versions:?}"
        );
    }
}

#[test]
fn unknown_tenant_and_wrong_shape_are_rejected() {
    let mut eng = engine(2);
    let bad_tenant = PredictRequest {
        tenant: AppId(999),
        window: 0,
        block: vec![0.0; SERVERS * FEATS],
    };
    let err = eng
        .submit(SimTime(0), bad_tenant)
        .expect_err("unknown tenant");
    assert!(err.to_string().contains("unknown tenant"), "{err}");
    let bad_shape = PredictRequest {
        tenant: AppId(1),
        window: 0,
        block: vec![0.0; 3],
    };
    let err = eng.submit(SimTime(0), bad_shape).expect_err("wrong shape");
    assert!(err.to_string().contains("serve request block"), "{err}");
    // Worker-level routing: a worker refuses tenants it does not own.
    let t = tenants()[0];
    let owner = eng.shard_of(t).expect("known tenant");
    let mut workers = eng.workers();
    let other = (owner + 1) % 2;
    let req = PredictRequest {
        tenant: t,
        window: 0,
        block: vec![1.5; SERVERS * FEATS],
    };
    let err = workers[other]
        .submit(SimTime(0), req.clone())
        .expect_err("wrong shard");
    assert!(err.to_string().contains("does not route"), "{err}");
    assert!(workers[owner].owns(t));
    workers[owner].submit(SimTime(0), req).expect("right shard");
}
