//! Shared experiment harnesses: one function per paper table/figure.
//! The `qi-bench` targets are thin wrappers around these, so integration
//! tests and examples can reuse the exact same code paths.

use rayon::prelude::*;

use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_simkit::stats::moving_average;
use qi_simkit::table::{fmt_f64, AsciiTable};
use qi_simkit::time::SimDuration;
use qi_workloads::registry::WorkloadKind;

use crate::scenario::{completion_slowdown, InterferenceSpec, Scenario};

/// Configuration for the Table I slowdown matrix.
#[derive(Clone, Debug)]
pub struct TableOneConfig {
    /// Concurrent interference instances (paper: 3).
    pub instances: u32,
    /// Ranks per target application.
    pub target_ranks: u32,
    /// Ranks per interference instance.
    pub noise_ranks: u32,
    /// Seeds; the reported slowdown is the mean over seeds (paper
    /// averages 3 consecutive runs).
    pub seeds: Vec<u64>,
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Use reduced-scale workloads.
    pub small: bool,
    /// Steady-state warmup before the target starts.
    pub warmup: SimDuration,
    /// Per-run deadline.
    pub deadline: SimDuration,
}

impl TableOneConfig {
    /// Paper-shaped configuration on the default 11-node cluster.
    pub fn paper() -> Self {
        TableOneConfig {
            instances: 3,
            target_ranks: 4,
            noise_ranks: 2,
            seeds: vec![1, 2, 3],
            cluster: ClusterConfig::default(),
            small: false,
            warmup: SimDuration::from_secs(6),
            deadline: SimDuration::from_secs(3600),
        }
    }

    /// Fast variant for tests.
    pub fn smoke() -> Self {
        TableOneConfig {
            instances: 2,
            target_ranks: 2,
            noise_ranks: 2,
            seeds: vec![1],
            cluster: ClusterConfig::small(),
            small: true,
            warmup: SimDuration::from_secs(3),
            deadline: SimDuration::from_secs(1800),
        }
    }
}

/// The 7×7 slowdown matrix (rows: measured task; columns: background
/// task), plus per-task baseline durations.
pub struct TableOne {
    /// Task order (rows and columns).
    pub tasks: Vec<WorkloadKind>,
    /// `matrix[row][col]` = mean slowdown of `tasks[row]` under
    /// `tasks[col]` interference.
    pub matrix: Vec<Vec<f64>>,
    /// Mean standalone duration per task, seconds.
    pub baseline_secs: Vec<f64>,
}

impl TableOne {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut header: Vec<String> = vec!["IO500 task \\ noise".into()];
        header.extend(self.tasks.iter().map(|k| k.name().to_string()));
        header.push("alone (s)".into());
        let mut t = AsciiTable::new(header);
        for (r, task) in self.tasks.iter().enumerate() {
            let mut row = vec![task.name().to_string()];
            for c in 0..self.tasks.len() {
                row.push(fmt_f64(self.matrix[r][c], 2));
            }
            row.push(fmt_f64(self.baseline_secs[r], 2));
            t.add_row(row);
        }
        t.render()
    }

    /// CSV form (same layout as [`TableOne::render`]).
    pub fn to_table(&self) -> AsciiTable {
        let mut header: Vec<String> = vec!["task".into()];
        header.extend(self.tasks.iter().map(|k| k.name().to_string()));
        header.push("baseline_secs".into());
        let mut t = AsciiTable::new(header);
        for (r, task) in self.tasks.iter().enumerate() {
            let mut row = vec![task.name().to_string()];
            for c in 0..self.tasks.len() {
                row.push(format!("{:.4}", self.matrix[r][c]));
            }
            row.push(format!("{:.4}", self.baseline_secs[r]));
            t.add_row(row);
        }
        t
    }

    /// The cell for (measured task, noise task).
    pub fn cell(&self, task: WorkloadKind, noise: WorkloadKind) -> Option<f64> {
        let r = self.tasks.iter().position(|&k| k == task)?;
        let c = self.tasks.iter().position(|&k| k == noise)?;
        Some(self.matrix[r][c])
    }
}

fn scenario_for(cfg: &TableOneConfig, target: WorkloadKind, seed: u64) -> Scenario {
    Scenario {
        target,
        target_ranks: cfg.target_ranks,
        interference: Vec::new(),
        cluster: cfg.cluster.clone(),
        seed,
        deadline: cfg.deadline,
        small: cfg.small,
        warmup: cfg.warmup,
        fault_plan: None,
    }
}

/// Regenerate Table I on an explicit pool handle (shared with the
/// caller's other parallel work).
pub fn table_one_on(pool: &rayon::ThreadPool, cfg: &TableOneConfig) -> Result<TableOne, QiError> {
    pool.install(|| table_one(cfg))
}

/// Regenerate the paper's Table I: run every IO500 task standalone and
/// under each of the seven interference patterns, and report mean
/// completion-time slowdowns.
///
/// Scheduling: one job per `(task, seed)` runs the baseline and then
/// fans that row's interfered cells out as nested parallel jobs, so
/// baselines and cells of different rows overlap instead of
/// serialising behind a matrix-wide barrier. Cell results are reduced
/// in canonical `(row, col, seed)` order, so the matrix is identical at
/// every thread count.
pub fn table_one(cfg: &TableOneConfig) -> Result<TableOne, QiError> {
    let tasks = WorkloadKind::IO500.to_vec();
    let base_jobs: Vec<(usize, u64)> = (0..tasks.len())
        .flat_map(|t| cfg.seeds.iter().map(move |&s| (t, s)))
        .collect();

    // One job per (task, seed): baseline first, then that row's cells.
    type RowResult = ((AppId, RunTrace), Vec<f64>);
    let per_key: Vec<RowResult> = base_jobs
        .par_iter()
        .map(|&(t, s)| -> Result<RowResult, QiError> {
            let (app, base) = scenario_for(cfg, tasks[t], s).run()?;
            if base.completion_of(app).is_none() {
                return Err(QiError::Incomplete(format!(
                    "baseline {} (seed {s}) hit the deadline",
                    tasks[t]
                )));
            }
            let cols: Vec<usize> = (0..tasks.len()).collect();
            let slowdowns: Vec<f64> = cols
                .par_iter()
                .map(|&c| -> Result<f64, QiError> {
                    let scenario =
                        scenario_for(cfg, tasks[t], s).with_interference(InterferenceSpec {
                            kind: tasks[c],
                            instances: cfg.instances,
                            ranks: cfg.noise_ranks,
                        });
                    let (cell_app, trace) = scenario.run()?;
                    Ok(completion_slowdown(&base, &trace, cell_app).unwrap_or(f64::NAN))
                })
                .collect::<Result<_, _>>()?;
            Ok(((app, base), slowdowns))
        })
        .collect::<Result<_, _>>()?;

    // Reduce in canonical (row, col, seed) order: for a fixed cell the
    // seed contributions sum in ascending-seed order, exactly as the
    // old flat cells loop did, keeping the f64 accumulation identical.
    let n = tasks.len();
    let mut sums = vec![vec![0.0; n]; n];
    let mut counts = vec![vec![0u32; n]; n];
    for (&(t, _), (_, slowdowns)) in base_jobs.iter().zip(&per_key) {
        for (c, &v) in slowdowns.iter().enumerate() {
            if v.is_finite() {
                sums[t][c] += v;
                counts[t][c] += 1;
            }
        }
    }
    let matrix: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            (0..n)
                .map(|c| {
                    if counts[r][c] == 0 {
                        f64::NAN
                    } else {
                        sums[r][c] / counts[r][c] as f64
                    }
                })
                .collect()
        })
        .collect();
    let n_seeds = cfg.seeds.len();
    let baseline_secs: Vec<f64> = (0..n)
        .map(|t| {
            let vals: Vec<f64> = (0..n_seeds)
                .filter_map(|si| {
                    let ((app, trace), _) = &per_key[t * n_seeds + si];
                    crate::scenario::target_duration(trace, *app).map(|d| d.as_secs_f64())
                })
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        })
        .collect();
    Ok(TableOne {
        tasks,
        matrix,
        baseline_secs,
    })
}

/// One series of Figure 1: per-operation I/O times of the Enzo proxy's
/// opening phase, matched op-for-op against the baseline.
pub struct EnzoSeries {
    /// Scenario label (e.g. "baseline", "2x ior-easy-write").
    pub label: String,
    /// Per-op durations in *op-index order* (seconds), smoothed.
    pub durations: Vec<f64>,
}

/// Configuration for the Figure 1 experiment.
#[derive(Clone, Debug)]
pub struct FigOneConfig {
    /// Ranks of the Enzo proxy.
    pub target_ranks: u32,
    /// Ranks per interference instance.
    pub noise_ranks: u32,
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Reduced-scale workloads.
    pub small: bool,
    /// Moving-average window (ops), as in the paper's smoothing.
    pub smooth: usize,
    /// Seed.
    pub seed: u64,
    /// Warmup and deadline as in Table I.
    pub warmup: SimDuration,
    /// Per-run deadline.
    pub deadline: SimDuration,
}

impl FigOneConfig {
    /// Paper-shaped configuration.
    pub fn paper() -> Self {
        FigOneConfig {
            target_ranks: 4,
            noise_ranks: 2,
            cluster: ClusterConfig::default(),
            small: false,
            smooth: 9,
            seed: 1,
            warmup: SimDuration::from_secs(6),
            deadline: SimDuration::from_secs(3600),
        }
    }

    /// Fast variant for tests.
    pub fn smoke() -> Self {
        FigOneConfig {
            target_ranks: 2,
            noise_ranks: 2,
            cluster: ClusterConfig::small(),
            small: true,
            smooth: 5,
            seed: 1,
            warmup: SimDuration::from_secs(3),
            deadline: SimDuration::from_secs(1800),
        }
    }
}

/// Per-op durations of rank 0 of the target, ordered by op index.
fn rank0_series(trace: &RunTrace, app: AppId) -> Vec<f64> {
    let mut ops: Vec<_> = trace
        .ops_of(app)
        .filter(|o| o.token.rank == 0)
        .map(|o| (o.token.seq, o.duration().as_secs_f64()))
        .collect();
    ops.sort_unstable_by_key(|&(seq, _)| seq);
    ops.into_iter().map(|(_, d)| d).collect()
}

/// Regenerate Figure 1(a): Enzo per-op I/O time under increasing
/// amounts of `ior-easy-write` interference (baseline, then 1..=levels
/// instances).
pub fn fig_one_a(cfg: &FigOneConfig, levels: u32) -> Result<Vec<EnzoSeries>, QiError> {
    let mut jobs: Vec<(String, u32)> = vec![("baseline".into(), 0)];
    for l in 1..=levels {
        jobs.push((format!("{l}x ior-easy-write"), l));
    }
    jobs.par_iter()
        .map(|(label, instances)| -> Result<EnzoSeries, QiError> {
            let mut s = Scenario {
                target: WorkloadKind::Enzo,
                target_ranks: cfg.target_ranks,
                interference: Vec::new(),
                cluster: cfg.cluster.clone(),
                seed: cfg.seed,
                deadline: cfg.deadline,
                small: cfg.small,
                warmup: cfg.warmup,
                fault_plan: None,
            };
            if *instances > 0 {
                s = s.with_interference(InterferenceSpec {
                    kind: WorkloadKind::IorEasyWrite,
                    instances: *instances,
                    ranks: cfg.noise_ranks,
                });
            }
            let (app, trace) = s.run()?;
            Ok(EnzoSeries {
                label: label.clone(),
                durations: moving_average(&rank0_series(&trace, app), cfg.smooth),
            })
        })
        .collect()
}

/// Regenerate Figure 1(b): Enzo per-op I/O time under a data-intensive
/// (`ior-easy-write`) vs a metadata-intensive (`mdt-easy-write`)
/// background, plus the baseline.
pub fn fig_one_b(cfg: &FigOneConfig, instances: u32) -> Result<Vec<EnzoSeries>, QiError> {
    let jobs: Vec<(String, Option<WorkloadKind>)> = vec![
        ("baseline".into(), None),
        (
            "data-intensive (ior-easy-write)".into(),
            Some(WorkloadKind::IorEasyWrite),
        ),
        (
            "metadata-intensive (mdt-easy-write)".into(),
            Some(WorkloadKind::MdtEasyWrite),
        ),
    ];
    jobs.par_iter()
        .map(|(label, kind)| -> Result<EnzoSeries, QiError> {
            let mut s = Scenario {
                target: WorkloadKind::Enzo,
                target_ranks: cfg.target_ranks,
                interference: Vec::new(),
                cluster: cfg.cluster.clone(),
                seed: cfg.seed,
                deadline: cfg.deadline,
                small: cfg.small,
                warmup: cfg.warmup,
                fault_plan: None,
            };
            if let Some(k) = kind {
                s = s.with_interference(InterferenceSpec {
                    kind: *k,
                    instances,
                    ranks: cfg.noise_ranks,
                });
            }
            let (app, trace) = s.run()?;
            Ok(EnzoSeries {
                label: label.clone(),
                durations: moving_average(&rank0_series(&trace, app), cfg.smooth),
            })
        })
        .collect()
}

/// Render Figure 1 series as a CSV-ready table (op index + one column
/// per series).
pub fn series_table(series: &[EnzoSeries]) -> AsciiTable {
    let mut header = vec!["op_index".to_string()];
    header.extend(series.iter().map(|s| s.label.clone()));
    let mut t = AsciiTable::new(header);
    let len = series.iter().map(|s| s.durations.len()).min().unwrap_or(0);
    for i in 0..len {
        let mut row = vec![i.to_string()];
        for s in series {
            row.push(format!("{:.6}", s.durations[i]));
        }
        t.add_row(row);
    }
    t
}

/// Mean of a series (summary statistic for assertions/reporting).
pub fn series_mean(s: &EnzoSeries) -> f64 {
    if s.durations.is_empty() {
        return 0.0;
    }
    s.durations.iter().sum::<f64>() / s.durations.len() as f64
}

/// Per-op ratio of interfered vs baseline durations (how non-uniform the
/// impact is — the phenomenon Fig. 1 highlights).
pub fn impact_ratios(baseline: &EnzoSeries, interfered: &EnzoSeries) -> Vec<f64> {
    baseline
        .durations
        .iter()
        .zip(&interfered.durations)
        .map(|(&b, &i)| if b > 0.0 { i / b } else { 1.0 })
        .collect()
}

/// Result of the fail-slow robustness experiment: does the interference
/// predictor *confuse* a gray-failing device with cross-application
/// interference? (Lu et al.'s Perseus — the source of the paper's
/// severity bins — detects fail-slow; this probes the boundary between
/// the two phenomena.)
pub struct FailSlowReport {
    /// Windows whose measured degradation (vs the healthy baseline) was
    /// at or above the binary threshold.
    pub degraded_windows: usize,
    /// Degraded windows the model attributed to interference (flagged
    /// >=2x) even though no interference was present.
    pub flagged_windows: usize,
    /// Windows with target activity, total.
    pub total_windows: usize,
}

impl FailSlowReport {
    /// Fraction of fail-slow-degraded windows mis-attributed to
    /// interference.
    pub fn misattribution_rate(&self) -> f64 {
        if self.degraded_windows == 0 {
            return 0.0;
        }
        self.flagged_windows as f64 / self.degraded_windows as f64
    }
}

/// Run the fail-slow probe: execute `scenario` (which must have NO
/// interference) with device `dev` degrading by `factor` from `at`,
/// label windows against the healthy baseline, and ask the trained
/// `predictor` which windows it would have flagged as interference.
pub fn fail_slow_probe(
    scenario: &Scenario,
    predictor: &mut crate::predict::Predictor,
    dev: qi_pfs::ids::DeviceId,
    at: qi_simkit::SimTime,
    factor: f64,
) -> Result<FailSlowReport, QiError> {
    if !scenario.interference.is_empty() {
        return Err(QiError::Config(
            "the fail-slow probe isolates device failure from interference".into(),
        ));
    }
    let (app, healthy) = scenario.run()?;
    let (_, sick) = scenario.run_with(|cl| cl.inject_fail_slow(dev, at, factor))?;
    let idx = crate::labeling::BaselineIndex::new(&healthy, app);
    let wcfg = predictor.window_config();
    let levels = crate::labeling::window_degradation(&idx, &sick, app, wcfg);
    let bins = crate::labeling::Bins::binary();
    let predictions: std::collections::HashMap<u64, usize> =
        predictor.predict_run(&sick, app)?.into_iter().collect();
    let mut degraded = 0;
    let mut flagged = 0;
    for (w, lv) in &levels {
        if bins.classify(*lv) >= 1 {
            degraded += 1;
            if predictions.get(w).copied().unwrap_or(0) >= 1 {
                flagged += 1;
            }
        }
    }
    Ok(FailSlowReport {
        degraded_windows: degraded,
        flagged_windows: flagged,
        total_windows: levels.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_one_has_sane_structure() {
        // Run only a 2x2 corner via a trimmed task list by checking the
        // full smoke table would be slow; instead run the full smoke
        // config once (it is the central experiment, worth the seconds).
        let cfg = TableOneConfig::smoke();
        let t = table_one(&cfg).expect("table one runs");
        assert_eq!(t.tasks.len(), 7);
        assert_eq!(t.matrix.len(), 7);
        // All cells present and >= ~1 (interference can't speed you up
        // much; allow small jitter below 1).
        for row in &t.matrix {
            for &v in row {
                assert!(v.is_finite(), "missing cell");
                assert!(v > 0.5, "nonsense slowdown {v}");
            }
        }
        // Headline shape: read-vs-read interference dwarfs
        // read-vs-metadata interference.
        let rr = t
            .cell(WorkloadKind::IorEasyRead, WorkloadKind::IorEasyRead)
            .unwrap();
        let rm = t
            .cell(WorkloadKind::IorEasyRead, WorkloadKind::MdtEasyWrite)
            .unwrap();
        assert!(rr > rm, "read-read {rr} <= read-mdt {rm}");
        let render = t.render();
        assert!(render.contains("ior-easy-read"));
    }

    #[test]
    fn smoke_fig_one_a_shows_interference() {
        let cfg = FigOneConfig::smoke();
        let series = fig_one_a(&cfg, 2).expect("fig 1a runs");
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].label, "baseline");
        let base = series_mean(&series[0]);
        let two = series_mean(&series[2]);
        assert!(two > base, "no visible impact: base {base} 2x {two}");
        // Non-uniform impact: ratios must spread.
        let ratios = impact_ratios(&series[0], &series[2]);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min.max(1e-9) > 1.5, "impact uniform: {min}..{max}");
    }

    #[test]
    fn fail_slow_probe_reports_degradation() {
        // Train nothing fancy: a tiny model on the smoke grid.
        let spec = crate::dataset::DatasetSpec::smoke();
        let tcfg = qi_ml::train::TrainConfig {
            epochs: 8,
            ..Default::default()
        };
        let (_, mut predictor, _) =
            crate::predict::train_and_evaluate(&spec, &tcfg, 2).expect("pipeline runs");
        let scenario = Scenario {
            cluster: qi_pfs::config::ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyRead, 31)
        };
        let report = fail_slow_probe(
            &scenario,
            &mut predictor,
            qi_pfs::ids::DeviceId(0),
            qi_simkit::SimTime::ZERO,
            8.0,
        )
        .expect("probe runs");
        // An 8x fail-slow OST must degrade at least one window of a
        // reader whose files live partly on it.
        assert!(report.total_windows > 0);
        assert!(
            report.degraded_windows > 0,
            "fail-slow injection had no visible effect"
        );
        assert!(report.misattribution_rate() >= 0.0);
        assert!(report.flagged_windows <= report.degraded_windows);
    }

    #[test]
    fn series_table_is_rectangular() {
        let a = EnzoSeries {
            label: "a".into(),
            durations: vec![1.0, 2.0, 3.0],
        };
        let b = EnzoSeries {
            label: "b".into(),
            durations: vec![4.0, 5.0],
        };
        let t = series_table(&[a, b]);
        assert_eq!(t.len(), 2); // truncated to the shorter series
    }
}
