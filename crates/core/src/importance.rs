//! Permutation feature importance — which monitored metrics the model
//! actually leans on. This answers the paper's first stated challenge
//! ("deciding which system metrics should be leveraged to accurately
//! indicate the presence of I/O interference", §I) empirically: permute
//! one feature column across samples and measure how much the model's
//! F1 drops.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qi_ml::data::Dataset;
use qi_ml::metrics::ConfusionMatrix;
use qi_ml::train::TrainedModel;
use qi_monitor::features::{feature_names, FeatureConfig};
use qi_simkit::error::QiError;

/// Per-feature importance scores.
pub struct FeatureImportance {
    /// Feature names (per-server vector order).
    pub names: Vec<String>,
    /// Mean F1 drop when the feature is permuted (higher = more
    /// important; ~0 or negative = unused).
    pub drops: Vec<f64>,
    /// Unpermuted F1 on the evaluation set.
    pub base_f1: f64,
}

impl FeatureImportance {
    /// Features sorted by importance, most important first.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .names
            .iter()
            .cloned()
            .zip(self.drops.iter().copied())
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

fn f1_of(model: &mut TrainedModel, data: &Dataset) -> f64 {
    let preds = model.predict(data);
    let mut cm = ConfusionMatrix::new(model.n_classes());
    for (&actual, pred) in data.y.iter().zip(preds) {
        cm.record(actual, pred);
    }
    if cm.n_classes() == 2 {
        cm.f1_positive()
    } else {
        cm.macro_f1()
    }
}

/// Compute permutation importance of every per-server feature on `data`
/// (typically the held-out test set), averaging over `repeats`
/// permutations per feature.
pub fn permutation_importance(
    model: &mut TrainedModel,
    data: &Dataset,
    fcfg: FeatureConfig,
    seed: u64,
    repeats: usize,
) -> Result<FeatureImportance, QiError> {
    if repeats == 0 {
        return Err(QiError::Config(
            "permutation importance needs at least one repeat".into(),
        ));
    }
    let names = feature_names(fcfg);
    if names.len() != data.n_features() {
        return Err(QiError::Shape {
            what: "feature config vs dataset columns",
            expected: names.len(),
            got: data.n_features(),
        });
    }
    let base_f1 = f1_of(model, data);
    let rows = data.x.rows();
    let mut drops = Vec::with_capacity(names.len());
    for f in 0..names.len() {
        let mut total_drop = 0.0;
        for r in 0..repeats {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (f as u64).wrapping_mul(0x9E37_79B9) ^ (r as u64) << 40,
            );
            let mut shuffled = data.clone();
            // Fisher-Yates over the feature column (all per-server rows).
            for i in (1..rows).rev() {
                let j = rng.gen_range(0..=i);
                let a = shuffled.x.get(i, f);
                let b = shuffled.x.get(j, f);
                shuffled.x.set(i, f, b);
                shuffled.x.set(j, f, a);
            }
            total_drop += base_f1 - f1_of(model, &shuffled);
        }
        drops.push(total_drop / repeats as f64);
    }
    Ok(FeatureImportance {
        names,
        drops,
        base_f1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_ml::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dataset where ONLY feature 0 carries the label signal.
    fn one_informative_feature(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(7);
        let servers = 2;
        let feats = 4;
        let mut samples = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let pos = i % 2 == 0;
            let mut block = Vec::with_capacity(servers * feats);
            for _ in 0..servers {
                block.push(if pos { 2.0 } else { -2.0 }); // informative
                for _ in 1..feats {
                    block.push(rng.gen_range(-1.0..1.0)); // noise
                }
            }
            samples.push(block);
            y.push(usize::from(pos));
        }
        Dataset::from_samples(samples, y, servers)
    }

    #[test]
    fn informative_feature_dominates() {
        let data = one_informative_feature(300);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 3e-3,
            ..TrainConfig::default()
        };
        let mut model = train(&data, &cfg);
        // A feature config whose width matches the synthetic data.
        let fake_cfg = FeatureConfig {
            client: false,
            server: false,
        };
        // Can't use the real schema (widths differ); call the internals
        // directly instead with handmade names.
        let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
        let base = f1_of(&mut model, &data);
        assert!(base > 0.95, "model failed to learn: {base}");
        // Permute each column by hand and compare drops.
        let mut drops = Vec::new();
        for f in 0..4 {
            let mut rng = StdRng::seed_from_u64(11 + f as u64);
            let mut shuffled = data.clone();
            for i in (1..shuffled.x.rows()).rev() {
                let j = rng.gen_range(0..=i);
                let a = shuffled.x.get(i, f);
                let b = shuffled.x.get(j, f);
                shuffled.x.set(i, f, b);
                shuffled.x.set(j, f, a);
            }
            drops.push(base - f1_of(&mut model, &shuffled));
        }
        let _ = (names, fake_cfg);
        let max_noise = drops[1..].iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            drops[0] > 0.2 && drops[0] > 5.0 * max_noise.abs().max(0.01),
            "importance did not isolate the signal: {drops:?}"
        );
    }

    #[test]
    fn ranked_sorts_descending() {
        let imp = FeatureImportance {
            names: vec!["a".into(), "b".into(), "c".into()],
            drops: vec![0.1, 0.5, -0.01],
            base_f1: 0.9,
        };
        let r = imp.ranked();
        assert_eq!(r[0].0, "b");
        assert_eq!(r[2].0, "c");
    }
}
