//! Unsupervised novel-fault detection over pipeline window vectors
//! (the PR-9 wiring layer).
//!
//! The supervised predictor ([`crate::predict`]) can only recognise the
//! interference patterns it was trained on. This module closes the gap
//! for faults *outside* the label space: an [`AnomalyDetector`] holds a
//! deterministic isolation forest ([`qi_ml::anomaly`]) fitted on
//! healthy-baseline feature vectors and scores every `(window, app)`
//! vector of a fresh trace, flagging windows whose isolation score
//! exceeds the healthy percentile threshold.
//!
//! Two properties matter here:
//!
//! - **Determinism** — the forest is seeded, fitting canonicalises row
//!   order, and scoring is pure, so a detector run is byte-identical
//!   across reruns and worker-thread counts.
//! - **Opt-in telemetry** — `anomaly.*` metrics exist only in the
//!   snapshot a detector run produces. Nothing here touches the
//!   simulator or pipeline registries, so every pre-existing golden
//!   artefact stays byte-unchanged when no scorer is installed.
//!
//! When an [`AdaptiveSampler`] budget is configured, the detector thins
//! the per-device sample series *before* featurization and folds the
//! sampler's `monitor.sampler.*` accounting into the same snapshot —
//! the ingest-cost story of the adaptive-monitoring satellite.

use qi_ml::anomaly::{AnomalyScorer, ForestConfig};
use qi_monitor::features::FeatureConfig;
use qi_monitor::pipeline::FeaturePipeline;
use qi_monitor::sampler::{AdaptiveSampler, SamplerConfig, SamplerStats};
use qi_monitor::window::WindowConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_simkit::stats::Histogram;
use qi_telemetry::{MetricValue, MetricsSnapshot};

/// One scored `(window, application)` feature vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowScore {
    /// Window index within the run.
    pub window: u64,
    /// Application the feature block belongs to.
    pub app: AppId,
    /// Isolation score in `[0, 1]` (higher = more anomalous).
    pub score: f64,
    /// `score > threshold` (strict).
    pub anomalous: bool,
}

/// Everything one detector pass produced.
#[derive(Clone, Debug)]
pub struct AnomalyReport {
    /// Per-`(window, app)` scores, in window order (apps sorted within
    /// a window).
    pub scores: Vec<WindowScore>,
    /// The healthy-percentile threshold the verdicts used.
    pub threshold: f64,
    /// Adaptive-sampler accounting, if a budget was configured.
    pub sampler: Option<SamplerStats>,
    /// `anomaly.*` counters/histogram/gauge, plus `monitor.sampler.*`
    /// when sampling was enabled. Only a detector run emits these.
    pub snapshot: MetricsSnapshot,
}

impl AnomalyReport {
    /// Scores flagged as anomalous.
    pub fn flagged(&self) -> impl Iterator<Item = &WindowScore> {
        self.scores.iter().filter(|s| s.anomalous)
    }

    /// How many `(window, app)` vectors were flagged.
    pub fn n_flagged(&self) -> usize {
        self.flagged().count()
    }

    /// Highest isolation score seen (0.0 on an empty report).
    pub fn max_score(&self) -> f64 {
        self.scores.iter().fold(0.0, |m, s| m.max(s.score))
    }
}

/// Every per-`(window, app)` feature vector a trace featurizes to, in
/// window order with apps sorted inside each window — the row set both
/// healthy-baseline fitting and [`AnomalyDetector::analyze`] consume,
/// assembled by the one canonical [`FeaturePipeline`].
pub fn feature_rows(
    trace: &RunTrace,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
) -> Vec<Vec<f32>> {
    FeaturePipeline::new(wcfg, fcfg, n_devices)
        .run_windows(trace)
        .iter()
        .flat_map(|ew| {
            ew.feature_blocks(fcfg, n_devices, wcfg.window)
                .into_iter()
                .map(|(_, block, _)| block)
        })
        .collect()
}

/// A fitted isolation-forest detector bound to one featurization
/// configuration, with an optional adaptive-sampling front end.
#[derive(Clone, Debug)]
pub struct AnomalyDetector {
    scorer: AnomalyScorer,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
    sampler: Option<SamplerConfig>,
}

impl AnomalyDetector {
    /// Fit a detector on healthy-baseline traces: featurize every
    /// trace, fit the seeded forest on the pooled rows, and set the
    /// verdict threshold at the `threshold_pct` percentile of the
    /// healthy scores (e.g. `95.0`).
    pub fn fit_healthy(
        forest: ForestConfig,
        wcfg: WindowConfig,
        fcfg: FeatureConfig,
        n_devices: u32,
        healthy: &[RunTrace],
        threshold_pct: f64,
    ) -> AnomalyDetector {
        let rows: Vec<Vec<f32>> = healthy
            .iter()
            .flat_map(|t| feature_rows(t, wcfg, fcfg, n_devices))
            .collect();
        AnomalyDetector {
            scorer: AnomalyScorer::fit_healthy(forest, &rows, threshold_pct),
            wcfg,
            fcfg,
            n_devices,
            sampler: None,
        }
    }

    /// Wrap an already-fitted scorer (tests, custom fitting).
    pub fn from_scorer(
        scorer: AnomalyScorer,
        wcfg: WindowConfig,
        fcfg: FeatureConfig,
        n_devices: u32,
    ) -> AnomalyDetector {
        AnomalyDetector {
            scorer,
            wcfg,
            fcfg,
            n_devices,
            sampler: None,
        }
    }

    /// Enable budget-bounded adaptive downsampling of the server-sample
    /// series ahead of featurization.
    pub fn with_sampler(mut self, cfg: SamplerConfig) -> AnomalyDetector {
        self.sampler = Some(cfg);
        self
    }

    /// The healthy-percentile verdict threshold.
    pub fn threshold(&self) -> f64 {
        self.scorer.threshold()
    }

    /// The fitted scorer.
    pub fn scorer(&self) -> &AnomalyScorer {
        &self.scorer
    }

    /// Score every `(window, app)` vector of `trace`.
    ///
    /// The sample stream is read through the trace-store accessor API
    /// (ring-buffer and unbounded stores score identically), optionally
    /// thinned by the adaptive sampler, then driven through the
    /// canonical pipeline; each emitted feature block gets an
    /// [`qi_ml::anomaly::AnomalyVerdict`].
    pub fn analyze(&self, trace: &RunTrace) -> AnomalyReport {
        let samples = trace.samples.to_vec();
        let (samples, sampler) = match self.sampler {
            Some(cfg) => {
                let (kept, stats) = AdaptiveSampler::run(cfg, self.wcfg, samples);
                (kept, Some(stats))
            }
            None => (samples, None),
        };
        let windows = FeaturePipeline::new(self.wcfg, self.fcfg, self.n_devices).run_streams(
            &trace.ops,
            &trace.rpcs,
            &samples,
        );

        let mut scores = Vec::new();
        let mut hist = Histogram::new(0.0, 1.0, 20);
        let mut flagged = 0u64;
        for ew in &windows {
            for (app, block, _) in ew.feature_blocks(self.fcfg, self.n_devices, self.wcfg.window) {
                let v = self.scorer.verdict(&block);
                hist.record(v.score);
                flagged += u64::from(v.anomalous);
                scores.push(WindowScore {
                    window: ew.window,
                    app,
                    score: v.score,
                    anomalous: v.anomalous,
                });
            }
        }

        let mut snapshot = MetricsSnapshot::new();
        snapshot.put(
            "anomaly.windows_scored",
            MetricValue::Counter(scores.len() as u64),
        );
        snapshot.put("anomaly.flagged", MetricValue::Counter(flagged));
        snapshot.put("anomaly.score", MetricValue::Histogram(hist));
        snapshot.put(
            "anomaly.threshold",
            MetricValue::Gauge(self.scorer.threshold()),
        );
        if let Some(stats) = &sampler {
            snapshot.absorb("", &stats.metrics_snapshot());
        }

        AnomalyReport {
            scores,
            threshold: self.scorer.threshold(),
            sampler,
            snapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use qi_workloads::registry::WorkloadKind;

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario {
            cluster: qi_pfs::config::ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyRead, seed)
        }
    }

    fn cfgs() -> (WindowConfig, FeatureConfig) {
        (WindowConfig::seconds(5), FeatureConfig::default())
    }

    #[test]
    fn healthy_windows_mostly_pass() {
        let (wcfg, fcfg) = cfgs();
        let scn = tiny_scenario(3);
        let n_devices = scn.cluster.n_devices();
        let (_, trace) = scn.run().unwrap();
        let det = AnomalyDetector::fit_healthy(
            ForestConfig {
                n_trees: 30,
                sample_size: 64,
                seed: 7,
            },
            wcfg,
            fcfg,
            n_devices,
            std::slice::from_ref(&trace),
            95.0,
        );
        let report = det.analyze(&trace);
        assert!(!report.scores.is_empty());
        // By construction ~5% of the training windows sit above the
        // p95 threshold.
        assert!(report.n_flagged() * 10 <= report.scores.len() + 9);
        assert_eq!(
            report.snapshot.counter("anomaly.windows_scored"),
            Some(report.scores.len() as u64)
        );
        assert_eq!(
            report.snapshot.counter("anomaly.flagged"),
            Some(report.n_flagged() as u64)
        );
        // No sampler configured → no sampler namespace in the snapshot.
        assert_eq!(report.snapshot.counter("monitor.sampler.seen"), None);
        assert!(report.sampler.is_none());
    }

    #[test]
    fn feature_rows_match_detector_input() {
        let (wcfg, fcfg) = cfgs();
        let scn = tiny_scenario(4);
        let n_devices = scn.cluster.n_devices();
        let (_, trace) = scn.run().unwrap();
        let rows = feature_rows(&trace, wcfg, fcfg, n_devices);
        let det = AnomalyDetector::fit_healthy(
            ForestConfig {
                n_trees: 10,
                sample_size: 32,
                seed: 1,
            },
            wcfg,
            fcfg,
            n_devices,
            std::slice::from_ref(&trace),
            95.0,
        );
        let report = det.analyze(&trace);
        assert_eq!(rows.len(), report.scores.len());
        let direct: Vec<f64> = rows.iter().map(|r| det.scorer().score(r)).collect();
        let via: Vec<f64> = report.scores.iter().map(|s| s.score).collect();
        assert_eq!(direct, via);
    }

    #[test]
    fn sampler_accounting_lands_in_the_snapshot() {
        let (wcfg, fcfg) = cfgs();
        let scn = tiny_scenario(5);
        let n_devices = scn.cluster.n_devices();
        let (_, trace) = scn.run().unwrap();
        let det = AnomalyDetector::fit_healthy(
            ForestConfig {
                n_trees: 10,
                sample_size: 32,
                seed: 1,
            },
            wcfg,
            fcfg,
            n_devices,
            std::slice::from_ref(&trace),
            95.0,
        )
        .with_sampler(SamplerConfig {
            budget: 4,
            quiet_keep: 1,
            seed: 9,
        });
        let report = det.analyze(&trace);
        let stats = report.sampler.expect("sampler was configured");
        assert_eq!(stats.seen, trace.samples.len() as u64);
        assert_eq!(
            report.snapshot.counter("monitor.sampler.kept"),
            Some(stats.kept)
        );
        assert_eq!(
            report.snapshot.counter("monitor.sampler.dropped"),
            Some(stats.dropped())
        );
    }
}
