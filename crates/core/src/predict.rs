//! The deployed-model facade: after offline training, the training
//! server keeps receiving window metrics and answers "how much slowdown
//! is this application about to experience?" (paper §III-C, deployment).

use std::collections::HashMap;

use qi_ml::data::Dataset;
use qi_ml::matrix::Matrix;
use qi_ml::train::TrainedModel;
use qi_monitor::features::{FeatureConfig, Imputation};
use qi_monitor::schema::FeatureSchema;
use qi_monitor::window::WindowConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_telemetry::{MetricValue, MetricsSnapshot};
use qi_workloads::registry::WorkloadKind;

use crate::dataset::{generate, window_vectors_with, DatasetSpec, GeneratedDataset};
use crate::labeling::Bins;

/// A trained interference predictor bound to its monitoring config.
pub struct Predictor {
    model: TrainedModel,
    window: WindowConfig,
    features: FeatureConfig,
    n_devices: u32,
    bins: Bins,
    imputation: Imputation,
}

impl Predictor {
    /// Wrap a trained model with the monitoring configuration it was
    /// trained under.
    ///
    /// Fails with [`QiError::SchemaMismatch`] — before any inference can
    /// run — when the model's embedded [`FeatureSchema`] does not match
    /// the schema this monitoring configuration would produce. Models
    /// stamped with a [`FeatureSchema::custom`] schema (trained on
    /// hand-built datasets) only have their vector length checked.
    pub fn new(
        model: TrainedModel,
        window: WindowConfig,
        features: FeatureConfig,
        n_devices: u32,
        bins: Bins,
        imputation: Imputation,
    ) -> Result<Self, QiError> {
        let expected = FeatureSchema::current(window, features, imputation);
        let got = model.schema();
        let matches = if got.window_nanos() == 0 {
            // Custom/unbound schema: the layout the pipeline feeds it
            // must still be the length it was trained on.
            got.vector_len() == expected.vector_len()
        } else {
            *got == expected
        };
        if !matches {
            return Err(QiError::SchemaMismatch {
                context: "binding a model to a predictor".into(),
                expected: expected.to_string(),
                got: got.to_string(),
            });
        }
        Ok(Predictor {
            model,
            window,
            features,
            n_devices,
            bins,
            imputation,
        })
    }

    /// Severity-bin labels ("<2x", ">=2x", …).
    pub fn bin_labels(&self) -> Vec<String> {
        self.bins.labels()
    }

    /// The window configuration the model was trained under.
    pub fn window_config(&self) -> WindowConfig {
        self.window
    }

    /// The underlying trained model (e.g. to inspect its shape).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Unwrap the trained model, discarding the monitoring binding —
    /// the handoff point to the serving layer, whose `ModelRegistry`
    /// re-validates the shape against the monitor's feature layout.
    pub fn into_model(self) -> TrainedModel {
        self.model
    }

    /// Predict the severity bin for one assembled feature block
    /// (`n_devices × n_features`, flattened row-major). Fails with
    /// [`QiError::Shape`] when the block has the wrong element count.
    pub fn predict_block(&mut self, block: &[f32]) -> Result<usize, QiError> {
        let f = self.features.len();
        let expected = self.n_devices as usize * f;
        if block.len() != expected {
            return Err(QiError::Shape {
                what: "feature block floats",
                expected,
                got: block.len(),
            });
        }
        let m = Matrix::from_vec(self.n_devices as usize, f, block.to_vec());
        Ok(self.model.predict_one(&m))
    }

    /// Predict every window of a finished run's target application.
    /// Returns `window index → predicted bin`, sorted by window.
    pub fn predict_run(
        &mut self,
        trace: &RunTrace,
        target: AppId,
    ) -> Result<Vec<(u64, usize)>, QiError> {
        let vectors = window_vectors_with(
            trace,
            target,
            self.window,
            self.features,
            self.n_devices,
            self.imputation,
        );
        let mut windows: Vec<u64> = vectors.keys().copied().collect();
        windows.sort_unstable();
        windows
            .into_iter()
            .map(|w| Ok((w, self.predict_block(&vectors[&w])?)))
            .collect()
    }

    /// Compare predictions against ground-truth degradation levels.
    /// Returns `(window, predicted bin, true bin)` for labelled windows.
    pub fn score_run(
        &mut self,
        trace: &RunTrace,
        target: AppId,
        truth: &HashMap<u64, f64>,
    ) -> Result<Vec<(u64, usize, usize)>, QiError> {
        Ok(self
            .predict_run(trace, target)?
            .into_iter()
            .filter_map(|(w, pred)| truth.get(&w).map(|&lv| (w, pred, self.bins.classify(lv))))
            .collect())
    }
}

/// End-to-end evaluation report for one dataset (what each of the
/// paper's Figures 3-5 shows for one workload family).
pub struct EvalReport {
    /// Training-set size (samples).
    pub train_size: usize,
    /// Test-set size (samples).
    pub test_size: usize,
    /// Training-set class counts.
    pub train_counts: Vec<usize>,
    /// Test-set class counts.
    pub test_counts: Vec<usize>,
    /// Confusion matrix on the held-out test set.
    pub cm: qi_ml::metrics::ConfusionMatrix,
    /// Bin labels for rendering.
    pub labels: Vec<String>,
    /// Pipeline telemetry: the model's `ml.train.*` metrics plus
    /// `ml.eval.*` gauges (accuracy, macro-F1, headline F1) and split
    /// sizes. Deterministic for a fixed spec, config, and seed.
    pub metrics: MetricsSnapshot,
}

impl EvalReport {
    /// Positive-class F1 (binary) or macro-F1 (multi-class).
    pub fn headline_f1(&self) -> f64 {
        if self.cm.n_classes() == 2 {
            self.cm.f1_positive()
        } else {
            self.cm.macro_f1()
        }
    }

    /// Render the confusion matrix with its labels.
    pub fn render(&self) -> String {
        let labels: Vec<&str> = self.labels.iter().map(String::as_str).collect();
        self.cm.render(&labels)
    }
}

/// Generate a dataset from `spec`, train with `tcfg` on an 80/20 split,
/// and evaluate — the full Figure 3/4/5 pipeline for one family.
pub fn train_and_evaluate(
    spec: &DatasetSpec,
    tcfg: &qi_ml::train::TrainConfig,
    split_seed: u64,
) -> Result<(GeneratedDataset, Predictor, EvalReport), QiError> {
    let gen = generate(spec)?;
    let (train_set, test_set) = gen.data.split(0.2, split_seed);
    let mut tcfg = tcfg.clone();
    tcfg.n_classes = spec.bins.n_classes();
    let mut model = qi_ml::train::train_with_schema(&train_set, &tcfg, gen.schema.clone())?;
    let cm = model.evaluate(&test_set);
    let count = |d: &Dataset| {
        let mut c = vec![0usize; spec.bins.n_classes()];
        for &y in &d.y {
            c[y] += 1;
        }
        c
    };
    let mut metrics = model.metrics.clone();
    metrics.put("ml.eval.accuracy", MetricValue::Gauge(cm.accuracy()));
    metrics.put("ml.eval.macro_f1", MetricValue::Gauge(cm.macro_f1()));
    let headline = if cm.n_classes() == 2 {
        cm.f1_positive()
    } else {
        cm.macro_f1()
    };
    metrics.put("ml.eval.headline_f1", MetricValue::Gauge(headline));
    metrics.put(
        "ml.eval.train_samples",
        MetricValue::Counter(train_set.len() as u64),
    );
    metrics.put(
        "ml.eval.test_samples",
        MetricValue::Counter(test_set.len() as u64),
    );
    let report = EvalReport {
        train_size: train_set.len(),
        test_size: test_set.len(),
        train_counts: count(&train_set),
        test_counts: count(&test_set),
        cm,
        labels: spec.bins.labels(),
        metrics,
    };
    let predictor = Predictor::new(
        model,
        spec.window,
        spec.features,
        spec.cluster.n_devices(),
        spec.bins.clone(),
        spec.imputation,
    )?;
    Ok((gen, predictor, report))
}

/// Convenience: the dataset spec used for one paper figure's family.
///
/// Targets come from `family`; interference is always drawn from the
/// IO500 tasks at intensities 1-3, matching the paper's data-collection
/// protocol ("we created varying levels of background I/O requests
/// (using IO500)", §III-D). The full-scale variant samples servers every
/// 250 ms so the per-window std features are informative.
pub fn family_spec(family: &[WorkloadKind], small: bool) -> DatasetSpec {
    let mut spec = DatasetSpec::smoke();
    spec.targets = family.to_vec();
    spec.noise_kinds = WorkloadKind::IO500.to_vec();
    spec.intensities = vec![1, 2, 3];
    spec.seeds = vec![1, 2];
    spec.small = small;
    if !small {
        spec.cluster = qi_pfs::config::ClusterConfig::default();
        spec.cluster.sample_interval = qi_simkit::time::SimDuration::from_millis(250);
        spec.target_ranks = 4;
        spec.noise_ranks = 2;
        spec.seeds = vec![1, 2, 3, 4, 5];
        // Calibration (documented in EXPERIMENTS.md): DLIO's buffered
        // readers and compute gaps absorb mild contention in the
        // simulator, piling its degradation levels onto the 2x label
        // boundary; heavier background intensity separates the classes
        // the way the authors' testbed did.
        if family.iter().any(|k| WorkloadKind::DLIO.contains(k)) {
            spec.noise_ranks = 6;
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::BaselineIndex;
    use crate::scenario::InterferenceSpec;

    #[test]
    fn pipeline_smoke_trains_and_scores() {
        let spec = DatasetSpec::smoke();
        let tcfg = qi_ml::train::TrainConfig {
            epochs: 8,
            ..Default::default()
        };
        let (gen, mut predictor, report) =
            train_and_evaluate(&spec, &tcfg, 9).expect("pipeline runs");
        assert_eq!(report.train_size + report.test_size, gen.data.len());
        assert!(report.cm.total() as usize == report.test_size);
        assert!(report.headline_f1() >= 0.0);
        assert_eq!(predictor.bin_labels(), vec!["<2x", ">=2x"]);

        // Live scoring path: rerun one interfered scenario and score it.
        let scenario = crate::scenario::Scenario {
            target: WorkloadKind::IorEasyRead,
            target_ranks: spec.target_ranks,
            interference: vec![InterferenceSpec {
                kind: WorkloadKind::IorEasyWrite,
                instances: 2,
                ranks: 2,
            }],
            cluster: spec.cluster.clone(),
            seed: 1,
            deadline: spec.deadline,
            small: true,
            warmup: qi_simkit::time::SimDuration::from_secs(3),
            fault_plan: None,
        };
        let (app, base) = scenario.run_baseline().expect("baseline runs");
        let (_, noisy) = scenario.run().expect("interfered run");
        let idx = BaselineIndex::new(&base, app);
        let truth = crate::labeling::window_degradation(&idx, &noisy, app, spec.window);
        let scored = predictor.score_run(&noisy, app, &truth).expect("scores");
        assert!(!scored.is_empty());
    }

    #[test]
    fn schema_mismatched_model_is_rejected_before_inference() {
        let spec = DatasetSpec::smoke();
        let tcfg = qi_ml::train::TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let (_, predictor, _) = train_and_evaluate(&spec, &tcfg, 1).expect("pipeline runs");
        let model = predictor.into_model();
        // Rebinding under a different window length must fail up front,
        // before a single vector is assembled or scored.
        let err = Predictor::new(
            model,
            WindowConfig::seconds(2),
            spec.features,
            spec.cluster.n_devices(),
            spec.bins.clone(),
            spec.imputation,
        )
        .err()
        .expect("mismatched window rejected");
        assert!(matches!(err, QiError::SchemaMismatch { .. }), "{err}");
        assert!(err.to_string().contains("window=2000ms"), "{err}");
    }

    #[test]
    fn wrong_block_shape_is_an_error() {
        let spec = DatasetSpec::smoke();
        let tcfg = qi_ml::train::TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let (_, mut predictor, _) = train_and_evaluate(&spec, &tcfg, 1).expect("pipeline runs");
        let err = predictor.predict_block(&[0.0; 3]).expect_err("bad shape");
        match err {
            qi_simkit::QiError::Shape { expected, got, .. } => {
                assert_eq!(got, 3);
                assert_eq!(
                    expected,
                    spec.cluster.n_devices() as usize * spec.features.len()
                );
            }
            other => panic!("expected Shape error, got {other}"),
        }
    }
}
