//! # quanterference
//!
//! The framework of *"Understanding and Predicting Cross-Application I/O
//! Interference in HPC Storage Systems"* (SC 2024), reproduced end to
//! end over a simulated Lustre-like cluster:
//!
//! 1. [`scenario`] — run a target workload alone and under controlled
//!    background interference on disjoint client nodes.
//! 2. [`labeling`] — match operations between the two executions and
//!    compute per-window degradation levels (`§III-D`), bucketed into
//!    severity bins.
//! 3. [`dataset`] — sweep a scenario grid (targets × interference kinds ×
//!    intensities × seeds, in parallel) and assemble labelled per-server
//!    feature vectors.
//! 4. [`predict`] — train the kernel-based network and serve window-level
//!    interference predictions.
//!
//! ```no_run
//! use quanterference::prelude::*;
//!
//! # fn main() -> Result<(), QiError> {
//! // Generate a small labelled dataset, train, evaluate (Fig. 3 shape).
//! let spec = DatasetSpec::smoke();
//! let tcfg = TrainConfig::default();
//! let (dataset, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 42)?;
//! println!("{}", report.render());
//! println!("F1 = {:.3} on {} test windows", report.headline_f1(), report.test_size);
//! # let _ = (dataset, predictor.bin_labels());
//! # Ok(())
//! # }
//! ```

pub mod anomaly;
pub mod dataset;
pub mod experiments;
pub mod importance;
pub mod labeling;
pub mod mitigation;
pub mod predict;
pub mod report;
pub mod scenario;

/// Common imports for framework users: one stop for scenario running,
/// cluster construction, fault injection, dataset generation, and the
/// training/prediction pipeline.
pub mod prelude {
    pub use crate::anomaly::{feature_rows, AnomalyDetector, AnomalyReport, WindowScore};
    pub use crate::dataset::{
        generate, generate_on, window_vectors, window_vectors_with, DatasetSpec, FaultSpec,
        GeneratedDataset, SampleMeta,
    };
    pub use crate::experiments::{fig_one_a, fig_one_b, table_one, FigOneConfig, TableOneConfig};
    pub use crate::importance::{permutation_importance, FeatureImportance};
    pub use crate::labeling::{window_degradation, BaselineIndex, Bins};
    pub use crate::mitigation::{
        evaluate_mitigation, noise_app_ids, serve_predictor, MitigationOutcome,
    };
    pub use crate::predict::{family_spec, train_and_evaluate, EvalReport, Predictor};
    pub use crate::report::{summarize, RunReport};
    pub use crate::scenario::{completion_slowdown, target_duration, InterferenceSpec, Scenario};
    pub use qi_control::{
        ControlLoop, ControlLoopBuilder, GuidedThrottle, Hysteresis, MitigationPolicy,
        UniformThrottle, WindowObservation,
    };
    pub use qi_faults::{FaultEvent, FaultPlan, RetryPolicy};
    pub use qi_ml::anomaly::{AnomalyScorer, AnomalyVerdict, ForestConfig, IsolationForest};
    pub use qi_ml::train::TrainConfig;
    pub use qi_monitor::features::{FeatureAvailability, FeatureConfig, Imputation};
    pub use qi_monitor::sampler::{AdaptiveSampler, SamplerConfig, SamplerStats};
    pub use qi_monitor::schema::{FeatureSchema, SCHEMA_VERSION};
    pub use qi_monitor::window::WindowConfig;
    pub use qi_pfs::cluster::{Cluster, ClusterBuilder};
    pub use qi_pfs::config::ClusterConfig;
    pub use qi_pfs::control::{ControlDirective, DirectiveRecord};
    pub use qi_pfs::ids::AppId;
    pub use qi_pfs::ops::RunTrace;
    pub use qi_serve::{PredictService, ShardedServeEngine};
    pub use qi_simkit::QiError;
    pub use qi_workloads::registry::WorkloadKind;
}

pub use prelude::*;
