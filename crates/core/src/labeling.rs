//! Ground-truth labelling (paper §III-D).
//!
//! The degradation level of a time window is the average, over the
//! target's operations completing in that window, of
//! `iotime_interfered / iotime_baseline`, where the baseline duration of
//! an operation is looked up by its `(rank, sequence)` identity from the
//! standalone execution. Levels are then bucketed into severity bins
//! (binary `<2 / >=2`, or the mild/moderate/severe 3-bin split of Fig. 4).

use std::collections::HashMap;

use qi_monitor::window::WindowConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;

/// Severity bin thresholds, ascending. `n+1` bins for `n` thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct Bins(pub Vec<f64>);

impl Bins {
    /// The paper's binary split at 2×.
    pub fn binary() -> Self {
        Bins(vec![2.0])
    }

    /// The paper's 3-class split (mild < 2×, moderate 2-5×, severe ≥ 5×),
    /// after Lu et al. (Perseus).
    pub fn three_class() -> Self {
        Bins(vec![2.0, 5.0])
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.0.len() + 1
    }

    /// Bin index of a degradation level.
    pub fn classify(&self, level: f64) -> usize {
        self.0.iter().take_while(|&&t| level >= t).count()
    }

    /// Human-readable bin labels.
    pub fn labels(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.n_classes());
        let mut lo: Option<f64> = None;
        for &t in &self.0 {
            out.push(match lo {
                None => format!("<{t}x"),
                Some(l) => format!("{l}-{t}x"),
            });
            lo = Some(t);
        }
        out.push(format!(">={}x", lo.unwrap_or(0.0)));
        out
    }
}

/// Baseline operation durations, keyed by `(rank, seq)`.
pub struct BaselineIndex {
    durations: HashMap<(u32, u64), f64>,
}

impl BaselineIndex {
    /// Index the target's operations from a baseline trace.
    pub fn new(baseline: &RunTrace, target: AppId) -> Self {
        let durations = baseline
            .ops_of(target)
            .map(|o| ((o.token.rank, o.token.seq), o.duration().as_secs_f64()))
            .collect();
        BaselineIndex { durations }
    }

    /// Number of indexed operations.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// True when no operation was indexed.
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Baseline duration of one operation, if it was matched.
    pub fn duration_of(&self, rank: u32, seq: u64) -> Option<f64> {
        self.durations.get(&(rank, seq)).copied()
    }
}

/// Per-window degradation level of `target` in the interfered `run`.
///
/// Returns `window index → level`. Windows where the target completed no
/// matched operation are absent. Baseline durations below `min_base`
/// (numerical floor) are clamped.
pub fn window_degradation(
    baseline: &BaselineIndex,
    run: &RunTrace,
    target: AppId,
    wcfg: WindowConfig,
) -> HashMap<u64, f64> {
    const MIN_BASE: f64 = 1e-7;
    let mut acc: HashMap<u64, (f64, u64)> = HashMap::new();
    for op in run.ops_of(target) {
        let Some(base) = baseline.duration_of(op.token.rank, op.token.seq) else {
            continue;
        };
        let ratio = op.duration().as_secs_f64() / base.max(MIN_BASE);
        let w = wcfg.index_of(op.completed);
        let cell = acc.entry(w).or_insert((0.0, 0));
        cell.0 += ratio;
        cell.1 += 1;
    }
    acc.into_iter()
        .map(|(w, (sum, n))| (w, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::OpToken;
    use qi_pfs::ops::{OpKind, OpRecord};
    use qi_simkit::time::SimTime;

    fn op(app: u32, rank: u32, seq: u64, issued_ms: u64, completed_ms: u64) -> OpRecord {
        OpRecord {
            token: OpToken {
                app: AppId(app),
                rank,
                seq,
            },
            kind: OpKind::Read,
            bytes: 1,
            issued: SimTime::from_millis(issued_ms),
            completed: SimTime::from_millis(completed_ms),
        }
    }

    #[test]
    fn bins_classify_levels() {
        let b = Bins::binary();
        assert_eq!(b.n_classes(), 2);
        assert_eq!(b.classify(1.0), 0);
        assert_eq!(b.classify(1.99), 0);
        assert_eq!(b.classify(2.0), 1);
        assert_eq!(b.classify(50.0), 1);
        let t = Bins::three_class();
        assert_eq!(t.n_classes(), 3);
        assert_eq!(t.classify(1.5), 0);
        assert_eq!(t.classify(3.0), 1);
        assert_eq!(t.classify(5.0), 2);
    }

    #[test]
    fn bin_labels_are_readable() {
        assert_eq!(Bins::binary().labels(), vec!["<2x", ">=2x"]);
        assert_eq!(Bins::three_class().labels(), vec!["<2x", "2-5x", ">=5x"]);
    }

    #[test]
    fn degradation_is_mean_ratio_per_window() {
        let mut base = RunTrace::default();
        // Two ops, both 10 ms in the baseline.
        base.ops.push(op(0, 0, 0, 0, 10));
        base.ops.push(op(0, 0, 1, 10, 20));
        let idx = BaselineIndex::new(&base, AppId(0));
        assert_eq!(idx.len(), 2);

        let mut run = RunTrace::default();
        // Interfered: 30 ms and 10 ms, both completing in window 0.
        run.ops.push(op(0, 0, 0, 0, 30));
        run.ops.push(op(0, 0, 1, 100, 110));
        let lv = window_degradation(&idx, &run, AppId(0), WindowConfig::seconds(1));
        assert_eq!(lv.len(), 1);
        // Ratios 3.0 and 1.0 → mean 2.0.
        assert!((lv[&0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn windows_split_by_completion_time() {
        let mut base = RunTrace::default();
        base.ops.push(op(0, 0, 0, 0, 10));
        base.ops.push(op(0, 0, 1, 0, 10));
        let idx = BaselineIndex::new(&base, AppId(0));
        let mut run = RunTrace::default();
        run.ops.push(op(0, 0, 0, 0, 500));
        run.ops.push(op(0, 0, 1, 1000, 1500));
        let lv = window_degradation(&idx, &run, AppId(0), WindowConfig::seconds(1));
        assert_eq!(lv.len(), 2);
        assert!((lv[&0] - 50.0).abs() < 1e-9);
        assert!((lv[&1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unmatched_ops_are_ignored() {
        let base = RunTrace::default();
        let idx = BaselineIndex::new(&base, AppId(0));
        assert!(idx.is_empty());
        let mut run = RunTrace::default();
        run.ops.push(op(0, 0, 0, 0, 10));
        let lv = window_degradation(&idx, &run, AppId(0), WindowConfig::seconds(1));
        assert!(lv.is_empty());
    }

    #[test]
    fn other_apps_do_not_leak() {
        let mut base = RunTrace::default();
        base.ops.push(op(0, 0, 0, 0, 10));
        base.ops.push(op(1, 0, 0, 0, 10));
        let idx = BaselineIndex::new(&base, AppId(0));
        assert_eq!(idx.len(), 1);
        let mut run = RunTrace::default();
        run.ops.push(op(1, 0, 0, 0, 99));
        let lv = window_degradation(&idx, &run, AppId(0), WindowConfig::seconds(1));
        assert!(lv.is_empty());
    }
}
