//! Prediction-guided interference mitigation — the use case the paper
//! motivates ("with such a capability, users can develop more effective
//! methods to mitigate such impacts", §II-B) but leaves to future work.
//!
//! The loop: run the target under interference once, let the trained
//! predictor flag the windows whose degradation bin is at or above a
//! threshold, turn those windows into a [`ThrottleSchedule`], and replay
//! the scenario with the interference rate-limited during exactly those
//! windows (a token-bucket-style actuation, after Qian et al.'s TBF
//! scheduler which the paper cites as mitigation machinery). The outcome
//! quantifies both sides of the trade: how much the target recovered and
//! how much interference throughput the throttling cost.

use std::collections::HashSet;
use std::sync::Arc;

use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_workloads::common::ThrottleSchedule;

use crate::predict::Predictor;
use crate::scenario::{target_duration, Scenario};

/// What prediction-guided throttling achieved on one scenario.
#[derive(Clone, Debug)]
pub struct MitigationOutcome {
    /// Target duration with no interference at all (the ideal), seconds.
    pub baseline_s: f64,
    /// Target duration under unmitigated interference, seconds.
    pub unmitigated_s: f64,
    /// Target duration with prediction-guided throttling, seconds.
    pub mitigated_s: f64,
    /// Windows the predictor flagged (and the schedule throttled).
    pub throttled_windows: HashSet<u64>,
    /// Interference operations completed without mitigation.
    pub noise_ops_unmitigated: usize,
    /// Interference operations completed with mitigation (its cost).
    pub noise_ops_mitigated: usize,
}

impl MitigationOutcome {
    /// Fraction of the interference-induced slowdown removed:
    /// 1.0 = target fully recovered its baseline, 0.0 = no effect.
    pub fn recovered_fraction(&self) -> f64 {
        let hurt = self.unmitigated_s - self.baseline_s;
        if hurt <= 0.0 {
            return 0.0;
        }
        ((self.unmitigated_s - self.mitigated_s) / hurt).clamp(-1.0, 1.0)
    }

    /// Fraction of interference throughput lost to the throttle.
    pub fn noise_cost_fraction(&self) -> f64 {
        if self.noise_ops_unmitigated == 0 {
            return 0.0;
        }
        1.0 - self.noise_ops_mitigated as f64 / self.noise_ops_unmitigated as f64
    }
}

fn noise_ops(trace: &RunTrace, target: AppId) -> usize {
    trace.ops.iter().filter(|o| o.token.app != target).count()
}

/// Run the predict→throttle→replay loop on `scenario` (which must have
/// interference configured). `min_bin` is the severity bin at which the
/// throttle engages (1 = every window predicted ≥2x).
pub fn prediction_guided_throttling(
    scenario: &Scenario,
    predictor: &mut Predictor,
    min_bin: usize,
) -> Result<MitigationOutcome, QiError> {
    if scenario.interference.is_empty() {
        return Err(QiError::Config(
            "mitigation needs interference to mitigate".into(),
        ));
    }
    // Ideal and unmitigated executions.
    let (app, baseline) = scenario.run_baseline()?;
    let (_, unmitigated) = scenario.run()?;
    let baseline_s = duration_of(&baseline, app, "baseline")?;
    let unmitigated_s = duration_of(&unmitigated, app, "unmitigated target")?;

    // Predict per window and build the throttle plan.
    let predictions = predictor.predict_run(&unmitigated, app)?;
    let throttled_windows: HashSet<u64> = predictions
        .iter()
        .filter(|(_, bin)| *bin >= min_bin)
        .map(|(w, _)| *w)
        .collect();

    // Replay with the interference rate-limited in those windows.
    let mut mitigated_scenario = scenario.clone();
    mitigated_scenario.noise_throttle = Some(Arc::new(ThrottleSchedule::new(
        predictor.window_config().window,
        throttled_windows.clone(),
    )));
    let (_, mitigated) = mitigated_scenario.run()?;
    let mitigated_s = duration_of(&mitigated, app, "mitigated target")?;

    Ok(MitigationOutcome {
        baseline_s,
        unmitigated_s,
        mitigated_s,
        throttled_windows,
        noise_ops_unmitigated: noise_ops(&unmitigated, app),
        noise_ops_mitigated: noise_ops(&mitigated, app),
    })
}

/// Target duration in seconds, or [`QiError::Incomplete`] if `what`
/// never finished.
fn duration_of(trace: &RunTrace, app: AppId, what: &str) -> Result<f64, QiError> {
    target_duration(trace, app)
        .map(|d| d.as_secs_f64())
        .ok_or_else(|| QiError::Incomplete(format!("{what} run hit the deadline")))
}

/// Uniform server-side TBF baseline: rate-limit every interference
/// application's data path to `bytes_per_sec` for the WHOLE run — the
/// "uniform treatment" the paper calls inefficient (§II-A). Returns the
/// same outcome shape as the prediction-guided loop so the two can be
/// compared directly.
pub fn uniform_tbf_throttling(
    scenario: &Scenario,
    bytes_per_sec: f64,
) -> Result<MitigationOutcome, QiError> {
    if scenario.interference.is_empty() {
        return Err(QiError::Config(
            "mitigation needs interference to mitigate".into(),
        ));
    }
    let (app, baseline) = scenario.run_baseline()?;
    let (_, unmitigated) = scenario.run()?;
    let baseline_s = duration_of(&baseline, app, "baseline")?;
    let unmitigated_s = duration_of(&unmitigated, app, "unmitigated target")?;
    let n_noise_apps: u32 = scenario.interference.iter().map(|i| i.instances).sum();
    let (_, mitigated) = scenario.run_with(|cl| {
        for a in 1..=n_noise_apps {
            cl.set_app_rate_limit(qi_pfs::ids::AppId(a), bytes_per_sec);
        }
    })?;
    let mitigated_s = duration_of(&mitigated, app, "mitigated target")?;
    Ok(MitigationOutcome {
        baseline_s,
        unmitigated_s,
        mitigated_s,
        throttled_windows: HashSet::new(),
        noise_ops_unmitigated: noise_ops(&unmitigated, app),
        noise_ops_mitigated: noise_ops(&mitigated, app),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::predict::train_and_evaluate;
    use crate::scenario::InterferenceSpec;
    use crate::{TrainConfig, WorkloadKind};
    use qi_pfs::config::ClusterConfig;

    #[test]
    fn throttling_recovers_target_performance() {
        // Train a quick model on the smoke grid.
        let mut spec = DatasetSpec::smoke();
        spec.seeds = (1..=4).collect();
        let tcfg = TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        };
        let (_, mut predictor, _) = train_and_evaluate(&spec, &tcfg, 3).expect("pipeline runs");

        // A read-vs-read scenario where mitigation has room to help.
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyRead, 55)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyRead,
            instances: 2,
            ranks: 2,
        });
        let outcome =
            prediction_guided_throttling(&scenario, &mut predictor, 1).expect("mitigation runs");
        assert!(outcome.unmitigated_s > outcome.baseline_s);
        // Whatever the model flags, the mitigated run must not be slower
        // than the unmitigated one (throttling can only help the target).
        assert!(
            outcome.mitigated_s <= outcome.unmitigated_s * 1.05,
            "mitigation hurt the target: {outcome:?}"
        );
        // And if any window was throttled, the interference paid for it.
        if !outcome.throttled_windows.is_empty() {
            assert!(
                outcome.noise_ops_mitigated <= outcome.noise_ops_unmitigated,
                "{outcome:?}"
            );
        }
    }

    #[test]
    fn uniform_tbf_helps_the_target_but_taxes_the_noise() {
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyWrite, 57)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyWrite,
            instances: 2,
            ranks: 2,
        });
        let outcome = uniform_tbf_throttling(&scenario, 5.0e6).expect("mitigation runs");
        assert!(outcome.unmitigated_s > outcome.baseline_s);
        assert!(
            outcome.mitigated_s < outcome.unmitigated_s,
            "uniform TBF did not help: {outcome:?}"
        );
        assert!(
            outcome.noise_cost_fraction() > 0.1,
            "uniform TBF should visibly tax the noise: {outcome:?}"
        );
    }

    #[test]
    fn full_throttle_recovers_most_of_the_slowdown() {
        // With a perfect oracle (throttle every window), the target must
        // recover the bulk of its lost performance — an upper bound on
        // what prediction-guided throttling can deliver.
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyRead, 56)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyRead,
            instances: 2,
            ranks: 2,
        });
        let (app, baseline) = scenario.run_baseline().expect("baseline runs");
        let (_, unmitigated) = scenario.run().expect("interfered run");
        let base = target_duration(&baseline, app).expect("done").as_secs_f64();
        let hurt = target_duration(&unmitigated, app)
            .expect("done")
            .as_secs_f64();
        assert!(hurt > base * 1.2, "scenario not interfered enough");

        let mut all = scenario.clone();
        all.noise_throttle = Some(Arc::new(ThrottleSchedule::new(
            qi_simkit::SimDuration::from_secs(1),
            (0..10_000u64).collect(),
        )));
        let (_, mitigated) = all.run().expect("throttled run");
        let fixed = target_duration(&mitigated, app)
            .expect("done")
            .as_secs_f64();
        assert!(
            (fixed - base) < 0.5 * (hurt - base),
            "oracle throttle recovered too little: base {base} hurt {hurt} fixed {fixed}"
        );
    }
}
