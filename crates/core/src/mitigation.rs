//! Prediction-guided interference mitigation — the use case the paper
//! motivates ("with such a capability, users can develop more effective
//! methods to mitigate such impacts", §II-B) but leaves to future work.
//!
//! This is the *closed-loop* evaluation harness over the `qi-control`
//! control plane: build a [`ControlLoop`] (a prediction-guided
//! [`GuidedThrottle`][qi_control::GuidedThrottle], the always-on
//! [`UniformThrottle`][qi_control::UniformThrottle] baseline, or any
//! custom [`MitigationPolicy`][qi_control::MitigationPolicy]), install
//! it on the scenario's cluster, and measure both sides of the trade —
//! how much of the interference-induced slowdown the target recovered,
//! and how much background throughput the actuation cost. Unlike the
//! retired one-shot schedule replay, the controller decides *online*,
//! window by window, from live predictions served inside the simulated
//! run; every decision it took is returned verbatim in
//! [`MitigationOutcome::directives`].

use std::collections::{BTreeMap, HashSet};

use qi_control::ControlLoop;
use qi_ml::serialize::model_to_text;
use qi_monitor::window::WindowConfig;
use qi_pfs::control::{ControlDirective, DirectiveRecord};
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_serve::{ModelRegistry, OverloadPolicy, ServeConfig, ShardedServeEngine};
use qi_simkit::error::QiError;
use qi_telemetry::MetricsSnapshot;

use crate::predict::Predictor;
use crate::scenario::{target_duration, Scenario};

/// What a mitigation controller achieved on one scenario.
#[derive(Clone, Debug)]
pub struct MitigationOutcome {
    /// Target duration with no interference at all (the ideal), seconds.
    pub baseline_s: f64,
    /// Target duration under unmitigated interference, seconds.
    pub unmitigated_s: f64,
    /// Target duration with the controller installed, seconds.
    pub mitigated_s: f64,
    /// Windows during which at least one noise app was rate-limited
    /// (derived from the applied directive sequence).
    pub throttled_windows: HashSet<u64>,
    /// Interference operations completed without mitigation.
    pub noise_ops_unmitigated: usize,
    /// Interference operations completed with mitigation (its cost).
    pub noise_ops_mitigated: usize,
    /// Every directive the controller applied, in application order.
    pub directives: Vec<DirectiveRecord>,
    /// The mitigated run's full telemetry snapshot (`pfs.control.*`
    /// actuator counters, `control.*` loop counters and per-directive
    /// histograms, `control.gate.*` hysteresis counters) — byte-stable,
    /// so closed-loop results are reproducible from telemetry alone.
    pub metrics: MetricsSnapshot,
}

impl MitigationOutcome {
    /// Fraction of the interference-induced slowdown removed:
    /// 1.0 = target fully recovered its baseline, 0.0 = no effect,
    /// negative = the mitigation hurt the target (clamped at -1.0).
    ///
    /// Degenerate-input convention: when there was no slowdown to
    /// recover (`unmitigated <= baseline`), or any duration is not
    /// finite, there is no meaningful fraction and this returns 0.0 —
    /// never NaN or ±inf.
    pub fn recovered_fraction(&self) -> f64 {
        let hurt = self.unmitigated_s - self.baseline_s;
        if !hurt.is_finite() || hurt <= 0.0 {
            return 0.0;
        }
        let frac = (self.unmitigated_s - self.mitigated_s) / hurt;
        if !frac.is_finite() {
            return 0.0;
        }
        frac.clamp(-1.0, 1.0)
    }

    /// Fraction of interference throughput lost to the mitigation:
    /// 0.0 = the noise was untouched, 1.0 = it was starved completely,
    /// negative = the noise somehow sped up (clamped at -1.0).
    ///
    /// Degenerate-input convention: with no unmitigated noise
    /// operations there is no throughput to lose and this returns 0.0.
    pub fn noise_cost_fraction(&self) -> f64 {
        if self.noise_ops_unmitigated == 0 {
            return 0.0;
        }
        let frac = 1.0 - self.noise_ops_mitigated as f64 / self.noise_ops_unmitigated as f64;
        frac.clamp(-1.0, 1.0)
    }
}

fn noise_ops(trace: &RunTrace, target: AppId) -> usize {
    trace.ops.iter().filter(|o| o.token.app != target).count()
}

/// Target duration in seconds, or [`QiError::Incomplete`] if `what`
/// never finished.
fn duration_of(trace: &RunTrace, app: AppId, what: &str) -> Result<f64, QiError> {
    target_duration(trace, app)
        .map(|d| d.as_secs_f64())
        .ok_or_else(|| QiError::Incomplete(format!("{what} run hit the deadline")))
}

/// The interference applications a scenario deploys: the target is app
/// 0, each interference instance gets the next id in deployment order.
pub fn noise_app_ids(scenario: &Scenario) -> Vec<AppId> {
    let n: u32 = scenario.interference.iter().map(|i| i.instances).sum();
    (1..=n).map(AppId).collect()
}

/// Wrap a trained [`Predictor`] as a sharded online prediction service
/// ready to drive a [`ControlLoop`]: its model enters a fresh
/// [`ModelRegistry`] through the QIMODEL text form (the same
/// serialization a deployment would ship) and is activated as version
/// 1, with a per-window batching configuration sized to `tenants`.
pub fn serve_predictor(
    predictor: Predictor,
    tenants: &[AppId],
    n_shards: usize,
) -> Result<ShardedServeEngine, QiError> {
    let window = predictor.window_config();
    let model = predictor.into_model();
    let mut registry = ModelRegistry::new(model.shape(), model.schema().clone());
    registry.load_text(1, &model_to_text(&model))?;
    registry.activate(1)?;
    let cfg = ServeConfig {
        max_batch: tenants.len().max(1),
        max_delay: window.window,
        queue_cap: 4 * tenants.len().max(1),
        admission: None,
        overload: OverloadPolicy::Shed,
        tenants: tenants.to_vec(),
        threads: None,
    };
    ShardedServeEngine::new(cfg, registry, n_shards)
}

/// Windows during which at least one app had a rate limit in force. A
/// limit applied at the close of window `w` acts from window `w + 1`
/// until the window its clearing directive closes (inclusive), or the
/// end of the run.
fn throttled_windows(trace: &RunTrace, wcfg: WindowConfig) -> HashSet<u64> {
    let mut engaged: BTreeMap<u32, u64> = BTreeMap::new();
    let mut out = HashSet::new();
    for rec in &trace.directives {
        match &rec.directive {
            ControlDirective::RateLimit { app, .. } => {
                engaged.entry(app.0).or_insert(rec.window);
            }
            ControlDirective::ClearRateLimit { app } => {
                if let Some(start) = engaged.remove(&app.0) {
                    out.extend(start + 1..=rec.window);
                }
            }
            _ => {}
        }
    }
    let end_window = wcfg.index_of(trace.end);
    for start in engaged.into_values() {
        out.extend(start + 1..=end_window);
    }
    out
}

/// Run the closed loop on `scenario` (which must have interference
/// configured): execute the ideal baseline, the unmitigated run, and a
/// run with `controller` installed on the cluster, then quantify both
/// sides of the trade. The controller decides online — predictions are
/// served at window boundaries *inside* the mitigated run, not replayed
/// from a previous execution.
pub fn evaluate_mitigation(
    scenario: &Scenario,
    controller: ControlLoop,
) -> Result<MitigationOutcome, QiError> {
    if scenario.interference.is_empty() {
        return Err(QiError::Config(
            "mitigation needs interference to mitigate".into(),
        ));
    }
    let wcfg = controller.window_config();
    let (app, baseline) = scenario.run_baseline()?;
    let (_, unmitigated) = scenario.run()?;
    let baseline_s = duration_of(&baseline, app, "baseline")?;
    let unmitigated_s = duration_of(&unmitigated, app, "unmitigated target")?;

    let (_, mitigated) = scenario.run_with(|cl| cl.install_controller(Box::new(controller)))?;
    let mitigated_s = duration_of(&mitigated, app, "mitigated target")?;

    Ok(MitigationOutcome {
        baseline_s,
        unmitigated_s,
        mitigated_s,
        throttled_windows: throttled_windows(&mitigated, wcfg),
        noise_ops_unmitigated: noise_ops(&unmitigated, app),
        noise_ops_mitigated: noise_ops(&mitigated, app),
        directives: mitigated.directives.clone(),
        metrics: mitigated.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::predict::train_and_evaluate;
    use crate::scenario::InterferenceSpec;
    use crate::{TrainConfig, WorkloadKind};
    use qi_control::{GuidedThrottle, UniformThrottle};
    use qi_pfs::config::ClusterConfig;

    fn outcome_shell() -> MitigationOutcome {
        MitigationOutcome {
            baseline_s: 10.0,
            unmitigated_s: 20.0,
            mitigated_s: 15.0,
            throttled_windows: HashSet::new(),
            noise_ops_unmitigated: 100,
            noise_ops_mitigated: 80,
            directives: Vec::new(),
            metrics: MetricsSnapshot::new(),
        }
    }

    #[test]
    fn fractions_on_healthy_inputs() {
        let o = outcome_shell();
        assert!((o.recovered_fraction() - 0.5).abs() < 1e-12);
        assert!((o.noise_cost_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recovered_fraction_degenerate_inputs_never_nan() {
        // No slowdown to recover: unmitigated == baseline.
        let mut o = outcome_shell();
        o.unmitigated_s = o.baseline_s;
        assert_eq!(o.recovered_fraction(), 0.0);

        // Unmitigated FASTER than baseline (measurement noise).
        o.unmitigated_s = o.baseline_s - 1.0;
        assert_eq!(o.recovered_fraction(), 0.0);

        // Non-finite durations (a run that produced garbage upstream).
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut o = outcome_shell();
            o.unmitigated_s = bad;
            let f = o.recovered_fraction();
            assert!(f.is_finite(), "unmitigated={bad}: got {f}");
            let mut o = outcome_shell();
            o.mitigated_s = bad;
            let f = o.recovered_fraction();
            assert!(f.is_finite(), "mitigated={bad}: got {f}");
        }

        // Mitigation made things worse: clamped, not unbounded.
        let mut o = outcome_shell();
        o.mitigated_s = 1000.0;
        assert_eq!(o.recovered_fraction(), -1.0);
    }

    #[test]
    fn noise_cost_fraction_degenerate_inputs_never_nan() {
        // No noise ops at all (e.g. the noise never got scheduled).
        let mut o = outcome_shell();
        o.noise_ops_unmitigated = 0;
        o.noise_ops_mitigated = 0;
        assert_eq!(o.noise_cost_fraction(), 0.0);

        // Noise sped up under mitigation: negative but clamped.
        let mut o = outcome_shell();
        o.noise_ops_mitigated = 1000;
        assert_eq!(o.noise_cost_fraction(), -1.0);

        // Noise starved completely.
        let mut o = outcome_shell();
        o.noise_ops_mitigated = 0;
        assert_eq!(o.noise_cost_fraction(), 1.0);
    }

    #[test]
    fn evaluate_requires_interference() {
        let scenario = Scenario::baseline(WorkloadKind::IorEasyRead, 1);
        let ctl = ControlLoop::builder()
            .policy(UniformThrottle::new(vec![AppId(1)], 1e6).expect("valid"))
            .window(WindowConfig::seconds(1))
            .build()
            .expect("valid loop");
        let err = evaluate_mitigation(&scenario, ctl).expect_err("no interference");
        assert!(err.to_string().contains("interference"), "{err}");
    }

    #[test]
    fn guided_throttling_recovers_target_performance() {
        // Train a quick model on the smoke grid, at 100 ms windows so
        // the online loop gets several decision points inside the short
        // smoke-scale target run.
        let mut spec = DatasetSpec::smoke();
        spec.seeds = (1..=4).collect();
        spec.window = WindowConfig::millis(100);
        let tcfg = TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        };
        let (_, predictor, _) = train_and_evaluate(&spec, &tcfg, 3).expect("pipeline runs");

        // A metadata target crushed ~7-12x per window by bulk writers:
        // strong enough interference that the model reliably flags it.
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::MdtHardWrite, 55)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyWrite,
            instances: 2,
            ranks: 2,
        });
        let target = AppId(0);
        let noise = noise_app_ids(&scenario);
        let mut tenants = vec![target];
        tenants.extend(noise.iter().copied());
        let service = serve_predictor(predictor, &tenants, 2).expect("service builds");
        let ctl = ControlLoop::builder()
            .predictor(service)
            .policy(GuidedThrottle::new(target, noise, 1, 5.0e6).expect("valid policy"))
            .n_devices(scenario.cluster.n_devices())
            .build()
            .expect("valid loop");
        let outcome = evaluate_mitigation(&scenario, ctl).expect("mitigation runs");
        assert!(outcome.unmitigated_s > outcome.baseline_s);
        // The loop must actually engage: predictions flagged hot windows
        // and the gate let rate limits through to the actuators.
        assert!(!outcome.directives.is_empty(), "loop never acted");
        assert!(!outcome.throttled_windows.is_empty(), "{outcome:?}");
        // Guided throttling must recover a real share of the slowdown
        // while taxing the background far less than always-on throttling
        // would (its cost stays well under half the noise throughput).
        assert!(
            outcome.recovered_fraction() > 0.3,
            "recovered too little: {outcome:?}"
        );
        assert!(
            outcome.noise_cost_fraction() < 0.5,
            "taxed the background too hard: {outcome:?}"
        );
        assert!(
            outcome.noise_ops_mitigated <= outcome.noise_ops_unmitigated,
            "{outcome:?}"
        );
        // Every applied directive shows up in both the directive log
        // and the actuator telemetry.
        let applied = outcome.metrics.counter("pfs.control.applied");
        assert_eq!(applied, Some(outcome.directives.len() as u64));
        assert!(outcome.metrics.counter("control.predictions").unwrap_or(0) > 0);
    }

    #[test]
    fn uniform_throttle_helps_the_target_but_taxes_the_noise() {
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyWrite, 57)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyWrite,
            instances: 2,
            ranks: 2,
        });
        let ctl = ControlLoop::builder()
            .policy(UniformThrottle::new(noise_app_ids(&scenario), 5.0e6).expect("valid policy"))
            .window(WindowConfig::seconds(1))
            .build()
            .expect("valid loop");
        let outcome = evaluate_mitigation(&scenario, ctl).expect("mitigation runs");
        assert!(outcome.unmitigated_s > outcome.baseline_s);
        assert!(
            outcome.mitigated_s < outcome.unmitigated_s,
            "uniform throttle did not help: {outcome:?}"
        );
        assert!(
            outcome.noise_cost_fraction() > 0.1,
            "uniform throttle should visibly tax the noise: {outcome:?}"
        );
        // The uniform policy engages once per noise app and never
        // releases, so the throttled set covers the rest of the run.
        assert!(!outcome.throttled_windows.is_empty());
    }

    #[test]
    fn aggressive_uniform_throttle_recovers_most_of_the_slowdown() {
        // With an oracle-aggressive always-on throttle, the target must
        // recover the bulk of its lost performance — an upper bound on
        // what prediction-guided throttling can deliver.
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyRead, 56)
        }
        .with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyRead,
            instances: 2,
            ranks: 2,
        });
        let ctl = ControlLoop::builder()
            .policy(UniformThrottle::new(noise_app_ids(&scenario), 1.0e6).expect("valid policy"))
            .window(WindowConfig::seconds(1))
            .build()
            .expect("valid loop");
        let outcome = evaluate_mitigation(&scenario, ctl).expect("mitigation runs");
        assert!(
            outcome.unmitigated_s > outcome.baseline_s * 1.2,
            "scenario not interfered enough: {outcome:?}"
        );
        assert!(
            outcome.recovered_fraction() > 0.5,
            "oracle throttle recovered too little: {outcome:?}"
        );
    }
}
