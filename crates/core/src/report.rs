//! Post-run summaries: per-application and per-device digests of a
//! trace, for quick inspection in examples, benches, and debugging.

use std::collections::HashMap;

use qi_pfs::ids::{AppId, DeviceId};
use qi_pfs::ops::{OpKind, RunTrace};
use qi_simkit::table::{fmt_bytes, fmt_f64, AsciiTable};

/// Per-application digest.
#[derive(Clone, Debug, Default)]
pub struct AppSummary {
    /// Completed operations by class.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Completed metadata operations.
    pub metas: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total I/O time (sum of op durations), seconds.
    pub io_time_s: f64,
    /// Mean operation latency, seconds.
    pub mean_latency_s: f64,
    /// Completion time, if the app finished.
    pub completed_at_s: Option<f64>,
}

/// Per-device digest derived from the final monitor sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceSummary {
    /// Completed requests (reads + writes).
    pub requests: u64,
    /// Bytes read from the media.
    pub bytes_read: u64,
    /// Bytes written to the media.
    pub bytes_written: u64,
    /// Requests merged in the queue.
    pub merges: u64,
    /// Fraction of wall time the media was busy.
    pub utilization: f64,
}

/// A whole-run digest.
pub struct RunReport {
    /// Per application (indexed by AppId).
    pub apps: HashMap<AppId, AppSummary>,
    /// Per device.
    pub devices: HashMap<DeviceId, DeviceSummary>,
    /// Simulated run length, seconds.
    pub wall_s: f64,
}

/// Summarise a finished run.
pub fn summarize(trace: &RunTrace) -> RunReport {
    let mut apps: HashMap<AppId, AppSummary> = HashMap::new();
    for op in &trace.ops {
        let a = apps.entry(op.token.app).or_default();
        match op.kind {
            OpKind::Read => {
                a.reads += 1;
                a.bytes_read += op.bytes;
            }
            OpKind::Write => {
                a.writes += 1;
                a.bytes_written += op.bytes;
            }
            _ => a.metas += 1,
        }
        a.io_time_s += op.duration().as_secs_f64();
    }
    for (id, a) in apps.iter_mut() {
        let n = a.reads + a.writes + a.metas;
        a.mean_latency_s = if n > 0 { a.io_time_s / n as f64 } else { 0.0 };
        a.completed_at_s = trace.completion_of(*id).map(|t| t.as_secs_f64());
    }
    let wall_s = trace.end.as_secs_f64();
    let mut devices = HashMap::new();
    // The last sample of each device carries the cumulative counters.
    for s in &trace.samples {
        let c = &s.counters;
        devices.insert(
            s.dev,
            DeviceSummary {
                requests: c.reads_completed + c.writes_completed,
                bytes_read: c.sectors_read * qi_pfs::config::SECTOR_SIZE,
                bytes_written: c.sectors_written * qi_pfs::config::SECTOR_SIZE,
                merges: c.read_merges + c.write_merges,
                utilization: if wall_s > 0.0 {
                    (c.busy_ns as f64 / 1e9 / wall_s).min(1.0)
                } else {
                    0.0
                },
            },
        );
    }
    RunReport {
        apps,
        devices,
        wall_s,
    }
}

impl RunReport {
    /// Render the per-application table.
    pub fn render_apps(&self, names: &dyn Fn(AppId) -> String) -> String {
        let mut t = AsciiTable::new(vec![
            "app",
            "reads",
            "writes",
            "metas",
            "read",
            "written",
            "io time (s)",
            "mean lat (ms)",
            "done (s)",
        ]);
        let mut ids: Vec<&AppId> = self.apps.keys().collect();
        ids.sort();
        for id in ids {
            let a = &self.apps[id];
            t.add_row(vec![
                names(*id),
                a.reads.to_string(),
                a.writes.to_string(),
                a.metas.to_string(),
                fmt_bytes(a.bytes_read),
                fmt_bytes(a.bytes_written),
                fmt_f64(a.io_time_s, 3),
                fmt_f64(a.mean_latency_s * 1e3, 3),
                a.completed_at_s
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        t.render()
    }

    /// Render the per-device table.
    pub fn render_devices(&self) -> String {
        let mut t = AsciiTable::new(vec![
            "device", "requests", "read", "written", "merges", "util",
        ]);
        let mut ids: Vec<&DeviceId> = self.devices.keys().collect();
        ids.sort();
        let n = ids.len();
        for (i, id) in ids.into_iter().enumerate() {
            let d = &self.devices[id];
            let name = if i + 1 == n {
                "MDT".to_string()
            } else {
                format!("OST{}", id.0)
            };
            t.add_row(vec![
                name,
                d.requests.to_string(),
                fmt_bytes(d.bytes_read),
                fmt_bytes(d.bytes_written),
                d.merges.to_string(),
                format!("{:.1}%", d.utilization * 100.0),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::WorkloadKind;
    use qi_pfs::config::ClusterConfig;

    fn run() -> (AppId, RunTrace) {
        let mut cluster = ClusterConfig::small();
        // Sample fast enough that even a sub-second run yields device rows.
        cluster.sample_interval = qi_simkit::SimDuration::from_millis(50);
        let s = Scenario {
            cluster,
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(WorkloadKind::IorEasyWrite, 4)
        };
        s.run().expect("small scenario runs")
    }

    #[test]
    fn summary_counts_match_trace() {
        let (app, trace) = run();
        let report = summarize(&trace);
        let a = &report.apps[&app];
        let writes = trace
            .ops_of(app)
            .filter(|o| o.kind == OpKind::Write)
            .count() as u64;
        assert_eq!(a.writes, writes);
        assert!(a.bytes_written > 0);
        assert!(a.completed_at_s.is_some());
        assert!(a.mean_latency_s > 0.0);
        assert!(report.wall_s > 0.0);
    }

    #[test]
    fn device_summary_reflects_written_bytes() {
        let (app, trace) = run();
        let report = summarize(&trace);
        let total_dev_written: u64 = report.devices.values().map(|d| d.bytes_written).sum();
        let app_written: u64 = trace.ops_of(app).map(|o| o.bytes).sum();
        // Device-level writes may lag the app view (unflushed dirty data
        // at run end) but can never exceed what was rounded to sectors.
        assert!(total_dev_written <= app_written + 4096 * trace.ops.len() as u64);
        for d in report.devices.values() {
            assert!(d.utilization >= 0.0 && d.utilization <= 1.0);
        }
    }

    #[test]
    fn render_contains_expected_rows() {
        let (app, trace) = run();
        let report = summarize(&trace);
        let apps = report.render_apps(&|id: AppId| format!("app{}", id.0));
        assert!(apps.contains(&format!("app{}", app.0)));
        let devs = report.render_devices();
        assert!(devs.contains("OST0"));
        assert!(devs.contains("MDT"));
        assert!(devs.contains('%'));
    }
}
