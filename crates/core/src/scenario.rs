//! Scenario construction and execution: a *target* workload measured
//! alone (baseline) or together with looping *interference* workloads on
//! disjoint client nodes — the paper's data-collection methodology
//! (§III-D: "interference workloads always run on separate nodes from
//! the original application").

use qi_faults::FaultPlan;
use qi_pfs::cluster::Cluster;
use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::{AppId, NodeId};
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_simkit::time::{SimDuration, SimTime};
use qi_workloads::common::deploy_delayed;
use qi_workloads::registry::WorkloadKind;

/// One interference source: `instances` concurrent looping copies of a
/// workload, each with `ranks` ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterferenceSpec {
    /// Which workload produces the background noise.
    pub kind: WorkloadKind,
    /// Concurrent instances kept active (the paper keeps 3).
    pub instances: u32,
    /// Ranks per instance.
    pub ranks: u32,
}

/// A complete experiment scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The measured application.
    pub target: WorkloadKind,
    /// Ranks of the target application.
    pub target_ranks: u32,
    /// Background noise (empty = baseline).
    pub interference: Vec<InterferenceSpec>,
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Base seed: controls workload scripts and MDS randomness.
    pub seed: u64,
    /// Safety stop if the target never completes (measured after warmup).
    pub deadline: SimDuration,
    /// Use the reduced-scale workload variants (tests/CI).
    pub small: bool,
    /// How long interference runs before the target starts, letting the
    /// system reach steady state (caches filled, queues deep) — Table I
    /// keeps background noise active for the entirety of measured runs.
    pub warmup: SimDuration,
    /// Optional fault plan injected into the cluster (degraded servers,
    /// lossy links, …). `None` = healthy hardware. The baseline variant
    /// strips it, so degradation labels measure the faulted run against
    /// healthy hardware.
    pub fault_plan: Option<FaultPlan>,
}

impl Scenario {
    /// A baseline scenario (no interference) at default scale.
    pub fn baseline(target: WorkloadKind, seed: u64) -> Self {
        Scenario {
            target,
            target_ranks: 4,
            interference: Vec::new(),
            cluster: ClusterConfig::default(),
            seed,
            deadline: SimDuration::from_secs(600),
            small: false,
            warmup: SimDuration::from_secs(6),
            fault_plan: None,
        }
    }

    /// Same scenario with interference added.
    pub fn with_interference(mut self, spec: InterferenceSpec) -> Self {
        self.interference.push(spec);
        self
    }

    /// Same scenario with a fault plan injected.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The baseline variant of this scenario (interference and faults
    /// stripped: the reference execution is alone on healthy hardware).
    pub fn as_baseline(&self) -> Scenario {
        Scenario {
            interference: Vec::new(),
            fault_plan: None,
            ..self.clone()
        }
    }

    /// Client nodes reserved for the target (the first half).
    pub fn target_nodes(&self) -> Vec<NodeId> {
        let c = self.cluster.client_nodes;
        let take = (c / 2).max(1);
        (0..take).map(NodeId).collect()
    }

    /// Client nodes reserved for interference (the second half).
    pub fn noise_nodes(&self) -> Vec<NodeId> {
        let c = self.cluster.client_nodes;
        let take = (c / 2).max(1);
        (take.min(c - 1)..c).map(NodeId).collect()
    }

    fn build_workload(&self, kind: WorkloadKind) -> std::sync::Arc<dyn qi_workloads::Workload> {
        if self.small {
            kind.build_small()
        } else {
            kind.build()
        }
    }

    /// Execute the scenario. Returns the target's [`AppId`] and the trace.
    ///
    /// The run stops when the target completes (or at the deadline).
    /// Fails if the cluster configuration or fault plan is invalid.
    pub fn run(&self) -> Result<(AppId, RunTrace), QiError> {
        self.run_with(|_| {})
    }

    /// Like [`Scenario::run`], but lets the caller adjust the freshly
    /// built cluster (e.g. inject a fail-slow device) after the
    /// applications are deployed and before the event loop starts.
    pub fn run_with(
        &self,
        prepare: impl FnOnce(&mut Cluster),
    ) -> Result<(AppId, RunTrace), QiError> {
        let mut builder = Cluster::builder()
            .config(self.cluster.clone())
            .seed(self.seed);
        if let Some(plan) = &self.fault_plan {
            builder = builder.fault_plan(plan.clone());
        }
        let mut cl = builder.build()?;
        let target_nodes = self.target_nodes();
        let noise_nodes = self.noise_nodes();
        let target_w = self.build_workload(self.target);
        let warmup = if self.interference.is_empty() {
            SimDuration::ZERO
        } else {
            self.warmup
        };
        let target = deploy_delayed(
            &mut cl,
            &target_w,
            self.target_ranks,
            &target_nodes,
            self.seed,
            false,
            warmup,
        );
        // Spread interference instances over the noise nodes, one node
        // offset per instance so they don't all share a NIC.
        let mut salt = 1u64;
        for spec in &self.interference {
            let w = self.build_workload(spec.kind);
            for inst in 0..spec.instances {
                let mut nodes = Vec::with_capacity(noise_nodes.len());
                for i in 0..noise_nodes.len() {
                    nodes.push(noise_nodes[(inst as usize + i) % noise_nodes.len()]);
                }
                deploy_delayed(
                    &mut cl,
                    &w,
                    spec.ranks,
                    &nodes,
                    self.seed ^ (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    true,
                    SimDuration::ZERO,
                );
                salt += 1;
            }
        }
        prepare(&mut cl);
        let deadline = SimTime::ZERO + warmup + self.deadline;
        let trace = cl.run_until_app(target, deadline);
        Ok((target, trace))
    }

    /// Execute the baseline variant.
    pub fn run_baseline(&self) -> Result<(AppId, RunTrace), QiError> {
        self.as_baseline().run()
    }
}

/// Wall time the target actually spent working: first op issue to
/// completion. Robust to warmup delays before the target starts.
pub fn target_duration(trace: &RunTrace, target: AppId) -> Option<SimDuration> {
    let done = trace.completion_of(target)?;
    let first = trace.ops_of(target).map(|o| o.issued).min()?;
    Some(done - first)
}

/// Completion-time slowdown of the target under this scenario relative
/// to `baseline` (both must have completed), measured from each run's
/// first target operation so warmup does not dilute the ratio.
pub fn completion_slowdown(
    baseline: &RunTrace,
    interfered: &RunTrace,
    target: AppId,
) -> Option<f64> {
    let b = target_duration(baseline, target)?.as_secs_f64();
    let i = target_duration(interfered, target)?.as_secs_f64();
    if b <= 0.0 {
        return None;
    }
    Some(i / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(target: WorkloadKind, seed: u64) -> Scenario {
        Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            deadline: SimDuration::from_secs(900),
            ..Scenario::baseline(target, seed)
        }
    }

    #[test]
    fn node_sets_are_disjoint() {
        let s = Scenario::baseline(WorkloadKind::IorEasyRead, 1);
        let t = s.target_nodes();
        let n = s.noise_nodes();
        assert!(!t.is_empty() && !n.is_empty());
        for node in &t {
            assert!(!n.contains(node), "node {node:?} shared");
        }
        assert_eq!(t.len() + n.len(), s.cluster.client_nodes as usize);
    }

    #[test]
    fn baseline_completes_and_matches_rerun() {
        let s = small(WorkloadKind::IorEasyRead, 3);
        let (app, a) = s.run_baseline().expect("baseline runs");
        let (_, b) = s.run_baseline().expect("baseline runs");
        assert!(a.completion_of(app).is_some());
        assert_eq!(a.completion_of(app), b.completion_of(app));
        assert_eq!(a.ops.len(), b.ops.len());
    }

    #[test]
    fn interference_slows_the_target() {
        let s = small(WorkloadKind::IorEasyRead, 5).with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyRead,
            instances: 3,
            ranks: 2,
        });
        let (app, base) = s.run_baseline().expect("baseline runs");
        let (_, noisy) = s.run().expect("interfered run");
        let slow = completion_slowdown(&base, &noisy, app).expect("both completed");
        assert!(slow > 1.3, "read-vs-read slowdown only {slow:.2}x");
    }

    #[test]
    fn op_sequences_match_between_baseline_and_interfered() {
        let s = small(WorkloadKind::MdtHardWrite, 7).with_interference(InterferenceSpec {
            kind: WorkloadKind::IorEasyWrite,
            instances: 2,
            ranks: 2,
        });
        let (app, base) = s.run_baseline().expect("baseline runs");
        let (_, noisy) = s.run().expect("interfered run");
        let base_tokens: Vec<_> = base
            .ops_of(app)
            .map(|o| (o.token, o.kind, o.bytes))
            .collect();
        let mut noisy_tokens: Vec<_> = noisy
            .ops_of(app)
            .map(|o| (o.token, o.kind, o.bytes))
            .collect();
        // Completion order may differ; identity sets must match.
        let mut b = base_tokens.clone();
        b.sort_by_key(|(t, _, _)| (t.rank, t.seq));
        noisy_tokens.sort_by_key(|(t, _, _)| (t.rank, t.seq));
        assert_eq!(b, noisy_tokens);
    }
}
