//! Training-data generation: run scenario grids, label windows against
//! baselines, and assemble per-server feature vectors into datasets.

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;

use qi_faults::{FaultEvent, FaultPlan};
use qi_ml::data::Dataset;
use qi_monitor::features::{FeatureConfig, Imputation};
use qi_monitor::pipeline::FeaturePipeline;
use qi_monitor::schema::FeatureSchema;
use qi_monitor::window::WindowConfig;
use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::RunTrace;
use qi_simkit::error::QiError;
use qi_simkit::time::{SimDuration, SimTime};
use qi_workloads::registry::WorkloadKind;

use crate::labeling::{window_degradation, BaselineIndex, Bins};
use crate::scenario::{InterferenceSpec, Scenario};

/// Assemble, for every window in which `target` completed operations,
/// the flattened per-server feature block (`n_devices × features`).
pub fn window_vectors(
    trace: &RunTrace,
    target: AppId,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
) -> HashMap<u64, Vec<f32>> {
    window_vectors_with(trace, target, wcfg, fcfg, n_devices, Imputation::Zero)
}

/// Like [`window_vectors`], but with an explicit [`Imputation`] policy
/// for feature cells whose monitor data is missing.
///
/// This is a thin adapter over the canonical
/// [`FeaturePipeline`][qi_monitor::pipeline::FeaturePipeline]: batch
/// dataset generation and the online serving path drive the same
/// windowing, accumulation, and vector-assembly code, so the two can
/// never drift apart. See [`FeaturePipeline::run_vectors`].
pub fn window_vectors_with(
    trace: &RunTrace,
    target: AppId,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
    imputation: Imputation,
) -> HashMap<u64, Vec<f32>> {
    FeaturePipeline::new(wcfg, fcfg, n_devices)
        .with_imputation(imputation)
        .run_vectors(trace, target)
}

/// A server-degradation condition swept as a dataset dimension, so
/// Table-I-style grids also cover runs on degraded hardware. Each spec
/// expands to a [`FaultPlan`] sized for the cluster it runs on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// Healthy hardware (no fault plan).
    Healthy,
    /// Every OST device serves `factor`× slower during the window
    /// `[from_s, from_s + dur_s)` seconds.
    SlowOsts {
        /// Service-time multiplier (≥ 1.0).
        factor: f64,
        /// Window start, seconds into the run.
        from_s: u64,
        /// Window length, seconds.
        dur_s: u64,
    },
    /// One OST device serves `factor`× slower during the window.
    SlowOst {
        /// Degraded device index.
        dev: u32,
        /// Service-time multiplier (≥ 1.0).
        factor: f64,
        /// Window start, seconds into the run.
        from_s: u64,
        /// Window length, seconds.
        dur_s: u64,
    },
}

impl FaultSpec {
    /// Expand to the fault plan for `cluster` (`None` for `Healthy`).
    pub fn plan(&self, cluster: &ClusterConfig) -> Option<FaultPlan> {
        let window = |from_s: u64, dur_s: u64| {
            let from = SimTime::ZERO + SimDuration::from_secs(from_s);
            (from, from + SimDuration::from_secs(dur_s))
        };
        match *self {
            FaultSpec::Healthy => None,
            FaultSpec::SlowOsts {
                factor,
                from_s,
                dur_s,
            } => {
                let (from, until) = window(from_s, dur_s);
                let mut plan = FaultPlan::new();
                for dev in 0..cluster.n_osts() {
                    plan.push(FaultEvent::SlowDisk {
                        dev,
                        factor,
                        from,
                        until,
                    });
                }
                Some(plan)
            }
            FaultSpec::SlowOst {
                dev,
                factor,
                from_s,
                dur_s,
            } => {
                let (from, until) = window(from_s, dur_s);
                Some(FaultPlan::new().with(FaultEvent::SlowDisk {
                    dev,
                    factor,
                    from,
                    until,
                }))
            }
        }
    }
}

/// Where a sample came from (kept alongside the dataset for analysis).
#[derive(Clone, Debug)]
pub struct SampleMeta {
    /// Target workload.
    pub target: WorkloadKind,
    /// Interference source and instance count (`None` = baseline run).
    pub noise: Option<(WorkloadKind, u32)>,
    /// Server-degradation condition the run executed under.
    pub fault: FaultSpec,
    /// Scenario seed.
    pub seed: u64,
    /// Window index within the run.
    pub window: u64,
    /// Raw degradation level before binning.
    pub level: f64,
}

/// A generated dataset plus its provenance.
#[derive(Debug)]
pub struct GeneratedDataset {
    /// Feature/label data ready for `qi_ml::train`.
    pub data: Dataset,
    /// Per-sample provenance, parallel to `data.y`.
    pub meta: Vec<SampleMeta>,
    /// Bin definition used for the labels.
    pub bins: Bins,
    /// The feature layout every sample was assembled under. Stamp this
    /// into trained models (`train_with_schema`) so serving can verify
    /// it is feeding the model vectors of the same shape and meaning.
    pub schema: FeatureSchema,
}

impl GeneratedDataset {
    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.bins.n_classes()];
        for &l in &self.data.y {
            c[l] += 1;
        }
        c
    }
}

/// The scenario grid to run for a dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Target workloads to measure.
    pub targets: Vec<WorkloadKind>,
    /// Interference workload kinds.
    pub noise_kinds: Vec<WorkloadKind>,
    /// Interference intensities (concurrent instances), e.g. `[1, 2, 3]`.
    pub intensities: Vec<u32>,
    /// Seeds; every (target, noise, intensity) combo runs once per seed.
    pub seeds: Vec<u64>,
    /// Ranks of each target application.
    pub target_ranks: u32,
    /// Ranks of each interference instance.
    pub noise_ranks: u32,
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Monitor window length.
    pub window: WindowConfig,
    /// Feature blocks to include.
    pub features: FeatureConfig,
    /// Label bins.
    pub bins: Bins,
    /// Use reduced-scale workloads.
    pub small: bool,
    /// Per-run safety deadline.
    pub deadline: SimDuration,
    /// Also emit the baseline runs' windows (labelled by self-comparison,
    /// i.e. level 1.0 → the lowest bin) as extra negatives.
    pub include_baseline_windows: bool,
    /// Server-degradation conditions; every grid combo runs once per
    /// entry. `[Healthy]` reproduces the fault-free grid exactly.
    pub faults: Vec<FaultSpec>,
    /// How to fill feature cells whose monitor data went missing.
    pub imputation: Imputation,
}

impl DatasetSpec {
    /// A small, fast spec for tests and examples: a reduced grid that
    /// still yields on the order of a hundred labelled windows.
    pub fn smoke() -> Self {
        DatasetSpec {
            targets: vec![WorkloadKind::IorEasyRead, WorkloadKind::MdtHardWrite],
            noise_kinds: vec![WorkloadKind::IorEasyWrite, WorkloadKind::IorEasyRead],
            intensities: vec![1, 2],
            seeds: vec![1, 2, 3],
            target_ranks: 2,
            noise_ranks: 2,
            cluster: ClusterConfig::small(),
            window: WindowConfig::seconds(1),
            features: FeatureConfig::default(),
            bins: Bins::binary(),
            small: true,
            deadline: SimDuration::from_secs(900),
            include_baseline_windows: true,
            faults: vec![FaultSpec::Healthy],
            imputation: Imputation::Zero,
        }
    }

    fn scenario(&self, target: WorkloadKind, seed: u64) -> Scenario {
        Scenario {
            target,
            target_ranks: self.target_ranks,
            interference: Vec::new(),
            cluster: self.cluster.clone(),
            seed,
            deadline: self.deadline,
            small: self.small,
            warmup: if self.small {
                SimDuration::from_secs(3)
            } else {
                SimDuration::from_secs(6)
            },
            fault_plan: None,
        }
    }

    /// Number of interfered runs the grid will execute.
    pub fn n_runs(&self) -> usize {
        self.targets.len()
            * self.noise_kinds.len()
            * self.intensities.len()
            * self.seeds.len()
            * self.faults.len()
    }
}

/// Per-run harvest: feature blocks, labels, and provenance.
type RunSamples = (Vec<Vec<f32>>, Vec<usize>, Vec<SampleMeta>);

/// Everything harvested for one `(target, seed)` key: the baseline's
/// own windows (when requested) plus each interfered combo's samples,
/// tagged with the combo's position in the canonical grid order.
struct KeyHarvest {
    base_samples: Option<RunSamples>,
    combo_samples: Vec<(usize, RunSamples)>,
}

/// Run the grid on an explicit pool handle (shared with the caller's
/// other parallel work) and build the labelled dataset. Output is
/// byte-identical for every thread count — see [`generate`].
pub fn generate_on(
    pool: &rayon::ThreadPool,
    spec: &DatasetSpec,
) -> Result<GeneratedDataset, QiError> {
    pool.install(|| generate(spec))
}

/// Run the grid (in parallel) and build the labelled dataset.
///
/// Scheduling: one job per `(target, seed)` key runs that key's
/// baseline and then fans its interfered combos out as nested parallel
/// jobs, so baselines and interfered runs of *different* keys overlap
/// instead of serialising phase-by-phase behind a grid-wide barrier.
/// Samples are stitched in the canonical grid order (targets × noises ×
/// intensities × seeds × faults, then baseline windows per key), which
/// keeps the output byte-identical to the sequential run at any thread
/// count. Baselines always run healthy: a faulted combo's labels
/// measure its slowdown against fault-free hardware.
pub fn generate(spec: &DatasetSpec) -> Result<GeneratedDataset, QiError> {
    let n_devices = spec.cluster.n_devices();
    if spec.faults.is_empty() {
        return Err(QiError::Config(
            "dataset spec has no fault conditions; use [FaultSpec::Healthy]".into(),
        ));
    }

    let base_keys: Vec<(WorkloadKind, u64)> = spec
        .targets
        .iter()
        .flat_map(|&t| spec.seeds.iter().map(move |&s| (t, s)))
        .collect();

    // The canonical combo order (the pre-parallel stitch order); the
    // fault dimension is innermost, so `[Healthy]` reproduces the
    // fault-free grid order exactly.
    let mut combos: Vec<(WorkloadKind, WorkloadKind, u32, u64, FaultSpec)> = Vec::new();
    for &t in &spec.targets {
        for &n in &spec.noise_kinds {
            for &i in &spec.intensities {
                for &s in &spec.seeds {
                    for &f in &spec.faults {
                        combos.push((t, n, i, s, f));
                    }
                }
            }
        }
    }
    let mut combos_by_key: HashMap<(WorkloadKind, u64), Vec<usize>> = HashMap::new();
    for (ci, &(t, _, _, s, _)) in combos.iter().enumerate() {
        combos_by_key.entry((t, s)).or_default().push(ci);
    }

    let harvests: Vec<KeyHarvest> = base_keys
        .par_iter()
        .map(|&(target, seed)| -> Result<KeyHarvest, QiError> {
            let (app, trace) = spec.scenario(target, seed).run()?;
            if trace.completion_of(app).is_none() {
                return Err(QiError::Incomplete(format!(
                    "baseline {target} (seed {seed}) hit the deadline"
                )));
            }
            let base = Arc::new(trace);
            let my_combos: &[usize] = combos_by_key
                .get(&(target, seed))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let combo_samples: Vec<(usize, RunSamples)> = my_combos
                .par_iter()
                .map(|&ci| -> Result<(usize, RunSamples), QiError> {
                    let (_, noise, intensity, _, fault) = combos[ci];
                    let mut scenario =
                        spec.scenario(target, seed)
                            .with_interference(InterferenceSpec {
                                kind: noise,
                                instances: intensity,
                                ranks: spec.noise_ranks,
                            });
                    scenario.fault_plan = fault.plan(&spec.cluster);
                    let (run_app, run_trace) = scenario.run()?;
                    debug_assert_eq!(run_app, app);
                    let idx = BaselineIndex::new(&base, run_app);
                    let samples = collect_samples(
                        spec,
                        &run_trace,
                        run_app,
                        &idx,
                        n_devices,
                        target,
                        Some((noise, intensity)),
                        fault,
                        seed,
                    );
                    Ok((ci, samples))
                })
                .collect::<Result<_, _>>()?;
            let base_samples = spec.include_baseline_windows.then(|| {
                let idx = BaselineIndex::new(&base, app);
                collect_samples(
                    spec,
                    &base,
                    app,
                    &idx,
                    n_devices,
                    target,
                    None,
                    FaultSpec::Healthy,
                    seed,
                )
            });
            Ok(KeyHarvest {
                base_samples,
                combo_samples,
            })
        })
        .collect::<Result<_, _>>()?;

    // Stitch: interfered combos in canonical grid order first, then the
    // baseline windows in `base_keys` order — the exact order the old
    // two-phase implementation produced.
    let mut per_combo: Vec<Option<RunSamples>> = combos.iter().map(|_| None).collect();
    let mut base_runs: Vec<RunSamples> = Vec::new();
    for harvest in harvests {
        for (ci, samples) in harvest.combo_samples {
            debug_assert!(per_combo[ci].is_none(), "combo {ci} harvested twice");
            per_combo[ci] = Some(samples);
        }
        if let Some(b) = harvest.base_samples {
            base_runs.push(b);
        }
    }

    let mut samples = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();
    for (ci, run) in per_combo.into_iter().enumerate() {
        let Some((s, l, m)) = run else {
            return Err(QiError::Pipeline(format!("combo {ci} was never harvested")));
        };
        samples.extend(s);
        labels.extend(l);
        meta.extend(m);
    }
    for (s, l, m) in base_runs {
        samples.extend(s);
        labels.extend(l);
        meta.extend(m);
    }
    if samples.is_empty() {
        return Err(QiError::Pipeline("dataset grid produced no samples".into()));
    }
    Ok(GeneratedDataset {
        data: Dataset::from_samples(samples, labels, n_devices as usize),
        meta,
        bins: spec.bins.clone(),
        schema: FeatureSchema::current(spec.window, spec.features, spec.imputation),
    })
}

#[allow(clippy::too_many_arguments)]
fn collect_samples(
    spec: &DatasetSpec,
    trace: &RunTrace,
    app: AppId,
    baseline: &BaselineIndex,
    n_devices: u32,
    target: WorkloadKind,
    noise: Option<(WorkloadKind, u32)>,
    fault: FaultSpec,
    seed: u64,
) -> RunSamples {
    let levels = window_degradation(baseline, trace, app, spec.window);
    let vectors = window_vectors_with(
        trace,
        app,
        spec.window,
        spec.features,
        n_devices,
        spec.imputation,
    );
    let mut windows: Vec<u64> = levels.keys().copied().collect();
    windows.sort_unstable();
    let mut xs = Vec::with_capacity(windows.len());
    let mut ys = Vec::with_capacity(windows.len());
    let mut ms = Vec::with_capacity(windows.len());
    for w in windows {
        let Some(v) = vectors.get(&w) else { continue };
        let level = levels[&w];
        xs.push(v.clone());
        ys.push(spec.bins.classify(level));
        ms.push(SampleMeta {
            target,
            noise,
            fault,
            seed,
            window: w,
            level,
        });
    }
    (xs, ys, ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_generates_balanced_dataset() {
        let spec = DatasetSpec::smoke();
        let gen = generate(&spec).expect("smoke grid generates");
        assert!(gen.data.len() >= 8, "only {} samples", gen.data.len());
        assert_eq!(gen.meta.len(), gen.data.len());
        assert_eq!(gen.data.n_servers, spec.cluster.n_devices() as usize);
        assert_eq!(gen.data.n_features(), spec.features.len());
        let counts = gen.class_counts();
        // Baseline windows guarantee class 0; interference should create
        // at least some class-1 windows.
        assert!(counts[0] > 0, "no negative windows: {counts:?}");
        assert!(counts[1] > 0, "no positive windows: {counts:?}");
        // The dataset carries the schema its vectors were built under.
        assert_eq!(
            gen.schema,
            FeatureSchema::current(spec.window, spec.features, spec.imputation)
        );
        assert_eq!(gen.schema.vector_len(), gen.data.n_features());
    }

    #[test]
    fn baseline_windows_are_lowest_bin() {
        let mut spec = DatasetSpec::smoke();
        spec.noise_kinds = vec![];
        spec.intensities = vec![];
        spec.include_baseline_windows = true;
        let gen = generate(&spec).expect("baseline-only grid generates");
        assert!(gen.data.y.iter().all(|&y| y == 0));
        assert!(gen
            .meta
            .iter()
            .all(|m| m.noise.is_none() && (m.level - 1.0).abs() < 0.2));
        assert!(gen.meta.iter().all(|m| m.fault == FaultSpec::Healthy));
    }

    #[test]
    fn empty_fault_dimension_is_rejected() {
        let mut spec = DatasetSpec::smoke();
        spec.faults = vec![];
        let err = generate(&spec).expect_err("empty fault dimension");
        assert!(matches!(err, qi_simkit::QiError::Config(_)), "{err}");
    }

    #[test]
    fn fault_specs_expand_to_sized_plans() {
        let cluster = ClusterConfig::small();
        assert!(FaultSpec::Healthy.plan(&cluster).is_none());
        let all = FaultSpec::SlowOsts {
            factor: 4.0,
            from_s: 2,
            dur_s: 5,
        }
        .plan(&cluster)
        .expect("plan");
        assert_eq!(all.events().len(), cluster.n_osts() as usize);
        assert!(all
            .validate(
                cluster.n_devices() as usize,
                cluster.n_nodes() as usize,
                cluster.oss_nodes as usize,
            )
            .is_ok());
        let one = FaultSpec::SlowOst {
            dev: 1,
            factor: 8.0,
            from_s: 0,
            dur_s: 3,
        }
        .plan(&cluster)
        .expect("plan");
        assert_eq!(one.events().len(), 1);
    }

    #[test]
    fn window_vectors_align_with_degradation_windows() {
        let spec = DatasetSpec::smoke();
        let scenario = spec.scenario(WorkloadKind::IorEasyRead, 1);
        let (app, trace) = scenario.run().expect("scenario runs");
        let vecs = window_vectors(
            &trace,
            app,
            spec.window,
            spec.features,
            spec.cluster.n_devices(),
        );
        assert!(!vecs.is_empty());
        for v in vecs.values() {
            assert_eq!(
                v.len(),
                spec.cluster.n_devices() as usize * spec.features.len()
            );
        }
    }
}
