//! Training-data generation: run scenario grids, label windows against
//! baselines, and assemble per-server feature vectors into datasets.

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;

use qi_ml::data::Dataset;
use qi_monitor::client::client_windows;
use qi_monitor::features::{server_vector, FeatureConfig};
use qi_monitor::server::server_windows;
use qi_monitor::window::WindowConfig;
use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::{AppId, DeviceId};
use qi_pfs::ops::RunTrace;
use qi_simkit::time::SimDuration;
use qi_workloads::registry::WorkloadKind;

use crate::labeling::{window_degradation, BaselineIndex, Bins};
use crate::scenario::{InterferenceSpec, Scenario};

/// Assemble, for every window in which `target` completed operations,
/// the flattened per-server feature block (`n_devices × features`).
pub fn window_vectors(
    trace: &RunTrace,
    target: AppId,
    wcfg: WindowConfig,
    fcfg: FeatureConfig,
    n_devices: u32,
) -> HashMap<u64, Vec<f32>> {
    let cw = client_windows(trace, wcfg, n_devices);
    let sw = server_windows(&trace.samples, wcfg);
    let windows: Vec<u64> = cw
        .keys()
        .filter(|(app, _)| *app == target)
        .map(|&(_, w)| w)
        .collect();
    let mut out = HashMap::with_capacity(windows.len());
    for w in windows {
        let client = cw.get(&(target, w));
        let mut block = Vec::with_capacity(n_devices as usize * fcfg.len());
        for d in 0..n_devices {
            let dev = DeviceId(d);
            let server = sw.get(&(dev, w));
            block.extend(server_vector(fcfg, client, server, dev, wcfg.window));
        }
        out.insert(w, block);
    }
    out
}

/// Where a sample came from (kept alongside the dataset for analysis).
#[derive(Clone, Debug)]
pub struct SampleMeta {
    /// Target workload.
    pub target: WorkloadKind,
    /// Interference source and instance count (`None` = baseline run).
    pub noise: Option<(WorkloadKind, u32)>,
    /// Scenario seed.
    pub seed: u64,
    /// Window index within the run.
    pub window: u64,
    /// Raw degradation level before binning.
    pub level: f64,
}

/// A generated dataset plus its provenance.
pub struct GeneratedDataset {
    /// Feature/label data ready for `qi_ml::train`.
    pub data: Dataset,
    /// Per-sample provenance, parallel to `data.y`.
    pub meta: Vec<SampleMeta>,
    /// Bin definition used for the labels.
    pub bins: Bins,
}

impl GeneratedDataset {
    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.bins.n_classes()];
        for &l in &self.data.y {
            c[l] += 1;
        }
        c
    }
}

/// The scenario grid to run for a dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Target workloads to measure.
    pub targets: Vec<WorkloadKind>,
    /// Interference workload kinds.
    pub noise_kinds: Vec<WorkloadKind>,
    /// Interference intensities (concurrent instances), e.g. `[1, 2, 3]`.
    pub intensities: Vec<u32>,
    /// Seeds; every (target, noise, intensity) combo runs once per seed.
    pub seeds: Vec<u64>,
    /// Ranks of each target application.
    pub target_ranks: u32,
    /// Ranks of each interference instance.
    pub noise_ranks: u32,
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Monitor window length.
    pub window: WindowConfig,
    /// Feature blocks to include.
    pub features: FeatureConfig,
    /// Label bins.
    pub bins: Bins,
    /// Use reduced-scale workloads.
    pub small: bool,
    /// Per-run safety deadline.
    pub deadline: SimDuration,
    /// Also emit the baseline runs' windows (labelled by self-comparison,
    /// i.e. level 1.0 → the lowest bin) as extra negatives.
    pub include_baseline_windows: bool,
}

impl DatasetSpec {
    /// A small, fast spec for tests and examples: a reduced grid that
    /// still yields on the order of a hundred labelled windows.
    pub fn smoke() -> Self {
        DatasetSpec {
            targets: vec![WorkloadKind::IorEasyRead, WorkloadKind::MdtHardWrite],
            noise_kinds: vec![WorkloadKind::IorEasyWrite, WorkloadKind::IorEasyRead],
            intensities: vec![1, 2],
            seeds: vec![1, 2, 3],
            target_ranks: 2,
            noise_ranks: 2,
            cluster: ClusterConfig::small(),
            window: WindowConfig::seconds(1),
            features: FeatureConfig::default(),
            bins: Bins::binary(),
            small: true,
            deadline: SimDuration::from_secs(900),
            include_baseline_windows: true,
        }
    }

    fn scenario(&self, target: WorkloadKind, seed: u64) -> Scenario {
        Scenario {
            target,
            target_ranks: self.target_ranks,
            interference: Vec::new(),
            cluster: self.cluster.clone(),
            seed,
            deadline: self.deadline,
            small: self.small,
            warmup: if self.small {
                SimDuration::from_secs(3)
            } else {
                SimDuration::from_secs(6)
            },
            noise_throttle: None,
        }
    }

    /// Number of interfered runs the grid will execute.
    pub fn n_runs(&self) -> usize {
        self.targets.len() * self.noise_kinds.len() * self.intensities.len() * self.seeds.len()
    }
}

/// Per-run harvest: feature blocks, labels, and provenance.
type RunSamples = (Vec<Vec<f32>>, Vec<usize>, Vec<SampleMeta>);

/// Everything harvested for one `(target, seed)` key: the baseline's
/// own windows (when requested) plus each interfered combo's samples,
/// tagged with the combo's position in the canonical grid order.
struct KeyHarvest {
    base_samples: Option<RunSamples>,
    combo_samples: Vec<(usize, RunSamples)>,
}

/// Run the grid on an explicit pool handle (shared with the caller's
/// other parallel work) and build the labelled dataset. Output is
/// byte-identical for every thread count — see [`generate`].
pub fn generate_on(pool: &rayon::ThreadPool, spec: &DatasetSpec) -> GeneratedDataset {
    pool.install(|| generate(spec))
}

/// Run the grid (in parallel) and build the labelled dataset.
///
/// Scheduling: one job per `(target, seed)` key runs that key's
/// baseline and then fans its interfered combos out as nested parallel
/// jobs, so baselines and interfered runs of *different* keys overlap
/// instead of serialising phase-by-phase behind a grid-wide barrier.
/// Samples are stitched in the canonical grid order (targets × noises ×
/// intensities × seeds, then baseline windows per key), which keeps the
/// output byte-identical to the sequential run at any thread count.
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let n_devices = spec.cluster.n_devices();

    let base_keys: Vec<(WorkloadKind, u64)> = spec
        .targets
        .iter()
        .flat_map(|&t| spec.seeds.iter().map(move |&s| (t, s)))
        .collect();

    // The canonical combo order (the pre-parallel stitch order).
    let mut combos: Vec<(WorkloadKind, WorkloadKind, u32, u64)> = Vec::new();
    for &t in &spec.targets {
        for &n in &spec.noise_kinds {
            for &i in &spec.intensities {
                for &s in &spec.seeds {
                    combos.push((t, n, i, s));
                }
            }
        }
    }
    let mut combos_by_key: HashMap<(WorkloadKind, u64), Vec<usize>> = HashMap::new();
    for (ci, &(t, _, _, s)) in combos.iter().enumerate() {
        combos_by_key.entry((t, s)).or_default().push(ci);
    }

    let harvests: Vec<KeyHarvest> = base_keys
        .par_iter()
        .map(|&(target, seed)| {
            let (app, trace) = spec.scenario(target, seed).run();
            assert!(
                trace.completion_of(app).is_some(),
                "baseline {target} (seed {seed}) hit the deadline"
            );
            let base = Arc::new(trace);
            let my_combos: &[usize] = combos_by_key
                .get(&(target, seed))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let combo_samples: Vec<(usize, RunSamples)> = my_combos
                .par_iter()
                .map(|&ci| {
                    let (_, noise, intensity, _) = combos[ci];
                    let scenario =
                        spec.scenario(target, seed)
                            .with_interference(InterferenceSpec {
                                kind: noise,
                                instances: intensity,
                                ranks: spec.noise_ranks,
                            });
                    let (run_app, run_trace) = scenario.run();
                    debug_assert_eq!(run_app, app);
                    let idx = BaselineIndex::new(&base, run_app);
                    let samples = collect_samples(
                        spec,
                        &run_trace,
                        run_app,
                        &idx,
                        n_devices,
                        target,
                        Some((noise, intensity)),
                        seed,
                    );
                    (ci, samples)
                })
                .collect();
            let base_samples = spec.include_baseline_windows.then(|| {
                let idx = BaselineIndex::new(&base, app);
                collect_samples(spec, &base, app, &idx, n_devices, target, None, seed)
            });
            KeyHarvest {
                base_samples,
                combo_samples,
            }
        })
        .collect();

    // Stitch: interfered combos in canonical grid order first, then the
    // baseline windows in `base_keys` order — the exact order the old
    // two-phase implementation produced.
    let mut per_combo: Vec<Option<RunSamples>> = combos.iter().map(|_| None).collect();
    let mut base_runs: Vec<RunSamples> = Vec::new();
    for harvest in harvests {
        for (ci, samples) in harvest.combo_samples {
            debug_assert!(per_combo[ci].is_none(), "combo {ci} harvested twice");
            per_combo[ci] = Some(samples);
        }
        if let Some(b) = harvest.base_samples {
            base_runs.push(b);
        }
    }

    let mut samples = Vec::new();
    let mut labels = Vec::new();
    let mut meta = Vec::new();
    for run in per_combo
        .into_iter()
        .map(|r| r.expect("combo never harvested"))
        .chain(base_runs)
    {
        let (s, l, m) = run;
        samples.extend(s);
        labels.extend(l);
        meta.extend(m);
    }
    assert!(!samples.is_empty(), "dataset grid produced no samples");
    GeneratedDataset {
        data: Dataset::from_samples(samples, labels, n_devices as usize),
        meta,
        bins: spec.bins.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_samples(
    spec: &DatasetSpec,
    trace: &RunTrace,
    app: AppId,
    baseline: &BaselineIndex,
    n_devices: u32,
    target: WorkloadKind,
    noise: Option<(WorkloadKind, u32)>,
    seed: u64,
) -> RunSamples {
    let levels = window_degradation(baseline, trace, app, spec.window);
    let vectors = window_vectors(trace, app, spec.window, spec.features, n_devices);
    let mut windows: Vec<u64> = levels.keys().copied().collect();
    windows.sort_unstable();
    let mut xs = Vec::with_capacity(windows.len());
    let mut ys = Vec::with_capacity(windows.len());
    let mut ms = Vec::with_capacity(windows.len());
    for w in windows {
        let Some(v) = vectors.get(&w) else { continue };
        let level = levels[&w];
        xs.push(v.clone());
        ys.push(spec.bins.classify(level));
        ms.push(SampleMeta {
            target,
            noise,
            seed,
            window: w,
            level,
        });
    }
    (xs, ys, ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_generates_balanced_dataset() {
        let spec = DatasetSpec::smoke();
        let gen = generate(&spec);
        assert!(gen.data.len() >= 8, "only {} samples", gen.data.len());
        assert_eq!(gen.meta.len(), gen.data.len());
        assert_eq!(gen.data.n_servers, spec.cluster.n_devices() as usize);
        assert_eq!(gen.data.n_features(), spec.features.len());
        let counts = gen.class_counts();
        // Baseline windows guarantee class 0; interference should create
        // at least some class-1 windows.
        assert!(counts[0] > 0, "no negative windows: {counts:?}");
        assert!(counts[1] > 0, "no positive windows: {counts:?}");
    }

    #[test]
    fn baseline_windows_are_lowest_bin() {
        let mut spec = DatasetSpec::smoke();
        spec.noise_kinds = vec![];
        spec.intensities = vec![];
        spec.include_baseline_windows = true;
        let gen = generate(&spec);
        assert!(gen.data.y.iter().all(|&y| y == 0));
        assert!(gen
            .meta
            .iter()
            .all(|m| m.noise.is_none() && (m.level - 1.0).abs() < 0.2));
    }

    #[test]
    fn window_vectors_align_with_degradation_windows() {
        let spec = DatasetSpec::smoke();
        let scenario = spec.scenario(WorkloadKind::IorEasyRead, 1);
        let (app, trace) = scenario.run();
        let vecs = window_vectors(
            &trace,
            app,
            spec.window,
            spec.features,
            spec.cluster.n_devices(),
        );
        assert!(!vecs.is_empty());
        for v in vecs.values() {
            assert_eq!(
                v.len(),
                spec.cluster.n_devices() as usize * spec.features.len()
            );
        }
    }
}
