//! # qi-pfs
//!
//! A deterministic discrete-event simulator of a Lustre-like parallel
//! file system, standing in for the 11-node Lustre 2.12 cluster the paper
//! evaluates on (see `DESIGN.md` for the substitution argument).
//!
//! The pieces, bottom-up:
//!
//! - [`arena`] — generation-versioned slab keying in-flight ops/RPCs.
//! - [`disk`] — rotational-disk service model (seek curve, media rate).
//! - [`queue`] — block request queue with merging, read-priority deadline
//!   dispatch, and `/proc/diskstats`-like counters (paper Table II).
//! - [`cache`] — OSS write-back cache with dirty throttling.
//! - [`net`] — per-node NIC serialization (fan-in contention).
//! - [`layout`] — Lustre-style striping and per-OST extent allocation.
//! - [`cluster`] — the event loop wiring clients, OSS/OSTs, and the
//!   MDS/MDT (namespace, directory locks, journal) together.
//! - [`ops`] — workload-facing operations, rank programs, trace records.
//! - [`control`] — the typed mitigation control plane: directives,
//!   actuators, and the per-window controller hook.
//!
//! ```
//! use qi_pfs::prelude::*;
//!
//! let mut cl = Cluster::builder()
//!     .config(ClusterConfig::small())
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration");
//! let f = FileKey { app: AppId(0), num: 1 };
//! cl.precreate_file(f, 8 * 1024 * 1024, None);
//! let mut left = 8u64;
//! let prog = move |_now: qi_simkit::SimTime| {
//!     if left == 0 { return ProgramStep::Finished; }
//!     left -= 1;
//!     ProgramStep::Op(IoOp::Read { file: f, offset: (8 - left - 1) * 1024 * 1024, len: 1024 * 1024 })
//! };
//! let app = cl.add_app("reader", vec![Box::new(prog)], &[NodeId(0)]);
//! let trace = cl.run_until_app(app, qi_simkit::SimTime::from_secs(30));
//! assert_eq!(trace.ops.len(), 8);
//! ```

pub mod arena;
pub mod cache;
pub mod cluster;
pub mod config;
pub mod control;
pub mod disk;
pub mod ids;
pub mod layout;
pub mod net;
pub mod ops;
pub mod queue;
mod shard;
pub mod store;

/// Convenient glob-import surface for building and running clusters.
pub mod prelude {
    pub use crate::arena::{Slab, SlabKey};
    pub use crate::cluster::{Cluster, ClusterBuilder};
    pub use crate::config::{ClusterConfig, StripeConfig, SECTOR_SIZE};
    pub use crate::control::{ClusterController, ControlDirective, DirectiveRecord};
    pub use crate::ids::{AppId, DeviceId, DirKey, FileKey, NodeId, OpToken};
    pub use crate::ops::{
        IoOp, OpKind, OpRecord, ProgramStep, RankProgram, RpcRecord, RunTrace, ServerSample,
    };
    pub use crate::store::{SampleStore, TraceStoreConfig};
    pub use qi_faults::{FaultEvent, FaultPlan, RetryPolicy};
    pub use qi_simkit::{QiError, QueueBackend};
}

pub use prelude::*;
