//! The cluster simulator: clients, network, OSS/OST, MDS/MDT, all driven
//! by one deterministic event loop.
//!
//! Data-path flow (write): rank issues op → per-stripe chunk RPCs travel
//! the network (NIC contention) → OSS CPU → write-back cache (absorb or
//! throttle) → background flush requests on the OST queue (merging,
//! read-priority dispatch) → rotational disk. Reads are synchronous
//! foreground requests; replies carry the payload back through the
//! network. Metadata ops go to the MDS: CPU, lookup cache, per-directory
//! locks, and journal writes on the MDT device.

use std::collections::{BTreeMap, HashMap, VecDeque};

use qi_faults::{FaultEvent, FaultPlan, RetryPolicy};
use qi_simkit::error::QiError;
use qi_simkit::event::EventQueue;
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::rng::SimRng;
use qi_simkit::stats::OnlineStats;
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricValue, MetricsSnapshot};

use crate::arena::{Slab, SlabKey};
use crate::cache::{Admit, LruSet, SmallObjectCache, WriteCache};
use crate::config::{ClusterConfig, StripeConfig, SECTOR_SIZE};
use crate::control::{ClusterController, ControlDirective, DirectiveRecord};
use crate::disk::Disk;
use crate::ids::{AppId, DeviceId, DirKey, FileKey, NodeId, OpToken};
use crate::layout::{chunks, chunks_into, Chunk, ExtentMap, FileLayout, ObjKey, SectorRange};
use crate::net::{LinkFate, LinkFault, LinkFaultKind, Network};
use crate::ops::{
    IoOp, OpKind, OpRecord, ProgramStep, RankProgram, RpcRecord, RunTrace, ServerSample,
};
use crate::queue::{BlockDevice, Dispatch, Member, ReqKind};
use crate::store::SampleStore;

/// Client-side per-op syscall/dispatch overhead.
const CLIENT_OP_OVERHEAD: SimDuration = SimDuration::from_micros(5);
/// Payload bytes of a metadata request/reply.
const META_MSG_BYTES: u64 = 1024;
/// Sectors per metadata device operation (4 KiB records).
const META_SECTORS: u64 = 8;

/// Completion payload attached to device block requests.
enum DiskTag {
    /// Foreground read belonging to a client read chunk.
    ReadChunk { chunk: SlabKey },
    /// Background flush of dirty cache data (payload-byte share).
    Flush { dirty_bytes: u64 },
    /// Synchronous write belonging to a client write chunk.
    SyncChunk { chunk: SlabKey },
    /// MDT journal write completing a namespace mutation.
    Journal {
        token: OpToken,
        client: NodeId,
        dir: DirKey,
    },
    /// MDT inode read completing a lookup miss.
    Lookup {
        token: OpToken,
        client: NodeId,
        file: FileKey,
    },
}

/// A write waiting in (or moving through) an OSS cache.
struct PendingWrite {
    token: OpToken,
    client: NodeId,
    dev: DeviceId,
    obj: ObjKey,
    obj_off: u64,
    len: u64,
}

/// In-flight chunk bookkeeping (reads and sync writes).
struct ChunkPending {
    remaining: u32,
    token: OpToken,
    client: NodeId,
    dev: DeviceId,
    reply_bytes: u64,
    /// Object touched, with the end offset of the access (for read-cache
    /// residency updates on completion). `None` for sync writes.
    touched: Option<(ObjKey, u64)>,
}

/// Messages travelling the simulated network. Cloneable so the retry
/// layer can stash a copy of a dropped request for resending.
#[derive(Clone)]
enum Msg {
    ReadReq {
        dev: DeviceId,
        obj: ObjKey,
        obj_off: u64,
        len: u64,
        token: OpToken,
        client: NodeId,
    },
    WriteReq {
        dev: DeviceId,
        obj: ObjKey,
        obj_off: u64,
        len: u64,
        token: OpToken,
        client: NodeId,
    },
    MetaReq {
        op: MetaOp,
        token: OpToken,
        client: NodeId,
    },
    /// Any server→client completion (read reply, write ack, meta ack).
    OpDone { token: OpToken },
}

/// Metadata request payloads.
#[derive(Clone)]
enum MetaOp {
    /// open/stat: namespace lookup, maybe an MDT inode read.
    Lookup { file: FileKey },
    /// close: CPU only.
    Close,
    /// create/unlink/mkdir: directory lock + journal write. For create,
    /// the layout is registered at processing time.
    Mutate {
        create: Option<(FileKey, Option<StripeConfig>)>,
        dir: DirKey,
    },
}

/// Simulator events.
enum Ev {
    /// Ask a rank for its next step.
    RankNext { app: u32, rank: u32 },
    /// A network message arrives at its destination.
    Deliver(Msg),
    /// OSS CPU finished processing a data RPC.
    OssProcess(Msg),
    /// MDS CPU finished processing a metadata RPC.
    MdsProcess(Msg),
    /// A device finished its in-service block request.
    DiskDone { dev: u32 },
    /// A device's anticipation window expired; re-check its queue.
    DiskIdle { dev: u32 },
    /// Deferred server→client send (e.g. ack after cache absorb).
    SendLater {
        src: NodeId,
        dst: NodeId,
        payload: u64,
        token: OpToken,
    },
    /// A rate-limited data RPC cleared its token-bucket wait.
    TbfAdmitted(Msg),
    /// Directory-lock revocation finished; run the mutation's journal
    /// write under the lock.
    MdsLockRun {
        token: OpToken,
        client: NodeId,
        dir: DirKey,
    },
    /// Server-side monitor tick.
    Sample,
    /// Mitigation-controller tick (window close + 1 ns).
    Control,
    /// A scheduled fail-slow injection fires on a device.
    FailSlow { dev: u32, factor: f64 },
    /// A `DiskStall` fault begins: the device's queue freezes until the
    /// given instant.
    DiskStall { dev: u32, until: SimTime },
    /// An `OssThreadCrash` (or its restart) changes an OSS node's
    /// effective CPU cost multiplier.
    OssFactor { oss: u32, factor: f64 },
    /// A client's wait for a reply to a (dropped) request expired.
    RpcTimeout { seq: SlabKey },
    /// A client's retry backoff elapsed; resend the stored request.
    RpcResend { seq: SlabKey },
}

/// A dropped client request awaiting retry, keyed by a
/// generation-versioned slab key: stale timeout/resend events for a
/// recycled slot miss on lookup instead of acting on the wrong request.
struct RetryState {
    msg: Msg,
    src: NodeId,
    dst: NodeId,
    payload: u64,
    token: OpToken,
    /// Resends performed so far.
    attempt: u32,
}

/// Per-directory metadata lock with FIFO waiters (each remembers when it
/// enqueued, for lock-wait telemetry).
#[derive(Default)]
struct DirLock {
    busy: bool,
    waiters: VecDeque<(OpToken, NodeId, SimTime)>,
    /// Client that last held the lock; a different client pays a
    /// revocation round-trip before its mutation runs.
    last_client: Option<NodeId>,
}

/// Scalar telemetry the cluster accumulates outside the per-device
/// counters; folded into [`RunTrace::metrics`] when a run ends. All
/// values derive from simulated time and deterministic state only.
struct ClusterTelemetry {
    /// Time each mutation waited for its directory lock, in microseconds
    /// (uncontended acquisitions observe 0).
    lock_wait_us: OnlineStats,
    /// Lock acquisitions that paid a revocation round-trip because the
    /// lock last belonged to a different client.
    lock_revocations: u64,
    /// Lookups served from the inode cache (real or modelled hit).
    lookup_cache_hits: u64,
    /// Lookups that had to read the inode from the MDT.
    lookup_cache_misses: u64,
    /// Server-side monitor sampling ticks taken.
    samples_taken: u64,
    /// Client requests lost in transit (injected `RpcDrop` faults).
    rpc_dropped: u64,
    /// Client requests delivered late (injected `RpcDelay` faults).
    rpc_delayed: u64,
    /// Client-side reply waits that expired.
    rpc_timeouts: u64,
    /// Requests resent after a timeout.
    rpc_retries: u64,
    /// Operations abandoned because the retry budget ran out.
    rpc_failed_ops: u64,
    /// Operations abandoned because their per-op deadline passed.
    rpc_deadline_exceeded: u64,
    /// Injected `DiskStall` events that fired.
    disk_stalls: u64,
    /// Lock revocations forced by an `MdsLockStorm` window.
    lock_storm_revocations: u64,
    /// Control directives applied successfully.
    control_applied: u64,
    /// Control directives rejected as invalid (bad app, bad rate, all
    /// OSTs avoided).
    control_rejected: u64,
    /// Rate-limit installs / clears applied.
    control_rate_limits: u64,
    control_rate_clears: u64,
    /// Admission-cap installs / clears applied.
    control_caps: u64,
    control_cap_clears: u64,
    /// Avoid-OSTs installs / clears applied.
    control_retargets: u64,
    control_retarget_clears: u64,
    /// New file layouts that were steered around avoided OSTs.
    control_retarget_layouts: u64,
    /// Data RPCs parked at admission by an inflight cap.
    control_parked: u64,
    /// Parked RPCs later admitted (cap headroom or cap cleared).
    control_resumed: u64,
}

impl ClusterTelemetry {
    fn new() -> Self {
        ClusterTelemetry {
            lock_wait_us: OnlineStats::new(),
            lock_revocations: 0,
            lookup_cache_hits: 0,
            lookup_cache_misses: 0,
            samples_taken: 0,
            rpc_dropped: 0,
            rpc_delayed: 0,
            rpc_timeouts: 0,
            rpc_retries: 0,
            rpc_failed_ops: 0,
            rpc_deadline_exceeded: 0,
            disk_stalls: 0,
            lock_storm_revocations: 0,
            control_applied: 0,
            control_rejected: 0,
            control_rate_limits: 0,
            control_rate_clears: 0,
            control_caps: 0,
            control_cap_clears: 0,
            control_retargets: 0,
            control_retarget_clears: 0,
            control_retarget_layouts: 0,
            control_parked: 0,
            control_resumed: 0,
        }
    }
}

/// Metadata server state.
struct MdsState {
    namespace: HashMap<FileKey, FileLayout>,
    dirs: HashMap<DirKey, DirLock>,
    inode_cache: LruSet<FileKey>,
    cpu_free: SimTime,
    journal_ptr: u64,
    journal_base: u64,
    journal_sectors: u64,
    inode_base: u64,
    inode_sectors: u64,
}

/// Per-rank execution state.
struct RankState {
    seq: u64,
    outstanding: u32,
    cur: Option<(OpToken, OpKind, u64, SimTime)>,
    done: bool,
    /// Set when any chunk of the current op was abandoned by the retry
    /// layer; the op is recorded as failed once every chunk resolves.
    failed: bool,
}

/// One application instance.
struct AppState {
    name: String,
    programs: Vec<Option<Box<dyn RankProgram>>>,
    nodes: Vec<NodeId>,
    ranks: Vec<RankState>,
    ranks_left: u32,
}

/// The whole simulated cluster. Build it, add applications, then [`run`].
///
/// [`run`]: Cluster::run
pub struct Cluster {
    cfg: ClusterConfig,
    events: EventQueue<Ev>,
    net: Network,
    devices: Vec<BlockDevice<DiskTag>>,
    extents: Vec<ExtentMap>,
    caches: Vec<WriteCache<PendingWrite>>,
    read_cache: Vec<SmallObjectCache>,
    dev_node: Vec<NodeId>,
    oss_cpu_free: Vec<SimTime>,
    mds: MdsState,
    apps: Vec<AppState>,
    /// In-flight read/sync-write chunks, keyed by slab index. Slots are
    /// recycled the moment a chunk's last block request completes, so the
    /// table stays at the steady-state high-water mark instead of growing
    /// (and rehashing) with the total chunk count of the run.
    chunk_pending: Slab<ChunkPending>,
    /// Per-application server-side token-bucket filters (bytes/s), the
    /// classful TBF NRS policy of Qian et al. — data RPCs of a limited
    /// app are admitted to the OSS only as tokens accrue.
    tbf: HashMap<AppId, TokenBucket>,
    trace: RunTrace,
    rng: SimRng,
    tele: ClusterTelemetry,
    /// The validated fault schedule; realised as events when a run starts.
    fault_plan: FaultPlan,
    /// Client retry/timeout/backoff policy for lost requests.
    retry: RetryPolicy,
    /// Dedicated RNG substream for fault decisions (drop rolls, backoff
    /// jitter). Healthy runs never draw from it, so adding a fault plan
    /// cannot perturb the main RNG's value stream.
    fault_rng: SimRng,
    /// Per-OSS CPU cost multiplier (1.0 = healthy; `OssThreadCrash`
    /// raises it, restart resets it).
    oss_cpu_factor: Vec<f64>,
    /// Active `MdsLockStorm` windows: (from, until, revoke_factor).
    lock_storms: Vec<(SimTime, SimTime, f64)>,
    /// Dropped requests awaiting timeout/retry, keyed by slab key; the
    /// key's generation makes stale `RpcTimeout`/`RpcResend` events for a
    /// recycled slot harmless (they miss on lookup).
    retry_states: Slab<RetryState>,
    /// Scratch buffers reused across events so the hot path performs no
    /// per-event heap allocation. Each user `std::mem::take`s the buffer,
    /// clears it, fills and drains it, then puts it back.
    scratch_chunks: Vec<Chunk>,
    scratch_ranges: Vec<SectorRange>,
    scratch_members: Vec<Member<DiskTag>>,
    /// The installed mitigation controller, ticked once per control
    /// interval; `None` on uncontrolled runs (the common case — every
    /// control-path check below is a cheap is-empty/is-none test).
    controller: Option<Box<dyn ClusterController>>,
    /// Controller tick interval, sampled at install time.
    control_interval: SimDuration,
    /// Index of the next window the controller will close.
    control_window: u64,
    /// True once a controller was installed or a directive applied;
    /// gates the `pfs.control.*` snapshot block so uncontrolled runs
    /// keep their historical (golden) key set.
    control_used: bool,
    /// Per-app admission cap on concurrently admitted data RPCs per OST.
    inflight_caps: BTreeMap<u32, u32>,
    /// Admitted-RPC counts per (app, OST); entries exist only while the
    /// app is capped. Ordered map: drain order on cap-clear must be
    /// deterministic.
    adm_active: BTreeMap<(u32, u32), u32>,
    /// RPCs parked at admission, FIFO per (app, OST).
    adm_waiting: BTreeMap<(u32, u32), VecDeque<Msg>>,
    /// Per-OST avoidance flags for new layouts; empty means no steering.
    avoid_osts: Vec<bool>,
    /// Scratch directive buffer for control ticks.
    scratch_directives: Vec<ControlDirective>,
}

/// Deterministic 64-bit mix of a file key, used for placement and inode
/// slots. Placement must depend only on the file's identity — never on
/// creation order — so that a file lands on the same OSTs in a baseline
/// run and an interfered run.
fn file_hash(file: FileKey) -> u64 {
    let mut z = (file.app.0 as u64)
        .wrapping_shl(32)
        .wrapping_add(file.num)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fluent constructor for [`Cluster`], and the only supported way to
/// build one: validates the configuration and the fault plan up front
/// and returns `Result` instead of panicking mid-run.
///
/// ```
/// use qi_pfs::prelude::*;
///
/// let cluster = Cluster::builder()
///     .config(ClusterConfig::small())
///     .seed(42)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cluster.config().n_osts(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    seed: u64,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
}

impl ClusterBuilder {
    /// Start from the default (paper-testbed) configuration, seed 0, no
    /// faults, and the default retry policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use this cluster configuration.
    pub fn config(mut self, cfg: ClusterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Seed for all internal randomness (MDS cache hits, fault rolls,
    /// retry jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a fault plan; validated against the configuration at
    /// [`ClusterBuilder::build`] time.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the client retry/timeout/backoff policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Validate and construct the cluster.
    pub fn build(self) -> Result<Cluster, QiError> {
        let cfg = &self.cfg;
        if cfg.client_nodes == 0 {
            return Err(QiError::Config(
                "cluster needs at least one client node".into(),
            ));
        }
        if cfg.oss_nodes == 0 || cfg.osts_per_oss == 0 {
            return Err(QiError::Config(
                "cluster needs at least one OSS with at least one OST".into(),
            ));
        }
        if cfg.net.bandwidth <= 0.0 || cfg.net.bandwidth.is_nan() {
            return Err(QiError::Config(format!(
                "network bandwidth must be positive, got {}",
                cfg.net.bandwidth
            )));
        }
        if cfg.sample_interval == SimDuration::ZERO {
            return Err(QiError::Config("sample_interval must be non-zero".into()));
        }
        self.fault_plan.validate(
            cfg.n_devices() as usize,
            cfg.n_nodes() as usize,
            cfg.oss_nodes as usize,
        )?;
        Ok(Cluster::construct(
            self.cfg,
            self.seed,
            self.fault_plan,
            self.retry,
        ))
    }
}

impl Cluster {
    /// Start building a cluster. See [`ClusterBuilder`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    fn construct(cfg: ClusterConfig, seed: u64, fault_plan: FaultPlan, retry: RetryPolicy) -> Self {
        let n_osts = cfg.n_osts() as usize;
        let mut devices = Vec::with_capacity(n_osts + 1);
        let mut extents = Vec::with_capacity(n_osts);
        let mut caches = Vec::with_capacity(n_osts);
        let mut dev_node = Vec::with_capacity(n_osts + 1);
        for i in 0..n_osts {
            devices.push(BlockDevice::new(
                cfg.queue.clone(),
                Disk::new(cfg.ost_disk.clone()),
            ));
            extents.push(ExtentMap::new(cfg.ost_disk.capacity_sectors));
            caches.push(WriteCache::new(cfg.cache.clone()));
            let oss = i as u32 / cfg.osts_per_oss;
            dev_node.push(NodeId(cfg.client_nodes + oss));
        }
        // The MDT device: journal is synchronous, so no write-back cache.
        devices.push(BlockDevice::new(
            cfg.queue.clone(),
            Disk::new(cfg.mdt_disk.clone()),
        ));
        let mds_node = NodeId(cfg.client_nodes + cfg.oss_nodes);
        dev_node.push(mds_node);

        let journal_base = 2048;
        let journal_sectors = cfg.mds.journal_region_bytes / SECTOR_SIZE;
        let mds = MdsState {
            namespace: HashMap::new(),
            dirs: HashMap::new(),
            inode_cache: LruSet::new(cfg.mds.inode_cache_entries),
            cpu_free: SimTime::ZERO,
            journal_ptr: journal_base,
            journal_base,
            journal_sectors,
            inode_base: journal_base + journal_sectors,
            inode_sectors: (cfg.mdt_disk.capacity_sectors - journal_base - journal_sectors) / 2,
        };
        let rng = SimRng::new(seed).substream(0xC10D);
        let fault_rng = SimRng::new(seed).substream(0xFA17);
        let read_cache = (0..n_osts)
            .map(|_| SmallObjectCache::new(cfg.cache.small_object_max, cfg.cache.read_cache_budget))
            .collect();
        Cluster {
            net: Network::new(cfg.net.clone(), cfg.n_nodes()),
            // In-flight events scale with concurrently outstanding
            // chunk RPCs: a few per rank per striped OST plus device
            // completions. Pre-sizing kills backend regrowth in long
            // runs; 64 slots per node is comfortably above the
            // steady-state high-water mark at every config we run.
            events: EventQueue::with_capacity_and_backend(
                cfg.n_nodes() as usize * 64,
                cfg.event_queue,
            ),
            oss_cpu_free: vec![SimTime::ZERO; cfg.oss_nodes as usize],
            devices,
            extents,
            caches,
            read_cache,
            dev_node,
            mds,
            apps: Vec::new(),
            chunk_pending: Slab::with_capacity(64),
            tbf: HashMap::new(),
            trace: RunTrace {
                samples: SampleStore::with_config(cfg.trace_store),
                ..RunTrace::default()
            },
            rng,
            tele: ClusterTelemetry::new(),
            fault_plan,
            retry,
            fault_rng,
            oss_cpu_factor: vec![1.0; cfg.oss_nodes as usize],
            lock_storms: Vec::new(),
            retry_states: Slab::new(),
            scratch_chunks: Vec::new(),
            scratch_ranges: Vec::new(),
            scratch_members: Vec::new(),
            controller: None,
            control_interval: SimDuration::ZERO,
            control_window: 0,
            control_used: false,
            inflight_caps: BTreeMap::new(),
            adm_active: BTreeMap::new(),
            adm_waiting: BTreeMap::new(),
            avoid_osts: Vec::new(),
            scratch_directives: Vec::new(),
            cfg,
        }
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The client node IDs, `0..client_nodes`.
    pub fn client_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.client_nodes).map(NodeId).collect()
    }

    /// The device ID of OST `i`.
    pub fn ost(&self, i: u32) -> DeviceId {
        assert!(i < self.cfg.n_osts());
        DeviceId(i)
    }

    /// The device ID of the MDT (always the last device).
    pub fn mdt(&self) -> DeviceId {
        DeviceId(self.cfg.n_osts())
    }

    /// Register an application: one program per rank, placed round-robin
    /// over `nodes` (which must be client nodes). Returns its [`AppId`].
    pub fn add_app(
        &mut self,
        name: &str,
        programs: Vec<Box<dyn RankProgram>>,
        nodes: &[NodeId],
    ) -> AppId {
        assert!(!programs.is_empty(), "app with zero ranks");
        assert!(!nodes.is_empty(), "app with no nodes");
        for n in nodes {
            assert!(n.0 < self.cfg.client_nodes, "app placed on a server node");
        }
        let id = AppId(self.apps.len() as u32);
        let nranks = programs.len();
        let rank_nodes: Vec<NodeId> = (0..nranks).map(|r| nodes[r % nodes.len()]).collect();
        self.apps.push(AppState {
            name: name.to_string(),
            programs: programs.into_iter().map(Some).collect(),
            nodes: rank_nodes,
            ranks: (0..nranks)
                .map(|_| RankState {
                    seq: 0,
                    outstanding: 0,
                    cur: None,
                    done: false,
                    failed: false,
                })
                .collect(),
            ranks_left: nranks as u32,
        });
        self.trace.app_completion.push(None);
        id
    }

    /// Name of an application.
    pub fn app_name(&self, app: AppId) -> &str {
        &self.apps[app.0 as usize].name
    }

    /// The [`AppId`] the *next* [`Cluster::add_app`] call will return.
    /// Workload builders use this to key their file namespaces.
    pub fn next_app_id(&self) -> AppId {
        AppId(self.apps.len() as u32)
    }

    /// Install a server-side token-bucket filter for `app`'s data RPCs:
    /// at most `bytes_per_sec` of payload is admitted to the object
    /// servers (burst of one second's worth), queuing the excess — the
    /// classful TBF policy of Qian et al. (the paper's reference [13]).
    pub fn set_app_rate_limit(&mut self, app: AppId, bytes_per_sec: f64) {
        assert!(bytes_per_sec > 0.0);
        self.tbf
            .insert(app, TokenBucket::new(bytes_per_sec, bytes_per_sec));
    }

    /// Install a mitigation controller: from the run's start it is
    /// ticked once per [`ClusterController::interval`], 1 ns after each
    /// window boundary (strictly after every event of the closed
    /// window), and its directives are applied through
    /// [`Cluster::apply_directive`]. At most one controller per run.
    pub fn install_controller(&mut self, controller: Box<dyn ClusterController>) {
        let interval = controller.interval();
        assert!(interval > SimDuration::ZERO, "zero control interval");
        assert!(self.controller.is_none(), "controller already installed");
        self.control_interval = interval;
        self.controller = Some(controller);
        self.control_used = true;
    }

    /// Apply one typed control directive, the single entry point every
    /// actuator hangs off. Returns `Err(QiError::Control)` and changes
    /// nothing when the directive is invalid (unknown app, non-finite
    /// or non-positive rate, zero cap, every OST avoided); successful
    /// applications are recorded in [`RunTrace::directives`].
    pub fn apply_directive(
        &mut self,
        at: SimTime,
        window: u64,
        directive: ControlDirective,
    ) -> Result<(), QiError> {
        self.control_used = true;
        if let Some(app) = directive.app() {
            if app.0 as usize >= self.apps.len() {
                return Err(QiError::Control(format!(
                    "directive targets unknown app {}",
                    app.0
                )));
            }
        }
        match &directive {
            ControlDirective::RateLimit { app, bytes_per_sec } => {
                if !bytes_per_sec.is_finite() || *bytes_per_sec <= 0.0 {
                    return Err(QiError::Control(format!(
                        "rate limit must be finite and positive, got {bytes_per_sec}"
                    )));
                }
                self.tbf
                    .insert(*app, TokenBucket::new(*bytes_per_sec, *bytes_per_sec));
                self.tele.control_rate_limits += 1;
            }
            ControlDirective::ClearRateLimit { app } => {
                self.tbf.remove(app);
                self.tele.control_rate_clears += 1;
            }
            ControlDirective::CapInflight { app, max_inflight } => {
                if *max_inflight == 0 {
                    return Err(QiError::Control("inflight cap must be >= 1".into()));
                }
                self.inflight_caps.insert(app.0, *max_inflight);
                self.tele.control_caps += 1;
                self.admission_recheck(at, app.0);
            }
            ControlDirective::ClearCapInflight { app } => {
                self.inflight_caps.remove(&app.0);
                self.tele.control_cap_clears += 1;
                self.admission_recheck(at, app.0);
            }
            ControlDirective::AvoidOsts { osts } => {
                let n_osts = self.cfg.n_osts();
                let mut avoided = vec![false; n_osts as usize];
                for d in osts {
                    if d.0 >= n_osts {
                        return Err(QiError::Control(format!(
                            "cannot avoid non-OST device {}",
                            d.0
                        )));
                    }
                    avoided[d.0 as usize] = true;
                }
                if avoided.iter().all(|&b| b) {
                    return Err(QiError::Control(
                        "cannot avoid every OST: layouts need a target".into(),
                    ));
                }
                self.avoid_osts = avoided;
                self.tele.control_retargets += 1;
            }
            ControlDirective::ClearAvoidOsts => {
                self.avoid_osts.clear();
                self.tele.control_retarget_clears += 1;
            }
        }
        self.tele.control_applied += 1;
        self.trace.directives.push(DirectiveRecord {
            at,
            window,
            directive,
        });
        Ok(())
    }

    /// One controller tick: close window `control_window`, apply the
    /// controller's directives, reschedule the next tick.
    fn control_tick(&mut self, now: SimTime) {
        let Some(mut ctl) = self.controller.take() else {
            return;
        };
        let window = self.control_window;
        self.control_window += 1;
        let mut out = std::mem::take(&mut self.scratch_directives);
        out.clear();
        ctl.on_window(now, window, &self.trace, &mut out);
        for d in out.drain(..) {
            if self.apply_directive(now, window, d).is_err() {
                self.tele.control_rejected += 1;
            }
        }
        self.scratch_directives = out;
        self.controller = Some(ctl);
        self.events
            .schedule(now + self.control_interval, Ev::Control);
    }

    /// After a cap change for `app`: admit parked RPCs while the new cap
    /// (or its absence) leaves headroom, in ascending OST order then
    /// FIFO — deterministic regardless of park order across OSTs.
    fn admission_recheck(&mut self, now: SimTime, app: u32) {
        if self.adm_waiting.is_empty() {
            return;
        }
        let cap = self.inflight_caps.get(&app).copied().unwrap_or(u32::MAX);
        let keys: Vec<(u32, u32)> = self
            .adm_waiting
            .range((app, 0)..=(app, u32::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            loop {
                let active = self.adm_active.get(&key).copied().unwrap_or(0);
                if active >= cap {
                    break;
                }
                let Some(msg) = self.adm_waiting.get_mut(&key).and_then(|q| q.pop_front()) else {
                    break;
                };
                *self.adm_active.entry(key).or_insert(0) += 1;
                self.tele.control_resumed += 1;
                self.oss_cpu_start(now, msg);
            }
            if self.adm_waiting.get(&key).is_some_and(|q| q.is_empty()) {
                self.adm_waiting.remove(&key);
            }
        }
    }

    /// A capped data RPC finished its OSS/disk journey: free its
    /// admission slot and admit the next parked RPC if the cap allows.
    fn admission_release(&mut self, now: SimTime, app: AppId, dev: DeviceId) {
        if self.adm_active.is_empty() {
            return;
        }
        let key = (app.0, dev.0);
        let Some(active) = self.adm_active.get_mut(&key) else {
            return;
        };
        // An RPC admitted before the cap was (re)installed may release
        // against a fresh counter; saturate instead of underflowing.
        *active = active.saturating_sub(1);
        let cap = self.inflight_caps.get(&app.0).copied().unwrap_or(u32::MAX);
        if *active >= cap {
            return;
        }
        let Some(msg) = self.adm_waiting.get_mut(&key).and_then(|q| q.pop_front()) else {
            if *self.adm_active.get(&key).expect("entry present") == 0
                && !self.inflight_caps.contains_key(&app.0)
            {
                self.adm_active.remove(&key);
            }
            return;
        };
        *self.adm_active.get_mut(&key).expect("entry present") += 1;
        self.tele.control_resumed += 1;
        if self.adm_waiting.get(&key).is_some_and(|q| q.is_empty()) {
            self.adm_waiting.remove(&key);
        }
        self.oss_cpu_start(now, msg);
    }

    /// Schedule a fail-slow injection: from `at` onward, `dev` services
    /// every request `factor`× slower (1.0 restores health). Models the
    /// gray-failure drives of Lu et al.'s Perseus.
    pub fn inject_fail_slow(&mut self, dev: DeviceId, at: SimTime, factor: f64) {
        assert!(dev.index() < self.devices.len(), "no such device");
        assert!(factor >= 1.0);
        self.events
            .schedule(at, Ev::FailSlow { dev: dev.0, factor });
    }

    /// Pre-populate a file (namespace entry + contiguous extents) without
    /// simulating any I/O — the equivalent of a dataset that existed
    /// before the measured run. OSTs are assigned round-robin.
    pub fn precreate_file(&mut self, file: FileKey, len: u64, stripe: Option<StripeConfig>) {
        let layout = self.make_layout(file, stripe);
        self.install_file(file, len, layout);
    }

    /// Like [`Cluster::precreate_file`] but with an explicit OST list
    /// (one per stripe), for workloads that need controlled placement.
    pub fn precreate_file_on(
        &mut self,
        file: FileKey,
        len: u64,
        stripe_size: u64,
        osts: Vec<DeviceId>,
    ) {
        assert!(!osts.is_empty());
        for d in &osts {
            assert!(d.0 < self.cfg.n_osts(), "placement on a non-OST device");
        }
        let layout = FileLayout { stripe_size, osts };
        self.install_file(file, len, layout);
    }

    fn install_file(&mut self, file: FileKey, len: u64, layout: FileLayout) {
        // Pre-existing files were created by an earlier phase of the same
        // workload sequence (e.g. mdtest-hard-write before -read), so
        // their inodes are warm in the MDS cache.
        self.mds.inode_cache.insert(file);
        if len > 0 {
            let small = len <= self.cfg.cache.small_object_max;
            for c in chunks(&layout, 0, len) {
                let key = ObjKey {
                    file,
                    stripe: c.stripe,
                };
                self.extents[c.dev.index()].map(key, c.obj_offset, c.len);
                if small {
                    // Small pre-existing files sit in the server page
                    // cache (e.g. mdtest-hard bodies written moments
                    // before the read phase).
                    self.read_cache[c.dev.index()].touch(key, c.obj_offset + c.len);
                }
            }
        }
        self.mds.namespace.insert(file, layout);
    }

    fn make_layout(&mut self, file: FileKey, stripe: Option<StripeConfig>) -> FileLayout {
        let s = stripe.unwrap_or(self.cfg.stripe);
        let n_osts = self.cfg.n_osts();
        // Stripe re-targeting: with an avoidance set installed, place
        // over the allowed OSTs only (same hash-round-robin rule on the
        // reduced list). The empty set takes the historical formula
        // verbatim, keeping uncontrolled runs byte-identical.
        if self.avoid_osts.iter().any(|&b| b) {
            let allowed: Vec<u32> = (0..n_osts)
                .filter(|&i| !self.avoid_osts[i as usize])
                .collect();
            let count = s.stripe_count.clamp(1, allowed.len() as u32) as usize;
            let start = (file_hash(file) % allowed.len() as u64) as usize;
            self.tele.control_retarget_layouts += 1;
            return FileLayout {
                stripe_size: s.stripe_size,
                osts: (0..count)
                    .map(|i| DeviceId(allowed[(start + i) % allowed.len()]))
                    .collect(),
            };
        }
        let count = s.stripe_count.clamp(1, n_osts);
        let start = (file_hash(file) % n_osts as u64) as u32;
        FileLayout {
            stripe_size: s.stripe_size,
            osts: (0..count).map(|i| DeviceId((start + i) % n_osts)).collect(),
        }
    }

    fn layout_of(&mut self, file: FileKey) -> FileLayout {
        if let Some(l) = self.mds.namespace.get(&file) {
            return l.clone();
        }
        // Data op on a file never created in this run: auto-register with
        // the default stripe (the file "already existed").
        let l = self.make_layout(file, None);
        self.mds.namespace.insert(file, l.clone());
        l
    }

    fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64, msg: Msg) {
        let deliver = self.net.send(now, src, dst, payload);
        self.events.schedule(deliver, Ev::Deliver(msg));
    }

    /// Send a client request, subject to the active link-fault rules.
    ///
    /// The drop fate of a round trip is decided here, at request-send
    /// time: a dropped request occupies both NICs (it is lost in
    /// transit), never reaches the server, and the client recovers via
    /// its [`RetryPolicy`]. Server→client replies always deliver — a
    /// deliberate simplification that keeps at-most-once server
    /// execution without duplicate-request bookkeeping.
    fn send_request(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: u64,
        msg: Msg,
        token: OpToken,
    ) {
        if !self.net.has_faults() {
            self.send(now, src, dst, payload, msg);
            return;
        }
        match self.net.fate(now, src, dst, &mut self.fault_rng) {
            LinkFate::Deliver(extra) => {
                if extra > SimDuration::ZERO {
                    self.tele.rpc_delayed += 1;
                }
                let deliver = self.net.send(now, src, dst, payload);
                self.events.schedule(deliver + extra, Ev::Deliver(msg));
            }
            LinkFate::Dropped => {
                self.tele.rpc_dropped += 1;
                // The transfer still occupies both NICs.
                let _ = self.net.send(now, src, dst, payload);
                let seq = self.retry_states.insert(RetryState {
                    msg,
                    src,
                    dst,
                    payload,
                    token,
                    attempt: 0,
                });
                self.events
                    .schedule(now + self.retry.rpc_timeout, Ev::RpcTimeout { seq });
            }
        }
    }

    /// Realise the fault plan: schedule its one-shot events and install
    /// its window rules. Called once when a run starts.
    fn schedule_fault_plan(&mut self) {
        let plan = std::mem::take(&mut self.fault_plan);
        for ev in plan.events() {
            match *ev {
                FaultEvent::SlowDisk {
                    dev,
                    factor,
                    from,
                    until,
                } => {
                    self.events.schedule(from, Ev::FailSlow { dev, factor });
                    self.events
                        .schedule(until, Ev::FailSlow { dev, factor: 1.0 });
                }
                FaultEvent::DiskStall { dev, at, duration } => {
                    self.events.schedule(
                        at,
                        Ev::DiskStall {
                            dev,
                            until: at + duration,
                        },
                    );
                }
                FaultEvent::RpcDrop {
                    src,
                    dst,
                    prob,
                    from,
                    until,
                } => self.net.add_fault(LinkFault {
                    src: src.map(NodeId),
                    dst: dst.map(NodeId),
                    from,
                    until,
                    kind: LinkFaultKind::Drop { prob },
                }),
                FaultEvent::RpcDelay {
                    src,
                    dst,
                    delay,
                    from,
                    until,
                } => self.net.add_fault(LinkFault {
                    src: src.map(NodeId),
                    dst: dst.map(NodeId),
                    from,
                    until,
                    kind: LinkFaultKind::Delay { delay },
                }),
                FaultEvent::OssThreadCrash {
                    oss,
                    at,
                    restart,
                    remaining,
                } => {
                    self.events.schedule(
                        at,
                        Ev::OssFactor {
                            oss,
                            factor: 1.0 / remaining,
                        },
                    );
                    if let Some(r) = restart {
                        self.events.schedule(r, Ev::OssFactor { oss, factor: 1.0 });
                    }
                }
                FaultEvent::MdsLockStorm {
                    from,
                    until,
                    revoke_factor,
                } => self.lock_storms.push((from, until, revoke_factor)),
            }
        }
    }

    /// Run until `deadline` (or until no events remain). Consumes the
    /// cluster and returns its trace.
    pub fn run(self, deadline: SimTime) -> RunTrace {
        self.run_inner(deadline, None)
    }

    /// Run until application `app` completes (all ranks finished), or
    /// until `deadline` as a safety stop. The trace's
    /// [`RunTrace::completion_of`] tells which happened.
    pub fn run_until_app(self, app: AppId, deadline: SimTime) -> RunTrace {
        self.run_inner(deadline, Some(app))
    }

    fn run_inner(mut self, deadline: SimTime, stop_app: Option<AppId>) -> RunTrace {
        self.schedule_fault_plan();
        // Kick every rank and the sampler.
        for a in 0..self.apps.len() {
            for r in 0..self.apps[a].ranks.len() {
                self.events.schedule(
                    SimTime::ZERO,
                    Ev::RankNext {
                        app: a as u32,
                        rank: r as u32,
                    },
                );
            }
        }
        self.events
            .schedule(SimTime::ZERO + self.cfg.sample_interval, Ev::Sample);
        if self.controller.is_some() {
            // First tick 1 ns after the first window boundary: every
            // event of a window (boundary samples included) is handled
            // before the tick that closes it, so the controller sees
            // exactly the batch-pipeline window content.
            self.events.schedule(
                SimTime::ZERO + self.control_interval + SimDuration::from_nanos(1),
                Ev::Control,
            );
        }

        while let Some((now, ev)) = self.events.pop_until(deadline) {
            self.handle(now, ev);
            if let Some(app) = stop_app {
                if self.trace.app_completion[app.0 as usize].is_some() {
                    break;
                }
            }
        }
        self.trace.end = self.events.now();
        self.trace.events_processed = self.events.processed();
        self.trace.metrics = self.metrics_snapshot(self.events.now());
        self.trace
    }

    /// Assemble the cluster-wide telemetry snapshot at `now`: per-device
    /// block-layer counters and distributions (`pfs.ost{i}.*`,
    /// `pfs.mdt.*`), per-server NIC traffic and utilisation
    /// (`pfs.nic.*`), and MDS metadata statistics (`pfs.mds.*`). Every
    /// value derives from simulated time and deterministic event-loop
    /// state, so the snapshot is byte-stable across identical runs.
    fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let n_osts = self.cfg.n_osts() as usize;
        for (i, dev) in self.devices.iter().enumerate() {
            let p = if i < n_osts {
                format!("pfs.ost{i}")
            } else {
                "pfs.mdt".to_string()
            };
            let c = dev.counters(now);
            for (field, v) in [
                ("reads_completed", c.reads_completed),
                ("writes_completed", c.writes_completed),
                ("sectors_read", c.sectors_read),
                ("sectors_written", c.sectors_written),
                ("read_merges", c.read_merges),
                ("write_merges", c.write_merges),
                ("enqueued", c.enqueued),
                ("wait_ns", c.wait_ns),
                ("busy_ns", c.busy_ns),
            ] {
                snap.put(&format!("{p}.{field}"), MetricValue::Counter(v));
            }
            snap.put(
                &format!("{p}.queue_depth"),
                MetricValue::Stats(dev.depth_stats().clone()),
            );
            snap.put(
                &format!("{p}.seek_sectors"),
                MetricValue::Stats(dev.seek_stats().clone()),
            );
            snap.put(
                &format!("{p}.service_us"),
                MetricValue::Histogram(dev.service_time_hist().clone()),
            );
        }
        let elapsed = now.as_secs_f64();
        let nic = |snap: &mut MetricsSnapshot, label: String, node: NodeId| {
            let busy = self.net.nic_busy(node).as_secs_f64();
            snap.put(
                &format!("{label}.bytes"),
                MetricValue::Counter(self.net.nic_bytes(node)),
            );
            snap.put(&format!("{label}.busy_us"), MetricValue::Gauge(busy * 1e6));
            let util = if elapsed > 0.0 { busy / elapsed } else { 0.0 };
            snap.put(&format!("{label}.util"), MetricValue::Gauge(util));
        };
        for j in 0..self.cfg.oss_nodes {
            let node = NodeId(self.cfg.client_nodes + j);
            nic(&mut snap, format!("pfs.nic.oss{j}"), node);
        }
        let mds_node = NodeId(self.cfg.client_nodes + self.cfg.oss_nodes);
        nic(&mut snap, "pfs.nic.mds".to_string(), mds_node);
        snap.put(
            "pfs.mds.lock_wait_us",
            MetricValue::Stats(self.tele.lock_wait_us.clone()),
        );
        snap.put(
            "pfs.mds.lock_revocations",
            MetricValue::Counter(self.tele.lock_revocations),
        );
        snap.put(
            "pfs.mds.lookup_cache_hits",
            MetricValue::Counter(self.tele.lookup_cache_hits),
        );
        snap.put(
            "pfs.mds.lookup_cache_misses",
            MetricValue::Counter(self.tele.lookup_cache_misses),
        );
        snap.put(
            "pfs.sampler.samples",
            MetricValue::Counter(self.tele.samples_taken),
        );
        // Fault/retry counters are emitted unconditionally (zero on
        // healthy runs) so snapshots keep a stable key set whether or
        // not a plan was installed.
        for (field, v) in [
            ("deadline_exceeded", self.tele.rpc_deadline_exceeded),
            ("delayed", self.tele.rpc_delayed),
            ("dropped", self.tele.rpc_dropped),
            ("failed_ops", self.tele.rpc_failed_ops),
            ("retries", self.tele.rpc_retries),
            ("timeouts", self.tele.rpc_timeouts),
        ] {
            snap.put(&format!("pfs.rpc.{field}"), MetricValue::Counter(v));
        }
        snap.put(
            "pfs.faults.disk_stalls",
            MetricValue::Counter(self.tele.disk_stalls),
        );
        snap.put(
            "pfs.faults.lock_storm_revocations",
            MetricValue::Counter(self.tele.lock_storm_revocations),
        );
        // The control block appears only on controlled runs (a
        // controller installed or a directive applied), so snapshots of
        // uncontrolled runs keep their historical golden key set.
        if self.control_used {
            for (field, v) in [
                ("applied", self.tele.control_applied),
                ("cap_clears", self.tele.control_cap_clears),
                ("caps", self.tele.control_caps),
                ("parked", self.tele.control_parked),
                ("rate_clears", self.tele.control_rate_clears),
                ("rate_limits", self.tele.control_rate_limits),
                ("rejected", self.tele.control_rejected),
                ("resumed", self.tele.control_resumed),
                ("retarget_clears", self.tele.control_retarget_clears),
                ("retarget_layouts", self.tele.control_retarget_layouts),
                ("retargets", self.tele.control_retargets),
            ] {
                snap.put(&format!("pfs.control.{field}"), MetricValue::Counter(v));
            }
            if let Some(ctl) = &self.controller {
                ctl.metrics_into(&mut snap);
            }
        }
        snap
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::RankNext { app, rank } => self.rank_next(now, app, rank),
            Ev::Deliver(msg) => self.deliver(now, msg),
            Ev::OssProcess(msg) => self.oss_process(now, msg),
            Ev::MdsProcess(msg) => self.mds_process(now, msg),
            Ev::DiskDone { dev } => self.disk_done(now, dev),
            Ev::DiskIdle { dev } => {
                let d = self.devices[dev as usize].idle_check(now);
                self.handle_dispatch(now, dev, d);
            }
            Ev::SendLater {
                src,
                dst,
                payload,
                token,
            } => self.send(now, src, dst, payload, Msg::OpDone { token }),
            Ev::TbfAdmitted(msg) => self.oss_admit(now, msg),
            Ev::MdsLockRun { token, client, dir } => {
                self.start_journal_write(now, token, client, dir)
            }
            Ev::Sample => {
                self.take_sample(now);
                self.events
                    .schedule(now + self.cfg.sample_interval, Ev::Sample);
            }
            Ev::Control => self.control_tick(now),
            Ev::FailSlow { dev, factor } => {
                self.devices[dev as usize].disk_mut().set_fail_slow(factor);
            }
            Ev::DiskStall { dev, until } => {
                self.tele.disk_stalls += 1;
                let d = self.devices[dev as usize].stall(now, until);
                self.handle_dispatch(now, dev, d);
            }
            Ev::OssFactor { oss, factor } => {
                self.oss_cpu_factor[oss as usize] = factor;
            }
            Ev::RpcTimeout { seq } => self.rpc_timeout(now, seq),
            Ev::RpcResend { seq } => self.rpc_resend(now, seq),
        }
    }

    // ------------------------------------------------------ RPC retries

    /// True while `token` is still the rank's current operation.
    fn op_is_current(&self, token: OpToken) -> bool {
        let st = &self.apps[token.app.0 as usize].ranks[token.rank as usize];
        matches!(st.cur, Some((t, _, _, _)) if t == token)
    }

    /// A reply wait expired: retry with backoff, or give up when the
    /// retry budget or the per-op deadline is exhausted.
    fn rpc_timeout(&mut self, now: SimTime, seq: SlabKey) {
        let Some(state) = self.retry_states.get(seq) else {
            return;
        };
        let token = state.token;
        if !self.op_is_current(token) {
            self.retry_states.remove(seq);
            return;
        }
        self.tele.rpc_timeouts += 1;
        let issued = self.apps[token.app.0 as usize].ranks[token.rank as usize]
            .cur
            .expect("current op")
            .3;
        let deadline_hit = self.retry.op_deadline.is_some_and(|dl| now >= issued + dl);
        let exhausted = state.attempt >= self.retry.max_retries;
        if deadline_hit || exhausted {
            if deadline_hit {
                self.tele.rpc_deadline_exceeded += 1;
            }
            self.retry_states.remove(seq);
            self.fail_op_part(now, token);
            return;
        }
        let attempt = {
            let state = self.retry_states.get_mut(seq).expect("retry state present");
            state.attempt += 1;
            state.attempt
        };
        self.tele.rpc_retries += 1;
        let backoff = self.retry.backoff(attempt, &mut self.fault_rng);
        self.events.schedule(now + backoff, Ev::RpcResend { seq });
    }

    /// Backoff elapsed: resend the stored request, consulting the link
    /// fate afresh (the resend may be dropped again).
    fn rpc_resend(&mut self, now: SimTime, seq: SlabKey) {
        let Some(state) = self.retry_states.get(seq) else {
            return;
        };
        if !self.op_is_current(state.token) {
            self.retry_states.remove(seq);
            return;
        }
        let (src, dst, payload) = (state.src, state.dst, state.payload);
        match self.net.fate(now, src, dst, &mut self.fault_rng) {
            LinkFate::Dropped => {
                self.tele.rpc_dropped += 1;
                let _ = self.net.send(now, src, dst, payload);
                self.events
                    .schedule(now + self.retry.rpc_timeout, Ev::RpcTimeout { seq });
            }
            LinkFate::Deliver(extra) => {
                if extra > SimDuration::ZERO {
                    self.tele.rpc_delayed += 1;
                }
                let state = self.retry_states.remove(seq).expect("retry state present");
                let deliver = self.net.send(now, src, dst, payload);
                self.events
                    .schedule(deliver + extra, Ev::Deliver(state.msg));
            }
        }
    }

    /// Abandon one chunk of an operation. The op is recorded as failed
    /// (and the rank moves on) once every outstanding chunk resolves.
    fn fail_op_part(&mut self, now: SimTime, token: OpToken) {
        if !self.op_is_current(token) {
            return;
        }
        self.apps[token.app.0 as usize].ranks[token.rank as usize].failed = true;
        self.op_part_done(now, token);
    }

    // ---------------------------------------------------------- clients

    fn rank_next(&mut self, now: SimTime, app: u32, rank: u32) {
        let step = {
            let a = &mut self.apps[app as usize];
            match a.programs[rank as usize].as_mut() {
                Some(p) => p.next(now),
                None => return,
            }
        };
        match step {
            ProgramStep::Compute(d) => {
                self.events.schedule(now + d, Ev::RankNext { app, rank });
            }
            ProgramStep::Finished => {
                let a = &mut self.apps[app as usize];
                a.programs[rank as usize] = None;
                if !a.ranks[rank as usize].done {
                    a.ranks[rank as usize].done = true;
                    a.ranks_left -= 1;
                    if a.ranks_left == 0 {
                        self.trace.app_completion[app as usize] = Some(now);
                    }
                }
            }
            ProgramStep::Op(op) => self.issue_op(now, app, rank, op),
        }
    }

    fn issue_op(&mut self, now: SimTime, app: u32, rank: u32, op: IoOp) {
        let issued = now + CLIENT_OP_OVERHEAD;
        let token = {
            let st = &mut self.apps[app as usize].ranks[rank as usize];
            let token = OpToken {
                app: AppId(app),
                rank,
                seq: st.seq,
            };
            st.seq += 1;
            st.cur = Some((token, op.kind(), op.bytes(), issued));
            token
        };
        let client = self.apps[app as usize].nodes[rank as usize];
        match op {
            IoOp::Read { file, offset, len } | IoOp::Write { file, offset, len } => {
                let is_read = matches!(
                    self.apps[app as usize].ranks[rank as usize].cur,
                    Some((_, OpKind::Read, _, _))
                );
                let layout = self.layout_of(file);
                // Owned scratch: the loop body re-borrows `self` mutably.
                let mut cs = std::mem::take(&mut self.scratch_chunks);
                cs.clear();
                chunks_into(&layout, offset, len, &mut cs);
                self.apps[app as usize].ranks[rank as usize].outstanding = cs.len() as u32;
                for c in cs.drain(..) {
                    let obj = ObjKey {
                        file,
                        stripe: c.stripe,
                    };
                    self.trace.rpcs.push(RpcRecord {
                        app: AppId(app),
                        dev: c.dev,
                        kind: if is_read { OpKind::Read } else { OpKind::Write },
                        bytes: c.len,
                        issued,
                    });
                    let dst = self.dev_node[c.dev.index()];
                    let (payload, msg) = if is_read {
                        (
                            0,
                            Msg::ReadReq {
                                dev: c.dev,
                                obj,
                                obj_off: c.obj_offset,
                                len: c.len,
                                token,
                                client,
                            },
                        )
                    } else {
                        (
                            c.len,
                            Msg::WriteReq {
                                dev: c.dev,
                                obj,
                                obj_off: c.obj_offset,
                                len: c.len,
                                token,
                                client,
                            },
                        )
                    };
                    self.send_request(issued, client, dst, payload, msg, token);
                }
                self.scratch_chunks = cs;
            }
            meta => {
                self.apps[app as usize].ranks[rank as usize].outstanding = 1;
                let mop = match meta {
                    IoOp::Open { file } | IoOp::Stat { file } => MetaOp::Lookup { file },
                    IoOp::Close { .. } => MetaOp::Close,
                    IoOp::Create { file, dir, stripe } => MetaOp::Mutate {
                        create: Some((file, stripe)),
                        dir,
                    },
                    IoOp::Unlink { dir, .. } => MetaOp::Mutate { create: None, dir },
                    IoOp::Mkdir { dir } => MetaOp::Mutate { create: None, dir },
                    IoOp::Read { .. } | IoOp::Write { .. } => unreachable!(),
                };
                let mdt = self.mdt();
                self.trace.rpcs.push(RpcRecord {
                    app: AppId(app),
                    dev: mdt,
                    kind: self.apps[app as usize].ranks[rank as usize]
                        .cur
                        .expect("current op")
                        .1,
                    bytes: 0,
                    issued,
                });
                let dst = self.dev_node[mdt.index()];
                self.send_request(
                    issued,
                    client,
                    dst,
                    META_MSG_BYTES,
                    Msg::MetaReq {
                        op: mop,
                        token,
                        client,
                    },
                    token,
                );
            }
        }
    }

    fn op_part_done(&mut self, now: SimTime, token: OpToken) {
        let app = token.app.0 as usize;
        let rank = token.rank as usize;
        let st = &mut self.apps[app].ranks[rank];
        let Some((cur_token, kind, bytes, issued)) = st.cur else {
            return; // op was cancelled (should not happen)
        };
        debug_assert_eq!(cur_token, token, "completion for a stale op");
        st.outstanding -= 1;
        if st.outstanding == 0 {
            st.cur = None;
            if st.failed {
                // At least one chunk was abandoned by the retry layer:
                // the op failed, but the rank still makes progress.
                st.failed = false;
                self.tele.rpc_failed_ops += 1;
                self.trace.failed_ops.push(token);
            } else {
                self.trace.ops.push(OpRecord {
                    token,
                    kind,
                    bytes,
                    issued,
                    completed: now,
                });
            }
            self.events.schedule(
                now,
                Ev::RankNext {
                    app: token.app.0,
                    rank: token.rank,
                },
            );
        }
    }

    // ---------------------------------------------------------- routing

    fn deliver(&mut self, now: SimTime, msg: Msg) {
        match msg {
            Msg::ReadReq { len, token, .. } | Msg::WriteReq { len, token, .. } => {
                // Server-side TBF admission, if this app is rate-limited.
                // The wait happens BEFORE the CPU stage so a throttled
                // app cannot head-of-line block other applications.
                let admitted = match self.tbf.get_mut(&token.app) {
                    Some(bucket) => bucket.earliest(now, len as f64),
                    None => now,
                };
                if admitted > now {
                    self.events.schedule(admitted, Ev::TbfAdmitted(msg));
                } else {
                    self.oss_admit(now, msg);
                }
            }
            Msg::MetaReq { ref op, .. } => {
                let cost = match op {
                    MetaOp::Mutate { .. } => self.cfg.mds.cpu_per_mutation,
                    _ => self.cfg.mds.cpu_per_op,
                };
                let start = now.max(self.mds.cpu_free);
                let done = start + cost;
                self.mds.cpu_free = done;
                self.events.schedule(done, Ev::MdsProcess(msg));
            }
            Msg::OpDone { token } => self.op_part_done(now, token),
        }
    }

    // -------------------------------------------------------------- OSS

    /// Mark `obj` resident in `dev`'s page cache if, and only if, the
    /// whole object is small (residency is object-granular, so partially
    /// read large objects must never qualify).
    fn touch_small(&mut self, dev: DeviceId, obj: ObjKey) {
        let bytes = self.extents[dev.index()].object_sectors(obj) * SECTOR_SIZE;
        if bytes > 0 && bytes <= self.cfg.cache.small_object_max {
            self.read_cache[dev.index()].touch(obj, bytes);
        }
    }

    fn handle_dispatch(&mut self, now: SimTime, dev: u32, d: Dispatch) {
        match d {
            Dispatch::Started(dur) => self.events.schedule(now + dur, Ev::DiskDone { dev }),
            Dispatch::Anticipating(at) => self.events.schedule(at, Ev::DiskIdle { dev }),
            Dispatch::Idle => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_block(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        kind: ReqKind,
        sector: u64,
        sectors: u64,
        foreground: bool,
        tag: DiskTag,
    ) {
        let d = self.devices[dev.index()].submit(now, kind, sector, sectors, foreground, tag);
        self.handle_dispatch(now, dev.0, d);
    }

    /// Admit a data RPC to its OSS (post-TBF): if the issuing app has
    /// an inflight cap and the target OST is at it, park the RPC; else
    /// count it (capped apps only) and start the CPU stage.
    fn oss_admit(&mut self, now: SimTime, msg: Msg) {
        if !self.inflight_caps.is_empty() {
            let (dev, app) = match &msg {
                Msg::ReadReq { dev, token, .. } | Msg::WriteReq { dev, token, .. } => {
                    (*dev, token.app)
                }
                _ => unreachable!("only data RPCs reach the OSS"),
            };
            if let Some(&cap) = self.inflight_caps.get(&app.0) {
                let key = (app.0, dev.0);
                let active = self.adm_active.entry(key).or_insert(0);
                if *active >= cap {
                    self.tele.control_parked += 1;
                    self.adm_waiting.entry(key).or_default().push_back(msg);
                    return;
                }
                *active += 1;
            }
        }
        self.oss_cpu_start(now, msg);
    }

    /// Schedule an admitted data RPC onto its OSS node's CPU.
    fn oss_cpu_start(&mut self, now: SimTime, msg: Msg) {
        let dev = match &msg {
            Msg::ReadReq { dev, .. } | Msg::WriteReq { dev, .. } => *dev,
            _ => unreachable!("only data RPCs reach the OSS"),
        };
        let oss = (dev.0 / self.cfg.osts_per_oss) as usize;
        let start = now.max(self.oss_cpu_free[oss]);
        // `OssThreadCrash`: fewer service threads → each RPC costs more
        // CPU time. Skip the f64 roundtrip entirely when healthy so the
        // event stream is bit-identical to pre-fault builds.
        let factor = self.oss_cpu_factor[oss];
        let cost = if factor != 1.0 {
            SimDuration::from_secs_f64(self.cfg.oss.cpu_per_rpc.as_secs_f64() * factor)
        } else {
            self.cfg.oss.cpu_per_rpc
        };
        let done = start + cost;
        self.oss_cpu_free[oss] = done;
        self.events.schedule(done, Ev::OssProcess(msg));
    }

    fn oss_process(&mut self, now: SimTime, msg: Msg) {
        match msg {
            Msg::ReadReq {
                dev,
                obj,
                obj_off,
                len,
                token,
                client,
            } => {
                // Server page cache: small resident objects never touch
                // the disk.
                if self.read_cache[dev.index()].contains(obj) {
                    let memcpy =
                        SimDuration::from_secs_f64(len as f64 / self.cfg.cache.absorb_rate);
                    self.events.schedule(
                        now + memcpy,
                        Ev::SendLater {
                            src: self.dev_node[dev.index()],
                            dst: client,
                            payload: len,
                            token,
                        },
                    );
                    self.admission_release(now, token.app, dev);
                    return;
                }
                let mut ranges = std::mem::take(&mut self.scratch_ranges);
                ranges.clear();
                self.extents[dev.index()].map_into(obj, obj_off, len, &mut ranges);
                let chunk = self.chunk_pending.insert(ChunkPending {
                    remaining: ranges.len() as u32,
                    token,
                    client,
                    dev,
                    reply_bytes: len,
                    touched: Some((obj, obj_off + len)),
                });
                for r in ranges.drain(..) {
                    self.submit_block(
                        now,
                        dev,
                        ReqKind::Read,
                        r.sector,
                        r.sectors,
                        true,
                        DiskTag::ReadChunk { chunk },
                    );
                }
                self.scratch_ranges = ranges;
            }
            Msg::WriteReq {
                dev,
                obj,
                obj_off,
                len,
                token,
                client,
            } => {
                let pw = PendingWrite {
                    token,
                    client,
                    dev,
                    obj,
                    obj_off,
                    len,
                };
                match self.caches[dev.index()].admit(len, pw) {
                    Admit::Absorbed { absorb } => {
                        let pw = PendingWrite {
                            token,
                            client,
                            dev,
                            obj,
                            obj_off,
                            len,
                        };
                        self.touch_small(dev, obj);
                        self.start_flush(now, &pw);
                        self.events.schedule(
                            now + absorb,
                            Ev::SendLater {
                                src: self.dev_node[dev.index()],
                                dst: client,
                                payload: 0,
                                token,
                            },
                        );
                        self.admission_release(now, token.app, dev);
                    }
                    Admit::Throttled => {} // released by a later flush
                    Admit::Sync => {
                        let mut ranges = std::mem::take(&mut self.scratch_ranges);
                        ranges.clear();
                        self.extents[dev.index()].map_into(obj, obj_off, len, &mut ranges);
                        let chunk = self.chunk_pending.insert(ChunkPending {
                            remaining: ranges.len() as u32,
                            token,
                            client,
                            dev,
                            reply_bytes: 0,
                            touched: None,
                        });
                        for r in ranges.drain(..) {
                            self.submit_block(
                                now,
                                dev,
                                ReqKind::Write,
                                r.sector,
                                r.sectors,
                                true,
                                DiskTag::SyncChunk { chunk },
                            );
                        }
                        self.scratch_ranges = ranges;
                    }
                }
            }
            _ => unreachable!("only data RPCs reach the OSS"),
        }
    }

    /// Submit background flush requests covering one absorbed write.
    fn start_flush(&mut self, now: SimTime, pw: &PendingWrite) {
        let mut ranges = std::mem::take(&mut self.scratch_ranges);
        ranges.clear();
        self.extents[pw.dev.index()].map_into(pw.obj, pw.obj_off, pw.len, &mut ranges);
        let mut remaining = pw.len;
        let n = ranges.len();
        for (i, r) in ranges.drain(..).enumerate() {
            let sector_bytes = r.sectors * SECTOR_SIZE;
            let share = if i + 1 == n {
                remaining
            } else {
                sector_bytes.min(remaining)
            };
            remaining -= share;
            self.submit_block(
                now,
                pw.dev,
                ReqKind::Write,
                r.sector,
                r.sectors,
                false,
                DiskTag::Flush { dirty_bytes: share },
            );
        }
        self.scratch_ranges = ranges;
    }

    // -------------------------------------------------------------- MDS

    fn journal_alloc(&mut self) -> u64 {
        let s = self.mds.journal_ptr;
        self.mds.journal_ptr += self.cfg.mds.journal_record_bytes / SECTOR_SIZE;
        if self.mds.journal_ptr >= self.mds.journal_base + self.mds.journal_sectors {
            self.mds.journal_ptr = self.mds.journal_base;
        }
        s
    }

    fn inode_sector(&self, file: FileKey) -> u64 {
        // Spread inode reads over the inode region, 4 KiB aligned.
        let h = (file.app.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(file.num.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let slots = (self.mds.inode_sectors / META_SECTORS).max(1);
        self.mds.inode_base + (h % slots) * META_SECTORS
    }

    /// Begin a mutation that holds `dir`'s lock: pay the lock revocation
    /// round-trip first when the lock last belonged to a different
    /// client, then journal the change.
    fn run_under_dir_lock(&mut self, now: SimTime, token: OpToken, client: NodeId, dir: DirKey) {
        // `MdsLockStorm`: inside a storm window every acquisition pays a
        // (possibly lengthened) revocation, as if lock ownership were
        // thrashing across the whole client population.
        let storm = self
            .lock_storms
            .iter()
            .find(|&&(from, until, _)| now >= from && now < until)
            .map(|&(_, _, f)| f);
        let lock = self.mds.dirs.get_mut(&dir).expect("locked dir");
        let switch = lock.last_client != Some(client) || storm.is_some();
        lock.last_client = Some(client);
        if switch {
            self.tele.lock_revocations += 1;
            let revoke = match storm {
                Some(f) => {
                    self.tele.lock_storm_revocations += 1;
                    if f != 1.0 {
                        SimDuration::from_secs_f64(self.cfg.mds.lock_revoke.as_secs_f64() * f)
                    } else {
                        self.cfg.mds.lock_revoke
                    }
                }
                None => self.cfg.mds.lock_revoke,
            };
            let at = now + revoke;
            self.events
                .schedule(at, Ev::MdsLockRun { token, client, dir });
        } else {
            self.start_journal_write(now, token, client, dir);
        }
    }

    fn start_journal_write(&mut self, now: SimTime, token: OpToken, client: NodeId, dir: DirKey) {
        let sector = self.journal_alloc();
        let mdt = self.mdt();
        self.submit_block(
            now,
            mdt,
            ReqKind::Write,
            sector,
            META_SECTORS,
            true,
            DiskTag::Journal { token, client, dir },
        );
    }

    fn mds_process(&mut self, now: SimTime, msg: Msg) {
        let Msg::MetaReq { op, token, client } = msg else {
            unreachable!("only metadata RPCs reach the MDS");
        };
        let mds_node = self.dev_node[self.mdt().index()];
        match op {
            MetaOp::Lookup { file } => {
                let hit = self.mds.inode_cache.contains(file)
                    || self.rng.chance(self.cfg.mds.lookup_cache_hit);
                if hit {
                    self.tele.lookup_cache_hits += 1;
                } else {
                    self.tele.lookup_cache_misses += 1;
                }
                if hit {
                    self.send(now, mds_node, client, META_MSG_BYTES, Msg::OpDone { token });
                } else {
                    let sector = self.inode_sector(file);
                    let mdt = self.mdt();
                    self.submit_block(
                        now,
                        mdt,
                        ReqKind::Read,
                        sector,
                        META_SECTORS,
                        true,
                        DiskTag::Lookup {
                            token,
                            client,
                            file,
                        },
                    );
                }
            }
            MetaOp::Close => {
                self.send(now, mds_node, client, META_MSG_BYTES, Msg::OpDone { token });
            }
            MetaOp::Mutate { create, dir } => {
                if let Some((file, stripe)) = create {
                    let layout = self.make_layout(file, stripe);
                    self.mds.namespace.insert(file, layout);
                    // The creator's MDS holds the fresh inode.
                    self.mds.inode_cache.insert(file);
                }
                let lock = self.mds.dirs.entry(dir).or_default();
                if lock.busy {
                    lock.waiters.push_back((token, client, now));
                } else {
                    lock.busy = true;
                    self.tele.lock_wait_us.push(0.0);
                    self.run_under_dir_lock(now, token, client, dir);
                }
            }
        }
    }

    // ------------------------------------------------------------ disks

    fn disk_done(&mut self, now: SimTime, dev: u32) {
        let mut members = std::mem::take(&mut self.scratch_members);
        let (_meta, next) = self.devices[dev as usize].complete_into(now, &mut members);
        self.handle_dispatch(now, dev, next);
        let mut flushed_bytes = 0u64;
        for m in members.drain(..) {
            match m.tag {
                DiskTag::ReadChunk { chunk } | DiskTag::SyncChunk { chunk } => {
                    let finished = {
                        let p = self
                            .chunk_pending
                            .get_mut(chunk)
                            .expect("unknown chunk completion");
                        p.remaining -= 1;
                        p.remaining == 0
                    };
                    if finished {
                        let p = self.chunk_pending.remove(chunk).expect("chunk present");
                        if let Some((obj, _end)) = p.touched {
                            self.touch_small(p.dev, obj);
                        }
                        let src = self.dev_node[p.dev.index()];
                        self.send(
                            now,
                            src,
                            p.client,
                            p.reply_bytes,
                            Msg::OpDone { token: p.token },
                        );
                        self.admission_release(now, p.token.app, p.dev);
                    }
                }
                DiskTag::Flush { dirty_bytes } => flushed_bytes += dirty_bytes,
                DiskTag::Journal { token, client, dir } => {
                    let src = self.dev_node[self.mdt().index()];
                    self.send(now, src, client, META_MSG_BYTES, Msg::OpDone { token });
                    // Release the directory lock; start the next waiter.
                    let next_waiter = {
                        let lock = self.mds.dirs.get_mut(&dir).expect("locked dir");
                        match lock.waiters.pop_front() {
                            Some(w) => Some(w),
                            None => {
                                lock.busy = false;
                                None
                            }
                        }
                    };
                    if let Some((t, c, since)) = next_waiter {
                        self.tele
                            .lock_wait_us
                            .push(now.saturating_since(since).as_secs_f64() * 1e6);
                        self.run_under_dir_lock(now, t, c, dir);
                    }
                }
                DiskTag::Lookup {
                    token,
                    client,
                    file,
                } => {
                    self.mds.inode_cache.insert(file);
                    let src = self.dev_node[self.mdt().index()];
                    self.send(now, src, client, META_MSG_BYTES, Msg::OpDone { token });
                }
            }
        }
        self.scratch_members = members;
        if flushed_bytes > 0 {
            let released = self.caches[dev as usize].flushed(flushed_bytes);
            for r in released {
                let (token, client, d) = (r.tag.token, r.tag.client, r.tag.dev);
                self.start_flush(now, &r.tag);
                self.events.schedule(
                    now + r.absorb,
                    Ev::SendLater {
                        src: self.dev_node[d.index()],
                        dst: client,
                        payload: 0,
                        token,
                    },
                );
                self.admission_release(now, token.app, d);
            }
        }
    }

    // --------------------------------------------------------- sampling

    fn take_sample(&mut self, now: SimTime) {
        self.tele.samples_taken += 1;
        let n_osts = self.cfg.n_osts() as usize;
        for (i, dev) in self.devices.iter().enumerate() {
            let (dirty, throttled) = if i < n_osts {
                (
                    self.caches[i].dirty(),
                    self.caches[i].throttled_now() as u64,
                )
            } else {
                (0, 0)
            };
            self.trace.samples.push(ServerSample {
                time: now,
                dev: DeviceId(i as u32),
                counters: dev.counters(now),
                dirty_bytes: dirty,
                throttled_now: throttled,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(num: u64) -> FileKey {
        FileKey { app: AppId(0), num }
    }

    fn cluster(cfg: ClusterConfig, seed: u64) -> Cluster {
        Cluster::builder()
            .config(cfg)
            .seed(seed)
            .build()
            .expect("valid test cluster")
    }

    /// A program issuing a fixed list of ops, then finishing.
    struct Script {
        ops: Vec<IoOp>,
        i: usize,
    }
    impl RankProgram for Script {
        fn next(&mut self, _now: SimTime) -> ProgramStep {
            if self.i < self.ops.len() {
                self.i += 1;
                ProgramStep::Op(self.ops[self.i - 1].clone())
            } else {
                ProgramStep::Finished
            }
        }
    }

    fn script(ops: Vec<IoOp>) -> Box<dyn RankProgram> {
        Box::new(Script { ops, i: 0 })
    }

    #[test]
    fn single_write_completes_and_is_traced() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let app = cl.add_app(
            "w",
            vec![script(vec![IoOp::Write {
                file: file(1),
                offset: 0,
                len: 1024 * 1024,
            }])],
            &[NodeId(0)],
        );
        let trace = cl.run_until_app(app, SimTime::from_secs(10));
        assert!(trace.completion_of(app).is_some());
        assert_eq!(trace.ops.len(), 1);
        let op = &trace.ops[0];
        assert_eq!(op.kind, OpKind::Write);
        assert_eq!(op.bytes, 1024 * 1024);
        assert!(op.completed > op.issued);
        // Cached write: ack should come back in ~network + absorb time,
        // well under the disk service time for 1 MiB.
        assert!(op.duration().as_secs_f64() < 0.01, "{}", op.duration());
        assert_eq!(trace.rpcs.len(), 1);
    }

    #[test]
    fn read_takes_disk_time() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        cl.precreate_file(file(1), 16 * 1024 * 1024, None);
        let app = cl.add_app(
            "r",
            vec![script(vec![IoOp::Read {
                file: file(1),
                offset: 0,
                len: 1024 * 1024,
            }])],
            &[NodeId(0)],
        );
        let trace = cl.run_until_app(app, SimTime::from_secs(10));
        let op = &trace.ops[0];
        // 1 MiB at 150 MB/s ≈ 7 ms of media time plus transfers.
        let d = op.duration().as_secs_f64();
        assert!(d > 0.006, "read too fast: {d}");
        assert!(d < 0.05, "read too slow: {d}");
    }

    #[test]
    fn ops_run_in_sequence_per_rank() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let ops: Vec<IoOp> = (0..10)
            .map(|i| IoOp::Write {
                file: file(1),
                offset: i * 1024 * 1024,
                len: 1024 * 1024,
            })
            .collect();
        let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        assert_eq!(trace.ops.len(), 10);
        for w in trace.ops.windows(2) {
            assert!(w[1].issued >= w[0].completed, "ops overlap");
            assert_eq!(w[1].token.seq, w[0].token.seq + 1);
        }
    }

    #[test]
    fn metadata_creates_serialize_on_shared_dir() {
        // Two ranks creating in the SAME dir must take longer than two
        // ranks creating in SEPARATE dirs.
        let run = |shared: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 1);
            let mk = |rank: u64| -> Box<dyn RankProgram> {
                let dir = DirKey {
                    app: AppId(0),
                    num: if shared { 0 } else { rank },
                };
                let ops = (0..40)
                    .map(|i| IoOp::Create {
                        file: file(rank * 1000 + i),
                        dir,
                        stripe: None,
                    })
                    .collect();
                script(ops)
            };
            let app = cl.add_app("md", vec![mk(0), mk(1)], &[NodeId(0), NodeId(1)]);
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace
                .completion_of(app)
                .expect("metadata app finished")
                .as_secs_f64()
        };
        let t_shared = run(true);
        let t_split = run(false);
        assert!(
            t_shared > t_split * 1.2,
            "shared-dir contention missing: shared {t_shared} split {t_split}"
        );
    }

    #[test]
    fn samples_cover_run_duration() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let _app = cl.add_app(
            "w",
            vec![script(vec![IoOp::Write {
                file: file(1),
                offset: 0,
                len: 1024,
            }])],
            &[NodeId(0)],
        );
        let n_devices = cl.config().n_devices() as usize;
        let trace = cl.run(SimTime::from_secs(5));
        // Samples at 1s..5s for every device (deadline pops no event at 5s,
        // so at least 4 ticks are guaranteed).
        assert!(trace.samples.len() >= 4 * n_devices);
        assert_eq!(trace.samples.len() % n_devices, 0);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let build = || {
            let mut cl = cluster(ClusterConfig::small(), 7);
            cl.precreate_file(file(1), 64 * 1024 * 1024, None);
            let ops: Vec<IoOp> = (0..20)
                .map(|i| {
                    if i % 3 == 0 {
                        IoOp::Stat { file: file(1) }
                    } else {
                        IoOp::Read {
                            file: file(1),
                            offset: (i % 8) * 1024 * 1024,
                            len: 1024 * 1024,
                        }
                    }
                })
                .collect();
            let app = cl.add_app("m", vec![script(ops)], &[NodeId(0)]);
            cl.run_until_app(app, SimTime::from_secs(60))
        };
        let a = build();
        let b = build();
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(b.ops.iter()) {
            assert_eq!(x.issued, y.issued);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.token, y.token);
        }
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn interfered_reads_are_slower() {
        // The headline mechanism: a reader slows down when another app
        // reads from the same OSTs.
        let run = |with_noise: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 3);
            // Everything on OST 0 so the streams genuinely share a disk.
            let ost0 = vec![cl.ost(0)];
            cl.precreate_file_on(file(1), 64 * 1024 * 1024, 1024 * 1024, ost0.clone());
            let reader_ops: Vec<IoOp> = (0..32)
                .map(|i| IoOp::Read {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("target", vec![script(reader_ops)], &[NodeId(0)]);
            if with_noise {
                // Noise app reading its own files from other nodes, forever.
                for k in 0..2u64 {
                    let nf = FileKey {
                        app: AppId(99),
                        num: k,
                    };
                    cl.precreate_file_on(nf, 512 * 1024 * 1024, 1024 * 1024, ost0.clone());
                    let mut i = 0u64;
                    let noise = move |_now: SimTime| {
                        i += 1;
                        ProgramStep::Op(IoOp::Read {
                            file: nf,
                            offset: (i % 512) * 1024 * 1024,
                            len: 1024 * 1024,
                        })
                    };
                    cl.add_app("noise", vec![Box::new(noise)], &[NodeId(1 + k as u32)]);
                }
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(120));
            trace
                .completion_of(app)
                .expect("reader finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy > alone * 1.5,
            "no read-read interference: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn small_writes_throttle_behind_a_bulk_writer() {
        // mdtest-hard-style tiny writes must slow down dramatically when
        // a bulk writer keeps the shared OST's cache at its dirty limit
        // (the Table I 26-41x mechanism).
        let run = |with_bulk: bool| -> f64 {
            let mut cfg = ClusterConfig::small();
            cfg.cache.dirty_limit = 16 * 1024 * 1024;
            let mut cl = cluster(cfg, 9);
            let ost0 = vec![cl.ost(0)];
            // Tiny-writer target: 60 x 3901-byte files on OST 0.
            cl.precreate_file_on(file(1), 4096, 512, ost0.clone());
            let tiny_ops: Vec<IoOp> = (0..60)
                .map(|i| IoOp::Write {
                    file: file(1),
                    offset: i * 4096,
                    len: 3901,
                })
                .collect();
            let app = cl.add_app("tiny", vec![script(tiny_ops)], &[NodeId(0)]);
            if with_bulk {
                let bulk = FileKey {
                    app: AppId(77),
                    num: 0,
                };
                cl.precreate_file_on(bulk, 512 * 1024 * 1024, 1024 * 1024, ost0);
                let mut i = 0u64;
                let noise = move |_now: SimTime| {
                    i += 1;
                    ProgramStep::Op(IoOp::Write {
                        file: bulk,
                        offset: (i % 512) * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                };
                cl.add_app("bulk", vec![Box::new(noise)], &[NodeId(1)]);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(300));
            trace
                .completion_of(app)
                .expect("tiny writer finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy > alone * 3.0,
            "tiny writes not throttled: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn streaming_reader_is_nearly_immune_to_a_bulk_writer() {
        // The flip side (anticipatory idling + read priority): a
        // streaming reader barely notices a concurrent bulk writer on
        // the same OST.
        let run = |with_bulk: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 10);
            let ost0 = vec![cl.ost(0)];
            cl.precreate_file_on(file(1), 64 * 1024 * 1024, 1024 * 1024, ost0.clone());
            let ops: Vec<IoOp> = (0..32)
                .map(|i| IoOp::Read {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("reader", vec![script(ops)], &[NodeId(0)]);
            if with_bulk {
                let bulk = FileKey {
                    app: AppId(88),
                    num: 0,
                };
                cl.precreate_file_on(bulk, 512 * 1024 * 1024, 1024 * 1024, ost0);
                let mut i = 0u64;
                let noise = move |_now: SimTime| {
                    i += 1;
                    ProgramStep::Op(IoOp::Write {
                        file: bulk,
                        offset: (i % 512) * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                };
                cl.add_app("bulk", vec![Box::new(noise)], &[NodeId(1)]);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(120));
            trace
                .completion_of(app)
                .expect("reader finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy < alone * 1.6,
            "reads should shrug off bulk writes: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn small_files_are_served_from_the_page_cache() {
        // A precreated small file's reads never hit the disk: re-reads
        // are orders of magnitude faster than a cold large-file read.
        let mut cl = cluster(ClusterConfig::small(), 2);
        cl.precreate_file(file(1), 3901, None); // small -> resident
        cl.precreate_file(file(2), 64 * 1024 * 1024, None); // large -> cold
        let ops = vec![
            IoOp::Read {
                file: file(1),
                offset: 0,
                len: 3901,
            },
            IoOp::Read {
                file: file(2),
                offset: 0,
                len: 1024 * 1024,
            },
        ];
        let app = cl.add_app("r", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        let small_read = trace.ops[0].duration().as_secs_f64();
        let large_read = trace.ops[1].duration().as_secs_f64();
        assert!(
            small_read * 5.0 < large_read,
            "small {small_read} not cached vs large {large_read}"
        );
    }

    #[test]
    fn server_samples_reflect_cache_pressure() {
        // Saturating one OST's cache must surface in the sampled
        // dirty_bytes (the monitor's cache-pressure signal).
        let mut cfg = ClusterConfig::small();
        cfg.cache.dirty_limit = 8 * 1024 * 1024;
        cfg.sample_interval = SimDuration::from_millis(100);
        let mut cl = cluster(cfg, 3);
        let ost0 = vec![cl.ost(0)];
        cl.precreate_file_on(file(1), 256 * 1024 * 1024, 1024 * 1024, ost0);
        let ops: Vec<IoOp> = (0..128)
            .map(|i| IoOp::Write {
                file: file(1),
                offset: i * 1024 * 1024,
                len: 1024 * 1024,
            })
            .collect();
        let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(120));
        let max_dirty = trace
            .samples
            .iter()
            .filter(|s| s.dev == DeviceId(0))
            .map(|s| s.dirty_bytes)
            .max()
            .expect("samples exist");
        assert!(
            max_dirty >= 7 * 1024 * 1024,
            "cache pressure invisible: max dirty {max_dirty}"
        );
        // And the flush eventually drains: writes complete.
        assert_eq!(trace.ops.len(), 128);
    }

    #[test]
    fn server_tbf_rate_limits_an_app() {
        // A writer limited to 10 MB/s must take ~10x longer than one
        // allowed to run free (cache-speed writes).
        let run = |limit: Option<f64>| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 6);
            let ops: Vec<IoOp> = (0..64)
                .map(|i| IoOp::Write {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
            if let Some(rate) = limit {
                cl.set_app_rate_limit(app, rate);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace.completion_of(app).expect("finished").as_secs_f64()
        };
        let free = run(None);
        let limited = run(Some(10.0e6));
        // 64 MiB at 10 MB/s ≈ 6.7 s (minus the 1 s burst).
        assert!(
            limited > free * 3.0 && limited > 4.0,
            "TBF ineffective: free {free} limited {limited}"
        );
    }

    #[test]
    fn shared_nic_slows_colocated_ranks() {
        // Two ranks on ONE client node share its NIC; spreading them over
        // two nodes must be faster for network-bound (cached) writes.
        let run = |colocated: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 4);
            let mk = |rank: u64| -> Box<dyn RankProgram> {
                let ops: Vec<IoOp> = (0..32)
                    .map(|i| IoOp::Write {
                        file: file(rank),
                        offset: i * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                    .collect();
                script(ops)
            };
            let nodes: Vec<NodeId> = if colocated {
                vec![NodeId(0), NodeId(0)]
            } else {
                vec![NodeId(0), NodeId(1)]
            };
            let app = cl.add_app("w", vec![mk(0), mk(1)], &nodes);
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace.completion_of(app).expect("finished").as_secs_f64()
        };
        let spread = run(false);
        let shared = run(true);
        assert!(
            shared > spread * 1.2,
            "NIC contention missing: shared {shared} spread {spread}"
        );
    }
}
