//! The cluster simulator: clients, network, OSS/OST, MDS/MDT, all driven
//! by one deterministic event loop.
//!
//! Data-path flow (write): rank issues op → per-stripe chunk RPCs travel
//! the network (NIC contention) → OSS CPU → write-back cache (absorb or
//! throttle) → background flush requests on the OST queue (merging,
//! read-priority dispatch) → rotational disk. Reads are synchronous
//! foreground requests; replies carry the payload back through the
//! network. Metadata ops go to the MDS: CPU, lookup cache, per-directory
//! locks, and journal writes on the MDT device.

use std::collections::{BTreeMap, HashMap, VecDeque};

use qi_faults::{FaultEvent, FaultPlan, RetryPolicy};
use qi_simkit::error::QiError;
use qi_simkit::event::EventQueue;
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::rng::SimRng;
use qi_simkit::stats::OnlineStats;
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricValue, MetricsSnapshot, Registry};

use crate::arena::{Slab, SlabKey};
use crate::cache::LruSet;
use crate::config::{ClusterConfig, StripeConfig, SECTOR_SIZE};
use crate::control::{ClusterController, ControlDirective, DirectiveRecord};
use crate::disk::Disk;
use crate::ids::{AppId, DeviceId, DirKey, FileKey, NodeId, OpToken};
use crate::layout::{chunks, chunks_into, Chunk, FileLayout, ObjKey};
use crate::net::{LinkFate, LinkFault, LinkFaultKind, Network};
use crate::ops::{
    IoOp, OpKind, OpRecord, ProgramStep, RankProgram, RpcRecord, RunTrace, ServerSample,
};
use crate::queue::{BlockDevice, Dispatch, Member, ReqKind};
use crate::shard::{
    DiskTag, Ev, Fx, MetaOp, Msg, NetFx, SendIntent, ShardCell, ShardState, SHARD_DISK_STALLS,
    SHARD_PARKED, SHARD_RESUMED,
};
use crate::store::SampleStore;

/// The parallel (multi-shard) driver: a child module so it can reach
/// the cluster's internals without widening their visibility.
#[path = "parsim.rs"]
mod parsim;

/// Client-side per-op syscall/dispatch overhead.
const CLIENT_OP_OVERHEAD: SimDuration = SimDuration::from_micros(5);
/// Payload bytes of a metadata request/reply.
const META_MSG_BYTES: u64 = 1024;
/// Sectors per metadata device operation (4 KiB records).
const META_SECTORS: u64 = 8;

/// A dropped client request awaiting retry, keyed by a
/// generation-versioned slab key: stale timeout/resend events for a
/// recycled slot miss on lookup instead of acting on the wrong request.
struct RetryState {
    msg: Msg,
    src: NodeId,
    dst: NodeId,
    payload: u64,
    token: OpToken,
    /// Resends performed so far.
    attempt: u32,
}

/// Per-directory metadata lock with FIFO waiters (each remembers when it
/// enqueued, for lock-wait telemetry).
#[derive(Default)]
struct DirLock {
    busy: bool,
    waiters: VecDeque<(OpToken, NodeId, SimTime)>,
    /// Client that last held the lock; a different client pays a
    /// revocation round-trip before its mutation runs.
    last_client: Option<NodeId>,
}

/// Scalar telemetry the cluster accumulates outside the per-device
/// counters; folded into [`RunTrace::metrics`] when a run ends. All
/// values derive from simulated time and deterministic state only.
struct ClusterTelemetry {
    /// Time each mutation waited for its directory lock, in microseconds
    /// (uncontended acquisitions observe 0).
    lock_wait_us: OnlineStats,
    /// Lock acquisitions that paid a revocation round-trip because the
    /// lock last belonged to a different client.
    lock_revocations: u64,
    /// Lookups served from the inode cache (real or modelled hit).
    lookup_cache_hits: u64,
    /// Lookups that had to read the inode from the MDT.
    lookup_cache_misses: u64,
    /// Server-side monitor sampling ticks taken.
    samples_taken: u64,
    /// Client requests lost in transit (injected `RpcDrop` faults).
    rpc_dropped: u64,
    /// Client requests delivered late (injected `RpcDelay` faults).
    rpc_delayed: u64,
    /// Client-side reply waits that expired.
    rpc_timeouts: u64,
    /// Requests resent after a timeout.
    rpc_retries: u64,
    /// Operations abandoned because the retry budget ran out.
    rpc_failed_ops: u64,
    /// Operations abandoned because their per-op deadline passed.
    rpc_deadline_exceeded: u64,
    /// Injected `DiskStall` events that fired.
    disk_stalls: u64,
    /// Lock revocations forced by an `MdsLockStorm` window.
    lock_storm_revocations: u64,
    /// Control directives applied successfully.
    control_applied: u64,
    /// Control directives rejected as invalid (bad app, bad rate, all
    /// OSTs avoided).
    control_rejected: u64,
    /// Rate-limit installs / clears applied.
    control_rate_limits: u64,
    control_rate_clears: u64,
    /// Admission-cap installs / clears applied.
    control_caps: u64,
    control_cap_clears: u64,
    /// Avoid-OSTs installs / clears applied.
    control_retargets: u64,
    control_retarget_clears: u64,
    /// New file layouts that were steered around avoided OSTs.
    control_retarget_layouts: u64,
    /// Data RPCs parked at admission by an inflight cap.
    control_parked: u64,
    /// Parked RPCs later admitted (cap headroom or cap cleared).
    control_resumed: u64,
}

impl ClusterTelemetry {
    fn new() -> Self {
        ClusterTelemetry {
            lock_wait_us: OnlineStats::new(),
            lock_revocations: 0,
            lookup_cache_hits: 0,
            lookup_cache_misses: 0,
            samples_taken: 0,
            rpc_dropped: 0,
            rpc_delayed: 0,
            rpc_timeouts: 0,
            rpc_retries: 0,
            rpc_failed_ops: 0,
            rpc_deadline_exceeded: 0,
            disk_stalls: 0,
            lock_storm_revocations: 0,
            control_applied: 0,
            control_rejected: 0,
            control_rate_limits: 0,
            control_rate_clears: 0,
            control_caps: 0,
            control_cap_clears: 0,
            control_retargets: 0,
            control_retarget_clears: 0,
            control_retarget_layouts: 0,
            control_parked: 0,
            control_resumed: 0,
        }
    }
}

/// Metadata server state.
struct MdsState {
    namespace: HashMap<FileKey, FileLayout>,
    dirs: HashMap<DirKey, DirLock>,
    inode_cache: LruSet<FileKey>,
    cpu_free: SimTime,
    journal_ptr: u64,
    journal_base: u64,
    journal_sectors: u64,
    inode_base: u64,
    inode_sectors: u64,
}

/// Per-rank execution state.
struct RankState {
    seq: u64,
    outstanding: u32,
    cur: Option<(OpToken, OpKind, u64, SimTime)>,
    done: bool,
    /// Set when any chunk of the current op was abandoned by the retry
    /// layer; the op is recorded as failed once every chunk resolves.
    failed: bool,
}

/// One application instance.
struct AppState {
    name: String,
    programs: Vec<Option<Box<dyn RankProgram>>>,
    nodes: Vec<NodeId>,
    ranks: Vec<RankState>,
    ranks_left: u32,
}

/// The whole simulated cluster. Build it, add applications, then [`run`].
///
/// [`run`]: Cluster::run
pub struct Cluster {
    cfg: ClusterConfig,
    /// The realm event queue: clients, network deliveries, MDS/MDT, and
    /// control — everything that is not shard-owned. In the sequential
    /// loop (one shard) it also drives the single shard's events.
    events: EventQueue<Ev>,
    net: Network,
    /// Server shards in ascending OSS order. Always at least one; the
    /// sequential loop is simply the one-shard special case.
    shards: Vec<ShardCell>,
    /// Owning shard of each global OST index.
    ost_shard: Vec<usize>,
    /// The MDT device: realm-owned (metadata is not sharded). The
    /// journal is synchronous, so no write-back cache.
    mdt_dev: BlockDevice<DiskTag>,
    dev_node: Vec<NodeId>,
    mds: MdsState,
    apps: Vec<AppState>,
    /// Per-application server-side token-bucket filters (bytes/s), the
    /// classful TBF NRS policy of Qian et al. — data RPCs of a limited
    /// app are admitted to the OSS only as tokens accrue. Realm-owned:
    /// the buckets are consulted at delivery time, before routing.
    tbf: HashMap<AppId, TokenBucket>,
    trace: RunTrace,
    rng: SimRng,
    tele: ClusterTelemetry,
    /// The validated fault schedule; realised as events when a run starts.
    fault_plan: FaultPlan,
    /// Client retry/timeout/backoff policy for lost requests.
    retry: RetryPolicy,
    /// Dedicated RNG substream for fault decisions (drop rolls, backoff
    /// jitter). Healthy runs never draw from it, so adding a fault plan
    /// cannot perturb the main RNG's value stream.
    fault_rng: SimRng,
    /// Active `MdsLockStorm` windows: (from, until, revoke_factor).
    lock_storms: Vec<(SimTime, SimTime, f64)>,
    /// Dropped requests awaiting timeout/retry, keyed by slab key; the
    /// key's generation makes stale `RpcTimeout`/`RpcResend` events for a
    /// recycled slot harmless (they miss on lookup).
    retry_states: Slab<RetryState>,
    /// Scratch buffers reused across events so the hot path performs no
    /// per-event heap allocation. Each user `std::mem::take`s the buffer,
    /// clears it, fills and drains it, then puts it back.
    scratch_chunks: Vec<Chunk>,
    scratch_members: Vec<Member<DiskTag>>,
    /// The installed mitigation controller, ticked once per control
    /// interval; `None` on uncontrolled runs (the common case — every
    /// control-path check below is a cheap is-empty/is-none test).
    controller: Option<Box<dyn ClusterController>>,
    /// Controller tick interval, sampled at install time.
    control_interval: SimDuration,
    /// Index of the next window the controller will close.
    control_window: u64,
    /// True once a controller was installed or a directive applied;
    /// gates the `pfs.control.*` snapshot block so uncontrolled runs
    /// keep their historical (golden) key set.
    control_used: bool,
    /// Per-app admission cap on concurrently admitted data RPCs per OST
    /// (master copy; every shard holds a replica the realm updates when
    /// a directive lands).
    inflight_caps: BTreeMap<u32, u32>,
    /// Per-OST avoidance flags for new layouts; empty means no steering.
    avoid_osts: Vec<bool>,
    /// Scratch directive buffer for control ticks.
    scratch_directives: Vec<ControlDirective>,
    /// True when running the parallel (multi-shard) driver; chosen at
    /// construction from `sim_shards` and the topology.
    par: bool,
    /// Parallel driver: network sends produced by realm handlers inside
    /// the current epoch, applied at the barrier.
    realm_outbox: Vec<SendIntent>,
    /// Parallel driver: MDT monitor samples taken inside the current
    /// epoch, merged with shard samples at the barrier.
    realm_samples: Vec<ServerSample>,
    /// Events injected before the run (e.g. [`Cluster::inject_fail_slow`])
    /// staged here and routed to the owning queue when the run starts.
    pending_init: Vec<(SimTime, Ev)>,
}

/// Deterministic 64-bit mix of a file key, used for placement and inode
/// slots. Placement must depend only on the file's identity — never on
/// creation order — so that a file lands on the same OSTs in a baseline
/// run and an interfered run.
fn file_hash(file: FileKey) -> u64 {
    let mut z = (file.app.0 as u64)
        .wrapping_shl(32)
        .wrapping_add(file.num)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fluent constructor for [`Cluster`], and the only supported way to
/// build one: validates the configuration and the fault plan up front
/// and returns `Result` instead of panicking mid-run.
///
/// ```
/// use qi_pfs::prelude::*;
///
/// let cluster = Cluster::builder()
///     .config(ClusterConfig::small())
///     .seed(42)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cluster.config().n_osts(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    seed: u64,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
}

impl ClusterBuilder {
    /// Start from the default (paper-testbed) configuration, seed 0, no
    /// faults, and the default retry policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use this cluster configuration.
    pub fn config(mut self, cfg: ClusterConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Seed for all internal randomness (MDS cache hits, fault rolls,
    /// retry jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Install a fault plan; validated against the configuration at
    /// [`ClusterBuilder::build`] time.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the client retry/timeout/backoff policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Validate and construct the cluster.
    pub fn build(self) -> Result<Cluster, QiError> {
        let cfg = &self.cfg;
        if cfg.client_nodes == 0 {
            return Err(QiError::Config(
                "cluster needs at least one client node".into(),
            ));
        }
        if cfg.oss_nodes == 0 || cfg.osts_per_oss == 0 {
            return Err(QiError::Config(
                "cluster needs at least one OSS with at least one OST".into(),
            ));
        }
        if cfg.net.bandwidth <= 0.0 || cfg.net.bandwidth.is_nan() {
            return Err(QiError::Config(format!(
                "network bandwidth must be positive, got {}",
                cfg.net.bandwidth
            )));
        }
        if cfg.sample_interval == SimDuration::ZERO {
            return Err(QiError::Config("sample_interval must be non-zero".into()));
        }
        if cfg.sim_shards == 0 {
            return Err(QiError::Config("sim_shards must be at least 1".into()));
        }
        if cfg.sim_shards > 1 && cfg.net.latency == SimDuration::ZERO {
            return Err(QiError::Config(
                "sim_shards > 1 requires non-zero network latency (the epoch lookahead)".into(),
            ));
        }
        self.fault_plan.validate(
            cfg.n_devices() as usize,
            cfg.n_nodes() as usize,
            cfg.oss_nodes as usize,
        )?;
        Ok(Cluster::construct(
            self.cfg,
            self.seed,
            self.fault_plan,
            self.retry,
        ))
    }
}

impl Cluster {
    /// Start building a cluster. See [`ClusterBuilder`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    fn construct(cfg: ClusterConfig, seed: u64, fault_plan: FaultPlan, retry: RetryPolicy) -> Self {
        let n_osts = cfg.n_osts() as usize;
        let mut dev_node = Vec::with_capacity(n_osts + 1);
        for i in 0..n_osts {
            let oss = i as u32 / cfg.osts_per_oss;
            dev_node.push(NodeId(cfg.client_nodes + oss));
        }
        let mds_node = NodeId(cfg.client_nodes + cfg.oss_nodes);
        dev_node.push(mds_node);

        // Partition the OSS nodes into contiguous shards (ascending, so
        // global OST order equals shard order + local order). One shard
        // (the default) is the classic sequential simulator.
        let n_shards = cfg.sim_shards.min(cfg.oss_nodes).max(1);
        let mut shards = Vec::with_capacity(n_shards as usize);
        let mut ost_shard = Vec::with_capacity(n_osts);
        for s in 0..n_shards {
            let oss_lo = s * cfg.oss_nodes / n_shards;
            let oss_hi = (s + 1) * cfg.oss_nodes / n_shards;
            for _ in 0..(oss_hi - oss_lo) * cfg.osts_per_oss {
                ost_shard.push(s as usize);
            }
            shards.push(ShardCell::new(
                ShardState::new(&cfg, seed, s, oss_lo, oss_hi),
                EventQueue::with_capacity_and_backend(cfg.n_nodes() as usize * 64, cfg.event_queue),
            ));
        }
        let mdt_dev = BlockDevice::new(cfg.queue.clone(), Disk::new(cfg.mdt_disk.clone()));

        let journal_base = 2048;
        let journal_sectors = cfg.mds.journal_region_bytes / SECTOR_SIZE;
        let mds = MdsState {
            namespace: HashMap::new(),
            dirs: HashMap::new(),
            inode_cache: LruSet::new(cfg.mds.inode_cache_entries),
            cpu_free: SimTime::ZERO,
            journal_ptr: journal_base,
            journal_base,
            journal_sectors,
            inode_base: journal_base + journal_sectors,
            inode_sectors: (cfg.mdt_disk.capacity_sectors - journal_base - journal_sectors) / 2,
        };
        let rng = SimRng::new(seed).substream(0xC10D);
        let fault_rng = SimRng::new(seed).substream(0xFA17);
        Cluster {
            net: Network::new(cfg.net.clone(), cfg.n_nodes()),
            // In-flight events scale with concurrently outstanding
            // chunk RPCs: a few per rank per striped OST plus device
            // completions. Pre-sizing kills backend regrowth in long
            // runs; 64 slots per node is comfortably above the
            // steady-state high-water mark at every config we run.
            events: EventQueue::with_capacity_and_backend(
                cfg.n_nodes() as usize * 64,
                cfg.event_queue,
            ),
            par: n_shards > 1,
            shards,
            ost_shard,
            mdt_dev,
            dev_node,
            mds,
            apps: Vec::new(),
            tbf: HashMap::new(),
            trace: RunTrace {
                samples: SampleStore::with_config(cfg.trace_store),
                ..RunTrace::default()
            },
            rng,
            tele: ClusterTelemetry::new(),
            fault_plan,
            retry,
            fault_rng,
            lock_storms: Vec::new(),
            retry_states: Slab::new(),
            scratch_chunks: Vec::new(),
            scratch_members: Vec::new(),
            controller: None,
            control_interval: SimDuration::ZERO,
            control_window: 0,
            control_used: false,
            inflight_caps: BTreeMap::new(),
            avoid_osts: Vec::new(),
            scratch_directives: Vec::new(),
            realm_outbox: Vec::new(),
            realm_samples: Vec::new(),
            pending_init: Vec::new(),
            cfg,
        }
    }

    /// Owning shard of a global OST id.
    #[inline]
    fn shard_of_dev(&self, dev: u32) -> usize {
        self.ost_shard[dev as usize]
    }

    /// Target device of a data RPC.
    fn msg_dev(msg: &Msg) -> DeviceId {
        match msg {
            Msg::ReadReq { dev, .. } | Msg::WriteReq { dev, .. } => *dev,
            _ => unreachable!("not a data RPC"),
        }
    }

    /// Run one shard-owned event against the realm queue and live
    /// network — the sequential path (exact one-shard equivalent of the
    /// pre-shard simulator). The parallel driver never routes through
    /// here; shard events live on shard queues there.
    fn shard_event(&mut self, s: usize, now: SimTime, ev: Ev) {
        debug_assert!(!self.par, "shard event on the realm queue in parallel mode");
        let sh = &mut self.shards[s];
        let mut fx = Fx {
            q: &mut self.events,
            net: NetFx::Direct(&mut self.net),
        };
        sh.st.handle(now, ev, &self.cfg, &mut fx);
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The client node IDs, `0..client_nodes`.
    pub fn client_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.client_nodes).map(NodeId).collect()
    }

    /// The device ID of OST `i`.
    pub fn ost(&self, i: u32) -> DeviceId {
        assert!(i < self.cfg.n_osts());
        DeviceId(i)
    }

    /// The device ID of the MDT (always the last device).
    pub fn mdt(&self) -> DeviceId {
        DeviceId(self.cfg.n_osts())
    }

    /// Register an application: one program per rank, placed round-robin
    /// over `nodes` (which must be client nodes). Returns its [`AppId`].
    pub fn add_app(
        &mut self,
        name: &str,
        programs: Vec<Box<dyn RankProgram>>,
        nodes: &[NodeId],
    ) -> AppId {
        assert!(!programs.is_empty(), "app with zero ranks");
        assert!(!nodes.is_empty(), "app with no nodes");
        for n in nodes {
            assert!(n.0 < self.cfg.client_nodes, "app placed on a server node");
        }
        let id = AppId(self.apps.len() as u32);
        let nranks = programs.len();
        let rank_nodes: Vec<NodeId> = (0..nranks).map(|r| nodes[r % nodes.len()]).collect();
        self.apps.push(AppState {
            name: name.to_string(),
            programs: programs.into_iter().map(Some).collect(),
            nodes: rank_nodes,
            ranks: (0..nranks)
                .map(|_| RankState {
                    seq: 0,
                    outstanding: 0,
                    cur: None,
                    done: false,
                    failed: false,
                })
                .collect(),
            ranks_left: nranks as u32,
        });
        self.trace.app_completion.push(None);
        id
    }

    /// Name of an application.
    pub fn app_name(&self, app: AppId) -> &str {
        &self.apps[app.0 as usize].name
    }

    /// The [`AppId`] the *next* [`Cluster::add_app`] call will return.
    /// Workload builders use this to key their file namespaces.
    pub fn next_app_id(&self) -> AppId {
        AppId(self.apps.len() as u32)
    }

    /// Install a server-side token-bucket filter for `app`'s data RPCs:
    /// at most `bytes_per_sec` of payload is admitted to the object
    /// servers (burst of one second's worth), queuing the excess — the
    /// classful TBF policy of Qian et al. (the paper's reference [13]).
    pub fn set_app_rate_limit(&mut self, app: AppId, bytes_per_sec: f64) {
        assert!(bytes_per_sec > 0.0);
        self.tbf
            .insert(app, TokenBucket::new(bytes_per_sec, bytes_per_sec));
    }

    /// Install a mitigation controller: from the run's start it is
    /// ticked once per [`ClusterController::interval`], 1 ns after each
    /// window boundary (strictly after every event of the closed
    /// window), and its directives are applied through
    /// [`Cluster::apply_directive`]. At most one controller per run.
    pub fn install_controller(&mut self, controller: Box<dyn ClusterController>) {
        let interval = controller.interval();
        assert!(interval > SimDuration::ZERO, "zero control interval");
        assert!(self.controller.is_none(), "controller already installed");
        self.control_interval = interval;
        self.controller = Some(controller);
        self.control_used = true;
    }

    /// Apply one typed control directive, the single entry point every
    /// actuator hangs off. Returns `Err(QiError::Control)` and changes
    /// nothing when the directive is invalid (unknown app, non-finite
    /// or non-positive rate, zero cap, every OST avoided); successful
    /// applications are recorded in [`RunTrace::directives`].
    pub fn apply_directive(
        &mut self,
        at: SimTime,
        window: u64,
        directive: ControlDirective,
    ) -> Result<(), QiError> {
        self.control_used = true;
        if let Some(app) = directive.app() {
            if app.0 as usize >= self.apps.len() {
                return Err(QiError::Control(format!(
                    "directive targets unknown app {}",
                    app.0
                )));
            }
        }
        match &directive {
            ControlDirective::RateLimit { app, bytes_per_sec } => {
                if !bytes_per_sec.is_finite() || *bytes_per_sec <= 0.0 {
                    return Err(QiError::Control(format!(
                        "rate limit must be finite and positive, got {bytes_per_sec}"
                    )));
                }
                self.tbf
                    .insert(*app, TokenBucket::new(*bytes_per_sec, *bytes_per_sec));
                self.tele.control_rate_limits += 1;
            }
            ControlDirective::ClearRateLimit { app } => {
                self.tbf.remove(app);
                self.tele.control_rate_clears += 1;
            }
            ControlDirective::CapInflight { app, max_inflight } => {
                if *max_inflight == 0 {
                    return Err(QiError::Control("inflight cap must be >= 1".into()));
                }
                self.inflight_caps.insert(app.0, *max_inflight);
                self.tele.control_caps += 1;
                self.cap_changed(at, app.0);
            }
            ControlDirective::ClearCapInflight { app } => {
                self.inflight_caps.remove(&app.0);
                self.tele.control_cap_clears += 1;
                self.cap_changed(at, app.0);
            }
            ControlDirective::AvoidOsts { osts } => {
                let n_osts = self.cfg.n_osts();
                let mut avoided = vec![false; n_osts as usize];
                for d in osts {
                    if d.0 >= n_osts {
                        return Err(QiError::Control(format!(
                            "cannot avoid non-OST device {}",
                            d.0
                        )));
                    }
                    avoided[d.0 as usize] = true;
                }
                if avoided.iter().all(|&b| b) {
                    return Err(QiError::Control(
                        "cannot avoid every OST: layouts need a target".into(),
                    ));
                }
                self.avoid_osts = avoided;
                self.tele.control_retargets += 1;
            }
            ControlDirective::ClearAvoidOsts => {
                self.avoid_osts.clear();
                self.tele.control_retarget_clears += 1;
            }
        }
        self.tele.control_applied += 1;
        self.trace.directives.push(DirectiveRecord {
            at,
            window,
            directive,
        });
        Ok(())
    }

    /// One controller tick: close window `control_window`, apply the
    /// controller's directives, reschedule the next tick.
    fn control_tick(&mut self, now: SimTime) {
        let Some(mut ctl) = self.controller.take() else {
            return;
        };
        let window = self.control_window;
        self.control_window += 1;
        let mut out = std::mem::take(&mut self.scratch_directives);
        out.clear();
        ctl.on_window(now, window, &self.trace, &mut out);
        for d in out.drain(..) {
            if self.apply_directive(now, window, d).is_err() {
                self.tele.control_rejected += 1;
            }
        }
        self.scratch_directives = out;
        self.controller = Some(ctl);
        self.events
            .schedule(now + self.control_interval, Ev::Control);
    }

    /// A cap directive for `app` landed: push the master cap table to
    /// every shard's replica, then re-admit parked RPCs under the new
    /// cap. The realm runs strictly before the shards inside an epoch,
    /// so the sequential loop rechecks inline while the parallel driver
    /// schedules the recheck onto each shard's queue at the directive
    /// instant (shard clocks are still at the previous epoch boundary).
    fn cap_changed(&mut self, at: SimTime, app: u32) {
        for s in 0..self.shards.len() {
            self.shards[s].st.inflight_caps = self.inflight_caps.clone();
            if self.par {
                self.shards[s].q.schedule(at, Ev::AdmissionRecheck { app });
            } else {
                let sh = &mut self.shards[s];
                let mut fx = Fx {
                    q: &mut self.events,
                    net: NetFx::Direct(&mut self.net),
                };
                sh.st.admission_recheck(at, app, &self.cfg, &mut fx);
            }
        }
    }

    /// Schedule a fail-slow injection: from `at` onward, `dev` services
    /// every request `factor`× slower (1.0 restores health). Models the
    /// gray-failure drives of Lu et al.'s Perseus.
    pub fn inject_fail_slow(&mut self, dev: DeviceId, at: SimTime, factor: f64) {
        assert!(dev.0 < self.cfg.n_devices(), "no such device");
        assert!(factor >= 1.0);
        // Staged, not scheduled: the owning queue (realm or shard) is
        // only decided when the run starts. Relative order among
        // same-instant injections is preserved by the stage order.
        self.pending_init
            .push((at, Ev::FailSlow { dev: dev.0, factor }));
    }

    /// Pre-populate a file (namespace entry + contiguous extents) without
    /// simulating any I/O — the equivalent of a dataset that existed
    /// before the measured run. OSTs are assigned round-robin.
    pub fn precreate_file(&mut self, file: FileKey, len: u64, stripe: Option<StripeConfig>) {
        let layout = self.make_layout(file, stripe);
        self.install_file(file, len, layout);
    }

    /// Like [`Cluster::precreate_file`] but with an explicit OST list
    /// (one per stripe), for workloads that need controlled placement.
    pub fn precreate_file_on(
        &mut self,
        file: FileKey,
        len: u64,
        stripe_size: u64,
        osts: Vec<DeviceId>,
    ) {
        assert!(!osts.is_empty());
        for d in &osts {
            assert!(d.0 < self.cfg.n_osts(), "placement on a non-OST device");
        }
        let layout = FileLayout { stripe_size, osts };
        self.install_file(file, len, layout);
    }

    fn install_file(&mut self, file: FileKey, len: u64, layout: FileLayout) {
        // Pre-existing files were created by an earlier phase of the same
        // workload sequence (e.g. mdtest-hard-write before -read), so
        // their inodes are warm in the MDS cache.
        self.mds.inode_cache.insert(file);
        if len > 0 {
            let small = len <= self.cfg.cache.small_object_max;
            for c in chunks(&layout, 0, len) {
                let key = ObjKey {
                    file,
                    stripe: c.stripe,
                };
                let st = &mut self.shards[self.ost_shard[c.dev.index()]].st;
                let li = c.dev.index() - st.ost_lo as usize;
                st.extents[li].map(key, c.obj_offset, c.len);
                if small {
                    // Small pre-existing files sit in the server page
                    // cache (e.g. mdtest-hard bodies written moments
                    // before the read phase).
                    st.read_cache[li].touch(key, c.obj_offset + c.len);
                }
            }
        }
        self.mds.namespace.insert(file, layout);
    }

    fn make_layout(&mut self, file: FileKey, stripe: Option<StripeConfig>) -> FileLayout {
        let s = stripe.unwrap_or(self.cfg.stripe);
        let n_osts = self.cfg.n_osts();
        // Stripe re-targeting: with an avoidance set installed, place
        // over the allowed OSTs only (same hash-round-robin rule on the
        // reduced list). The empty set takes the historical formula
        // verbatim, keeping uncontrolled runs byte-identical.
        if self.avoid_osts.iter().any(|&b| b) {
            let allowed: Vec<u32> = (0..n_osts)
                .filter(|&i| !self.avoid_osts[i as usize])
                .collect();
            let count = s.stripe_count.clamp(1, allowed.len() as u32) as usize;
            let start = (file_hash(file) % allowed.len() as u64) as usize;
            self.tele.control_retarget_layouts += 1;
            return FileLayout {
                stripe_size: s.stripe_size,
                osts: (0..count)
                    .map(|i| DeviceId(allowed[(start + i) % allowed.len()]))
                    .collect(),
            };
        }
        let count = s.stripe_count.clamp(1, n_osts);
        let start = (file_hash(file) % n_osts as u64) as u32;
        FileLayout {
            stripe_size: s.stripe_size,
            osts: (0..count).map(|i| DeviceId((start + i) % n_osts)).collect(),
        }
    }

    fn layout_of(&mut self, file: FileKey) -> FileLayout {
        if let Some(l) = self.mds.namespace.get(&file) {
            return l.clone();
        }
        // Data op on a file never created in this run: auto-register with
        // the default stripe (the file "already existed").
        let l = self.make_layout(file, None);
        self.mds.namespace.insert(file, l.clone());
        l
    }

    fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64, msg: Msg) {
        if self.par {
            // Defer to the epoch barrier: NIC clocks must advance in
            // global timestamp order, which only the barrier can see.
            self.realm_outbox.push(SendIntent {
                at: now,
                src,
                dst,
                payload,
                extra: SimDuration::ZERO,
                msg: Some(msg),
            });
            return;
        }
        let deliver = self.net.send(now, src, dst, payload);
        self.events.schedule(deliver, Ev::Deliver(msg));
    }

    /// Send a client request, subject to the active link-fault rules.
    ///
    /// The drop fate of a round trip is decided here, at request-send
    /// time: a dropped request occupies both NICs (it is lost in
    /// transit), never reaches the server, and the client recovers via
    /// its [`RetryPolicy`]. Server→client replies always deliver — a
    /// deliberate simplification that keeps at-most-once server
    /// execution without duplicate-request bookkeeping.
    fn send_request(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload: u64,
        msg: Msg,
        token: OpToken,
    ) {
        if !self.net.has_faults() {
            self.send(now, src, dst, payload, msg);
            return;
        }
        match self.net.fate(now, src, dst, &mut self.fault_rng) {
            LinkFate::Deliver(extra) => {
                if extra > SimDuration::ZERO {
                    self.tele.rpc_delayed += 1;
                }
                if self.par {
                    self.realm_outbox.push(SendIntent {
                        at: now,
                        src,
                        dst,
                        payload,
                        extra,
                        msg: Some(msg),
                    });
                    return;
                }
                let deliver = self.net.send(now, src, dst, payload);
                self.events.schedule(deliver + extra, Ev::Deliver(msg));
            }
            LinkFate::Dropped => {
                self.tele.rpc_dropped += 1;
                // The transfer still occupies both NICs (msg: None —
                // nothing is delivered).
                if self.par {
                    self.realm_outbox.push(SendIntent {
                        at: now,
                        src,
                        dst,
                        payload,
                        extra: SimDuration::ZERO,
                        msg: None,
                    });
                } else {
                    let _ = self.net.send(now, src, dst, payload);
                }
                let seq = self.retry_states.insert(RetryState {
                    msg,
                    src,
                    dst,
                    payload,
                    token,
                    attempt: 0,
                });
                self.events
                    .schedule(now + self.retry.rpc_timeout, Ev::RpcTimeout { seq });
            }
        }
    }

    /// Realise the fault plan: schedule its one-shot events and install
    /// its window rules. Called once when a run starts.
    fn schedule_fault_plan(&mut self) {
        let plan = std::mem::take(&mut self.fault_plan);
        for ev in plan.events() {
            match *ev {
                FaultEvent::SlowDisk {
                    dev,
                    factor,
                    from,
                    until,
                } => {
                    self.events.schedule(from, Ev::FailSlow { dev, factor });
                    self.events
                        .schedule(until, Ev::FailSlow { dev, factor: 1.0 });
                }
                FaultEvent::DiskStall { dev, at, duration } => {
                    self.events.schedule(
                        at,
                        Ev::DiskStall {
                            dev,
                            until: at + duration,
                        },
                    );
                }
                FaultEvent::RpcDrop {
                    src,
                    dst,
                    prob,
                    from,
                    until,
                } => self.net.add_fault(LinkFault {
                    src: src.map(NodeId),
                    dst: dst.map(NodeId),
                    from,
                    until,
                    kind: LinkFaultKind::Drop { prob },
                }),
                FaultEvent::RpcDelay {
                    src,
                    dst,
                    delay,
                    from,
                    until,
                } => self.net.add_fault(LinkFault {
                    src: src.map(NodeId),
                    dst: dst.map(NodeId),
                    from,
                    until,
                    kind: LinkFaultKind::Delay { delay },
                }),
                FaultEvent::OssThreadCrash {
                    oss,
                    at,
                    restart,
                    remaining,
                } => {
                    self.events.schedule(
                        at,
                        Ev::OssFactor {
                            oss,
                            factor: 1.0 / remaining,
                        },
                    );
                    if let Some(r) = restart {
                        self.events.schedule(r, Ev::OssFactor { oss, factor: 1.0 });
                    }
                }
                FaultEvent::MdsLockStorm {
                    from,
                    until,
                    revoke_factor,
                } => self.lock_storms.push((from, until, revoke_factor)),
            }
        }
    }

    /// Run until `deadline` (or until no events remain). Consumes the
    /// cluster and returns its trace.
    pub fn run(self, deadline: SimTime) -> RunTrace {
        self.run_inner(deadline, None)
    }

    /// Run until application `app` completes (all ranks finished), or
    /// until `deadline` as a safety stop. The trace's
    /// [`RunTrace::completion_of`] tells which happened.
    pub fn run_until_app(self, app: AppId, deadline: SimTime) -> RunTrace {
        self.run_inner(deadline, Some(app))
    }

    fn run_inner(mut self, deadline: SimTime, stop_app: Option<AppId>) -> RunTrace {
        if self.par {
            return self.run_parallel(deadline, stop_app);
        }
        // Pre-run injections all land on the realm queue here; the
        // parallel driver routes them to the owning shard instead.
        for (at, ev) in std::mem::take(&mut self.pending_init) {
            self.events.schedule(at, ev);
        }
        self.schedule_fault_plan();
        // Kick every rank and the sampler.
        for a in 0..self.apps.len() {
            for r in 0..self.apps[a].ranks.len() {
                self.events.schedule(
                    SimTime::ZERO,
                    Ev::RankNext {
                        app: a as u32,
                        rank: r as u32,
                    },
                );
            }
        }
        self.events
            .schedule(SimTime::ZERO + self.cfg.sample_interval, Ev::Sample);
        if self.controller.is_some() {
            // First tick 1 ns after the first window boundary: every
            // event of a window (boundary samples included) is handled
            // before the tick that closes it, so the controller sees
            // exactly the batch-pipeline window content.
            self.events.schedule(
                SimTime::ZERO + self.control_interval + SimDuration::from_nanos(1),
                Ev::Control,
            );
        }

        while let Some((now, ev)) = self.events.pop_until(deadline) {
            self.handle(now, ev);
            if let Some(app) = stop_app {
                if self.trace.app_completion[app.0 as usize].is_some() {
                    break;
                }
            }
        }
        self.trace.end = self.events.now();
        self.trace.events_processed = self.events.processed();
        self.trace.metrics = self.metrics_snapshot(self.events.now());
        self.trace
    }

    /// Assemble the cluster-wide telemetry snapshot at `now`: per-device
    /// block-layer counters and distributions (`pfs.ost{i}.*`,
    /// `pfs.mdt.*`), per-server NIC traffic and utilisation
    /// (`pfs.nic.*`), and MDS metadata statistics (`pfs.mds.*`). Every
    /// value derives from simulated time and deterministic event-loop
    /// state, so the snapshot is byte-stable across identical runs.
    fn metrics_snapshot(&self, now: SimTime) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let put_dev = |snap: &mut MetricsSnapshot, p: &str, dev: &BlockDevice<DiskTag>| {
            let c = dev.counters(now);
            for (field, v) in [
                ("reads_completed", c.reads_completed),
                ("writes_completed", c.writes_completed),
                ("sectors_read", c.sectors_read),
                ("sectors_written", c.sectors_written),
                ("read_merges", c.read_merges),
                ("write_merges", c.write_merges),
                ("enqueued", c.enqueued),
                ("wait_ns", c.wait_ns),
                ("busy_ns", c.busy_ns),
            ] {
                snap.put(&format!("{p}.{field}"), MetricValue::Counter(v));
            }
            snap.put(
                &format!("{p}.queue_depth"),
                MetricValue::Stats(dev.depth_stats().clone()),
            );
            snap.put(
                &format!("{p}.seek_sectors"),
                MetricValue::Stats(dev.seek_stats().clone()),
            );
            snap.put(
                &format!("{p}.service_us"),
                MetricValue::Histogram(dev.service_time_hist().clone()),
            );
        };
        // Shards hold contiguous ascending OST ranges, so walking them
        // in order reproduces the historical global device order.
        let mut i = 0usize;
        for sh in &self.shards {
            for dev in &sh.st.devices {
                put_dev(&mut snap, &format!("pfs.ost{i}"), dev);
                i += 1;
            }
        }
        put_dev(&mut snap, "pfs.mdt", &self.mdt_dev);
        // Shard-side counters (fault/control activity on the server
        // shards) fold into the same snapshot keys the sequential
        // telemetry always used, via the canonical registry merge.
        let mut sreg = Registry::new();
        for sh in &self.shards {
            sreg.merge(&sh.st.reg)
                .expect("shards use a uniform metric schema");
        }
        let ss = sreg.snapshot();
        let shard_counter = |name: &str| ss.counter(name).unwrap_or(0);
        let elapsed = now.as_secs_f64();
        let nic = |snap: &mut MetricsSnapshot, label: String, node: NodeId| {
            let busy = self.net.nic_busy(node).as_secs_f64();
            snap.put(
                &format!("{label}.bytes"),
                MetricValue::Counter(self.net.nic_bytes(node)),
            );
            snap.put(&format!("{label}.busy_us"), MetricValue::Gauge(busy * 1e6));
            let util = if elapsed > 0.0 { busy / elapsed } else { 0.0 };
            snap.put(&format!("{label}.util"), MetricValue::Gauge(util));
        };
        for j in 0..self.cfg.oss_nodes {
            let node = NodeId(self.cfg.client_nodes + j);
            nic(&mut snap, format!("pfs.nic.oss{j}"), node);
        }
        let mds_node = NodeId(self.cfg.client_nodes + self.cfg.oss_nodes);
        nic(&mut snap, "pfs.nic.mds".to_string(), mds_node);
        snap.put(
            "pfs.mds.lock_wait_us",
            MetricValue::Stats(self.tele.lock_wait_us.clone()),
        );
        snap.put(
            "pfs.mds.lock_revocations",
            MetricValue::Counter(self.tele.lock_revocations),
        );
        snap.put(
            "pfs.mds.lookup_cache_hits",
            MetricValue::Counter(self.tele.lookup_cache_hits),
        );
        snap.put(
            "pfs.mds.lookup_cache_misses",
            MetricValue::Counter(self.tele.lookup_cache_misses),
        );
        snap.put(
            "pfs.sampler.samples",
            MetricValue::Counter(self.tele.samples_taken),
        );
        // Fault/retry counters are emitted unconditionally (zero on
        // healthy runs) so snapshots keep a stable key set whether or
        // not a plan was installed.
        for (field, v) in [
            ("deadline_exceeded", self.tele.rpc_deadline_exceeded),
            ("delayed", self.tele.rpc_delayed),
            ("dropped", self.tele.rpc_dropped),
            ("failed_ops", self.tele.rpc_failed_ops),
            ("retries", self.tele.rpc_retries),
            ("timeouts", self.tele.rpc_timeouts),
        ] {
            snap.put(&format!("pfs.rpc.{field}"), MetricValue::Counter(v));
        }
        snap.put(
            "pfs.faults.disk_stalls",
            MetricValue::Counter(self.tele.disk_stalls + shard_counter(SHARD_DISK_STALLS)),
        );
        snap.put(
            "pfs.faults.lock_storm_revocations",
            MetricValue::Counter(self.tele.lock_storm_revocations),
        );
        // The control block appears only on controlled runs (a
        // controller installed or a directive applied), so snapshots of
        // uncontrolled runs keep their historical golden key set.
        if self.control_used {
            for (field, v) in [
                ("applied", self.tele.control_applied),
                ("cap_clears", self.tele.control_cap_clears),
                ("caps", self.tele.control_caps),
                (
                    "parked",
                    self.tele.control_parked + shard_counter(SHARD_PARKED),
                ),
                ("rate_clears", self.tele.control_rate_clears),
                ("rate_limits", self.tele.control_rate_limits),
                ("rejected", self.tele.control_rejected),
                (
                    "resumed",
                    self.tele.control_resumed + shard_counter(SHARD_RESUMED),
                ),
                ("retarget_clears", self.tele.control_retarget_clears),
                ("retarget_layouts", self.tele.control_retarget_layouts),
                ("retargets", self.tele.control_retargets),
            ] {
                snap.put(&format!("pfs.control.{field}"), MetricValue::Counter(v));
            }
            if let Some(ctl) = &self.controller {
                ctl.metrics_into(&mut snap);
            }
        }
        snap
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::RankNext { app, rank } => self.rank_next(now, app, rank),
            Ev::Deliver(msg) => self.deliver(now, msg),
            // Shard-owned events reach the realm queue only in the
            // sequential (one-queue) loop; the parallel driver schedules
            // them on shard queues directly.
            Ev::OssProcess(msg) => {
                let s = self.shard_of_dev(Self::msg_dev(&msg).0);
                self.shard_event(s, now, Ev::OssProcess(msg));
            }
            Ev::TbfAdmitted(msg) => {
                let s = self.shard_of_dev(Self::msg_dev(&msg).0);
                self.shard_event(s, now, Ev::TbfAdmitted(msg));
            }
            Ev::MdsProcess(msg) => self.mds_process(now, msg),
            Ev::DiskDone { dev } => {
                if (dev as usize) < self.ost_shard.len() {
                    let s = self.shard_of_dev(dev);
                    self.shard_event(s, now, Ev::DiskDone { dev });
                } else {
                    self.mdt_disk_done(now);
                }
            }
            Ev::DiskIdle { dev } => {
                if (dev as usize) < self.ost_shard.len() {
                    let s = self.shard_of_dev(dev);
                    self.shard_event(s, now, Ev::DiskIdle { dev });
                } else {
                    let d = self.mdt_dev.idle_check(now);
                    self.mdt_dispatch(now, d);
                }
            }
            Ev::SendLater {
                src,
                dst,
                payload,
                token,
            } => self.send(now, src, dst, payload, Msg::OpDone { token }),
            Ev::MdsLockRun { token, client, dir } => {
                self.start_journal_write(now, token, client, dir)
            }
            Ev::Sample => {
                if self.par {
                    self.take_mdt_sample(now);
                } else {
                    self.take_sample(now);
                }
                self.events
                    .schedule(now + self.cfg.sample_interval, Ev::Sample);
            }
            Ev::Control => self.control_tick(now),
            Ev::FailSlow { dev, factor } => {
                if (dev as usize) < self.ost_shard.len() {
                    let s = self.shard_of_dev(dev);
                    self.shard_event(s, now, Ev::FailSlow { dev, factor });
                } else {
                    self.mdt_dev.disk_mut().set_fail_slow(factor);
                }
            }
            Ev::DiskStall { dev, until } => {
                if (dev as usize) < self.ost_shard.len() {
                    let s = self.shard_of_dev(dev);
                    self.shard_event(s, now, Ev::DiskStall { dev, until });
                } else {
                    self.tele.disk_stalls += 1;
                    let d = self.mdt_dev.stall(now, until);
                    self.mdt_dispatch(now, d);
                }
            }
            Ev::OssFactor { oss, factor } => {
                let s = self.shard_of_dev(oss * self.cfg.osts_per_oss);
                self.shard_event(s, now, Ev::OssFactor { oss, factor });
            }
            Ev::AdmissionRecheck { .. } => {
                unreachable!("admission rechecks live on shard queues")
            }
            Ev::RpcTimeout { seq } => self.rpc_timeout(now, seq),
            Ev::RpcResend { seq } => self.rpc_resend(now, seq),
        }
    }

    // ------------------------------------------------------ RPC retries

    /// True while `token` is still the rank's current operation.
    fn op_is_current(&self, token: OpToken) -> bool {
        let st = &self.apps[token.app.0 as usize].ranks[token.rank as usize];
        matches!(st.cur, Some((t, _, _, _)) if t == token)
    }

    /// A reply wait expired: retry with backoff, or give up when the
    /// retry budget or the per-op deadline is exhausted.
    fn rpc_timeout(&mut self, now: SimTime, seq: SlabKey) {
        let Some(state) = self.retry_states.get(seq) else {
            return;
        };
        let token = state.token;
        if !self.op_is_current(token) {
            self.retry_states.remove(seq);
            return;
        }
        self.tele.rpc_timeouts += 1;
        let issued = self.apps[token.app.0 as usize].ranks[token.rank as usize]
            .cur
            .expect("current op")
            .3;
        let deadline_hit = self.retry.op_deadline.is_some_and(|dl| now >= issued + dl);
        let exhausted = state.attempt >= self.retry.max_retries;
        if deadline_hit || exhausted {
            if deadline_hit {
                self.tele.rpc_deadline_exceeded += 1;
            }
            self.retry_states.remove(seq);
            self.fail_op_part(now, token);
            return;
        }
        let attempt = {
            let state = self.retry_states.get_mut(seq).expect("retry state present");
            state.attempt += 1;
            state.attempt
        };
        self.tele.rpc_retries += 1;
        let backoff = self.retry.backoff(attempt, &mut self.fault_rng);
        self.events.schedule(now + backoff, Ev::RpcResend { seq });
    }

    /// Backoff elapsed: resend the stored request, consulting the link
    /// fate afresh (the resend may be dropped again).
    fn rpc_resend(&mut self, now: SimTime, seq: SlabKey) {
        let Some(state) = self.retry_states.get(seq) else {
            return;
        };
        if !self.op_is_current(state.token) {
            self.retry_states.remove(seq);
            return;
        }
        let (src, dst, payload) = (state.src, state.dst, state.payload);
        match self.net.fate(now, src, dst, &mut self.fault_rng) {
            LinkFate::Dropped => {
                self.tele.rpc_dropped += 1;
                if self.par {
                    self.realm_outbox.push(SendIntent {
                        at: now,
                        src,
                        dst,
                        payload,
                        extra: SimDuration::ZERO,
                        msg: None,
                    });
                } else {
                    let _ = self.net.send(now, src, dst, payload);
                }
                self.events
                    .schedule(now + self.retry.rpc_timeout, Ev::RpcTimeout { seq });
            }
            LinkFate::Deliver(extra) => {
                if extra > SimDuration::ZERO {
                    self.tele.rpc_delayed += 1;
                }
                let state = self.retry_states.remove(seq).expect("retry state present");
                if self.par {
                    self.realm_outbox.push(SendIntent {
                        at: now,
                        src,
                        dst,
                        payload,
                        extra,
                        msg: Some(state.msg),
                    });
                    return;
                }
                let deliver = self.net.send(now, src, dst, payload);
                self.events
                    .schedule(deliver + extra, Ev::Deliver(state.msg));
            }
        }
    }

    /// Abandon one chunk of an operation. The op is recorded as failed
    /// (and the rank moves on) once every outstanding chunk resolves.
    fn fail_op_part(&mut self, now: SimTime, token: OpToken) {
        if !self.op_is_current(token) {
            return;
        }
        self.apps[token.app.0 as usize].ranks[token.rank as usize].failed = true;
        self.op_part_done(now, token);
    }

    // ---------------------------------------------------------- clients

    fn rank_next(&mut self, now: SimTime, app: u32, rank: u32) {
        let step = {
            let a = &mut self.apps[app as usize];
            match a.programs[rank as usize].as_mut() {
                Some(p) => p.next(now),
                None => return,
            }
        };
        match step {
            ProgramStep::Compute(d) => {
                self.events.schedule(now + d, Ev::RankNext { app, rank });
            }
            ProgramStep::Finished => {
                let a = &mut self.apps[app as usize];
                a.programs[rank as usize] = None;
                if !a.ranks[rank as usize].done {
                    a.ranks[rank as usize].done = true;
                    a.ranks_left -= 1;
                    if a.ranks_left == 0 {
                        self.trace.app_completion[app as usize] = Some(now);
                    }
                }
            }
            ProgramStep::Op(op) => self.issue_op(now, app, rank, op),
        }
    }

    fn issue_op(&mut self, now: SimTime, app: u32, rank: u32, op: IoOp) {
        let issued = now + CLIENT_OP_OVERHEAD;
        let token = {
            let st = &mut self.apps[app as usize].ranks[rank as usize];
            let token = OpToken {
                app: AppId(app),
                rank,
                seq: st.seq,
            };
            st.seq += 1;
            st.cur = Some((token, op.kind(), op.bytes(), issued));
            token
        };
        let client = self.apps[app as usize].nodes[rank as usize];
        match op {
            IoOp::Read { file, offset, len } | IoOp::Write { file, offset, len } => {
                let is_read = matches!(
                    self.apps[app as usize].ranks[rank as usize].cur,
                    Some((_, OpKind::Read, _, _))
                );
                let layout = self.layout_of(file);
                // Owned scratch: the loop body re-borrows `self` mutably.
                let mut cs = std::mem::take(&mut self.scratch_chunks);
                cs.clear();
                chunks_into(&layout, offset, len, &mut cs);
                self.apps[app as usize].ranks[rank as usize].outstanding = cs.len() as u32;
                for c in cs.drain(..) {
                    let obj = ObjKey {
                        file,
                        stripe: c.stripe,
                    };
                    self.trace.rpcs.push(RpcRecord {
                        app: AppId(app),
                        dev: c.dev,
                        kind: if is_read { OpKind::Read } else { OpKind::Write },
                        bytes: c.len,
                        issued,
                    });
                    let dst = self.dev_node[c.dev.index()];
                    let (payload, msg) = if is_read {
                        (
                            0,
                            Msg::ReadReq {
                                dev: c.dev,
                                obj,
                                obj_off: c.obj_offset,
                                len: c.len,
                                token,
                                client,
                            },
                        )
                    } else {
                        (
                            c.len,
                            Msg::WriteReq {
                                dev: c.dev,
                                obj,
                                obj_off: c.obj_offset,
                                len: c.len,
                                token,
                                client,
                            },
                        )
                    };
                    self.send_request(issued, client, dst, payload, msg, token);
                }
                self.scratch_chunks = cs;
            }
            meta => {
                self.apps[app as usize].ranks[rank as usize].outstanding = 1;
                let mop = match meta {
                    IoOp::Open { file } | IoOp::Stat { file } => MetaOp::Lookup { file },
                    IoOp::Close { .. } => MetaOp::Close,
                    IoOp::Create { file, dir, stripe } => MetaOp::Mutate {
                        create: Some((file, stripe)),
                        dir,
                    },
                    IoOp::Unlink { dir, .. } => MetaOp::Mutate { create: None, dir },
                    IoOp::Mkdir { dir } => MetaOp::Mutate { create: None, dir },
                    IoOp::Read { .. } | IoOp::Write { .. } => unreachable!(),
                };
                let mdt = self.mdt();
                self.trace.rpcs.push(RpcRecord {
                    app: AppId(app),
                    dev: mdt,
                    kind: self.apps[app as usize].ranks[rank as usize]
                        .cur
                        .expect("current op")
                        .1,
                    bytes: 0,
                    issued,
                });
                let dst = self.dev_node[mdt.index()];
                self.send_request(
                    issued,
                    client,
                    dst,
                    META_MSG_BYTES,
                    Msg::MetaReq {
                        op: mop,
                        token,
                        client,
                    },
                    token,
                );
            }
        }
    }

    fn op_part_done(&mut self, now: SimTime, token: OpToken) {
        let app = token.app.0 as usize;
        let rank = token.rank as usize;
        let st = &mut self.apps[app].ranks[rank];
        let Some((cur_token, kind, bytes, issued)) = st.cur else {
            return; // op was cancelled (should not happen)
        };
        debug_assert_eq!(cur_token, token, "completion for a stale op");
        st.outstanding -= 1;
        if st.outstanding == 0 {
            st.cur = None;
            if st.failed {
                // At least one chunk was abandoned by the retry layer:
                // the op failed, but the rank still makes progress.
                st.failed = false;
                self.tele.rpc_failed_ops += 1;
                self.trace.failed_ops.push(token);
            } else {
                self.trace.ops.push(OpRecord {
                    token,
                    kind,
                    bytes,
                    issued,
                    completed: now,
                });
            }
            self.events.schedule(
                now,
                Ev::RankNext {
                    app: token.app.0,
                    rank: token.rank,
                },
            );
        }
    }

    // ---------------------------------------------------------- routing

    fn deliver(&mut self, now: SimTime, msg: Msg) {
        match msg {
            Msg::ReadReq { len, token, .. } | Msg::WriteReq { len, token, .. } => {
                // Server-side TBF admission, if this app is rate-limited.
                // The wait happens BEFORE the CPU stage so a throttled
                // app cannot head-of-line block other applications.
                let admitted = match self.tbf.get_mut(&token.app) {
                    Some(bucket) => bucket.earliest(now, len as f64),
                    None => now,
                };
                if admitted > now {
                    self.events.schedule(admitted, Ev::TbfAdmitted(msg));
                } else {
                    let s = self.shard_of_dev(Self::msg_dev(&msg).0);
                    self.shard_event(s, now, Ev::TbfAdmitted(msg));
                }
            }
            Msg::MetaReq { ref op, .. } => {
                let cost = match op {
                    MetaOp::Mutate { .. } => self.cfg.mds.cpu_per_mutation,
                    _ => self.cfg.mds.cpu_per_op,
                };
                let start = now.max(self.mds.cpu_free);
                let done = start + cost;
                self.mds.cpu_free = done;
                self.events.schedule(done, Ev::MdsProcess(msg));
            }
            Msg::OpDone { token } => self.op_part_done(now, token),
        }
    }

    // -------------------------------------------------------------- MDT

    /// Submit a metadata block request on the MDT and realise its
    /// dispatch outcome.
    fn submit_mdt(&mut self, now: SimTime, kind: ReqKind, sector: u64, sectors: u64, tag: DiskTag) {
        let d = self.mdt_dev.submit(now, kind, sector, sectors, true, tag);
        self.mdt_dispatch(now, d);
    }

    fn mdt_dispatch(&mut self, now: SimTime, d: Dispatch) {
        let dev = self.cfg.n_osts();
        match d {
            Dispatch::Started(dur) => self.events.schedule(now + dur, Ev::DiskDone { dev }),
            Dispatch::Anticipating(at) => self.events.schedule(at, Ev::DiskIdle { dev }),
            Dispatch::Idle => {}
        }
    }

    // -------------------------------------------------------------- MDS

    fn journal_alloc(&mut self) -> u64 {
        let s = self.mds.journal_ptr;
        self.mds.journal_ptr += self.cfg.mds.journal_record_bytes / SECTOR_SIZE;
        if self.mds.journal_ptr >= self.mds.journal_base + self.mds.journal_sectors {
            self.mds.journal_ptr = self.mds.journal_base;
        }
        s
    }

    fn inode_sector(&self, file: FileKey) -> u64 {
        // Spread inode reads over the inode region, 4 KiB aligned.
        let h = (file.app.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(file.num.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let slots = (self.mds.inode_sectors / META_SECTORS).max(1);
        self.mds.inode_base + (h % slots) * META_SECTORS
    }

    /// Begin a mutation that holds `dir`'s lock: pay the lock revocation
    /// round-trip first when the lock last belonged to a different
    /// client, then journal the change.
    fn run_under_dir_lock(&mut self, now: SimTime, token: OpToken, client: NodeId, dir: DirKey) {
        // `MdsLockStorm`: inside a storm window every acquisition pays a
        // (possibly lengthened) revocation, as if lock ownership were
        // thrashing across the whole client population.
        let storm = self
            .lock_storms
            .iter()
            .find(|&&(from, until, _)| now >= from && now < until)
            .map(|&(_, _, f)| f);
        let lock = self.mds.dirs.get_mut(&dir).expect("locked dir");
        let switch = lock.last_client != Some(client) || storm.is_some();
        lock.last_client = Some(client);
        if switch {
            self.tele.lock_revocations += 1;
            let revoke = match storm {
                Some(f) => {
                    self.tele.lock_storm_revocations += 1;
                    if f != 1.0 {
                        SimDuration::from_secs_f64(self.cfg.mds.lock_revoke.as_secs_f64() * f)
                    } else {
                        self.cfg.mds.lock_revoke
                    }
                }
                None => self.cfg.mds.lock_revoke,
            };
            let at = now + revoke;
            self.events
                .schedule(at, Ev::MdsLockRun { token, client, dir });
        } else {
            self.start_journal_write(now, token, client, dir);
        }
    }

    fn start_journal_write(&mut self, now: SimTime, token: OpToken, client: NodeId, dir: DirKey) {
        let sector = self.journal_alloc();
        self.submit_mdt(
            now,
            ReqKind::Write,
            sector,
            META_SECTORS,
            DiskTag::Journal { token, client, dir },
        );
    }

    fn mds_process(&mut self, now: SimTime, msg: Msg) {
        let Msg::MetaReq { op, token, client } = msg else {
            unreachable!("only metadata RPCs reach the MDS");
        };
        let mds_node = self.dev_node[self.mdt().index()];
        match op {
            MetaOp::Lookup { file } => {
                let hit = self.mds.inode_cache.contains(file)
                    || self.rng.chance(self.cfg.mds.lookup_cache_hit);
                if hit {
                    self.tele.lookup_cache_hits += 1;
                } else {
                    self.tele.lookup_cache_misses += 1;
                }
                if hit {
                    self.send(now, mds_node, client, META_MSG_BYTES, Msg::OpDone { token });
                } else {
                    let sector = self.inode_sector(file);
                    self.submit_mdt(
                        now,
                        ReqKind::Read,
                        sector,
                        META_SECTORS,
                        DiskTag::Lookup {
                            token,
                            client,
                            file,
                        },
                    );
                }
            }
            MetaOp::Close => {
                self.send(now, mds_node, client, META_MSG_BYTES, Msg::OpDone { token });
            }
            MetaOp::Mutate { create, dir } => {
                if let Some((file, stripe)) = create {
                    let layout = self.make_layout(file, stripe);
                    self.mds.namespace.insert(file, layout);
                    // The creator's MDS holds the fresh inode.
                    self.mds.inode_cache.insert(file);
                }
                let lock = self.mds.dirs.entry(dir).or_default();
                if lock.busy {
                    lock.waiters.push_back((token, client, now));
                } else {
                    lock.busy = true;
                    self.tele.lock_wait_us.push(0.0);
                    self.run_under_dir_lock(now, token, client, dir);
                }
            }
        }
    }

    // ------------------------------------------------------------ disks

    /// An MDT block request completed: only metadata tags can appear.
    fn mdt_disk_done(&mut self, now: SimTime) {
        let mut members = std::mem::take(&mut self.scratch_members);
        let (_meta, next) = self.mdt_dev.complete_into(now, &mut members);
        self.mdt_dispatch(now, next);
        for m in members.drain(..) {
            match m.tag {
                DiskTag::Journal { token, client, dir } => {
                    let src = self.dev_node[self.mdt().index()];
                    self.send(now, src, client, META_MSG_BYTES, Msg::OpDone { token });
                    // Release the directory lock; start the next waiter.
                    let next_waiter = {
                        let lock = self.mds.dirs.get_mut(&dir).expect("locked dir");
                        match lock.waiters.pop_front() {
                            Some(w) => Some(w),
                            None => {
                                lock.busy = false;
                                None
                            }
                        }
                    };
                    if let Some((t, c, since)) = next_waiter {
                        self.tele
                            .lock_wait_us
                            .push(now.saturating_since(since).as_secs_f64() * 1e6);
                        self.run_under_dir_lock(now, t, c, dir);
                    }
                }
                DiskTag::Lookup {
                    token,
                    client,
                    file,
                } => {
                    self.mds.inode_cache.insert(file);
                    let src = self.dev_node[self.mdt().index()];
                    self.send(now, src, client, META_MSG_BYTES, Msg::OpDone { token });
                }
                _ => unreachable!("data tag on the MDT"),
            }
        }
        self.scratch_members = members;
    }

    // --------------------------------------------------------- sampling

    /// Sequential sampler: one event walks every device, in global
    /// device order, directly into the trace.
    fn take_sample(&mut self, now: SimTime) {
        self.tele.samples_taken += 1;
        let mut gi = 0u32;
        for sh in &self.shards {
            let st = &sh.st;
            for (li, dev) in st.devices.iter().enumerate() {
                self.trace.samples.push(ServerSample {
                    time: now,
                    dev: DeviceId(gi),
                    counters: dev.counters(now),
                    dirty_bytes: st.caches[li].dirty(),
                    throttled_now: st.caches[li].throttled_now() as u64,
                });
                gi += 1;
            }
        }
        self.trace.samples.push(ServerSample {
            time: now,
            dev: DeviceId(gi),
            counters: self.mdt_dev.counters(now),
            dirty_bytes: 0,
            throttled_now: 0,
        });
    }

    /// Parallel sampler, realm side: the MDT sample is buffered and
    /// merged with the shard-side samples at the epoch barrier, in
    /// (time, device) order — the exact order [`Cluster::take_sample`]
    /// pushes.
    fn take_mdt_sample(&mut self, now: SimTime) {
        self.tele.samples_taken += 1;
        self.realm_samples.push(ServerSample {
            time: now,
            dev: DeviceId(self.cfg.n_osts()),
            counters: self.mdt_dev.counters(now),
            dirty_bytes: 0,
            throttled_now: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(num: u64) -> FileKey {
        FileKey { app: AppId(0), num }
    }

    fn cluster(cfg: ClusterConfig, seed: u64) -> Cluster {
        Cluster::builder()
            .config(cfg)
            .seed(seed)
            .build()
            .expect("valid test cluster")
    }

    /// A program issuing a fixed list of ops, then finishing.
    struct Script {
        ops: Vec<IoOp>,
        i: usize,
    }
    impl RankProgram for Script {
        fn next(&mut self, _now: SimTime) -> ProgramStep {
            if self.i < self.ops.len() {
                self.i += 1;
                ProgramStep::Op(self.ops[self.i - 1].clone())
            } else {
                ProgramStep::Finished
            }
        }
    }

    fn script(ops: Vec<IoOp>) -> Box<dyn RankProgram> {
        Box::new(Script { ops, i: 0 })
    }

    #[test]
    fn single_write_completes_and_is_traced() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let app = cl.add_app(
            "w",
            vec![script(vec![IoOp::Write {
                file: file(1),
                offset: 0,
                len: 1024 * 1024,
            }])],
            &[NodeId(0)],
        );
        let trace = cl.run_until_app(app, SimTime::from_secs(10));
        assert!(trace.completion_of(app).is_some());
        assert_eq!(trace.ops.len(), 1);
        let op = &trace.ops[0];
        assert_eq!(op.kind, OpKind::Write);
        assert_eq!(op.bytes, 1024 * 1024);
        assert!(op.completed > op.issued);
        // Cached write: ack should come back in ~network + absorb time,
        // well under the disk service time for 1 MiB.
        assert!(op.duration().as_secs_f64() < 0.01, "{}", op.duration());
        assert_eq!(trace.rpcs.len(), 1);
    }

    #[test]
    fn read_takes_disk_time() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        cl.precreate_file(file(1), 16 * 1024 * 1024, None);
        let app = cl.add_app(
            "r",
            vec![script(vec![IoOp::Read {
                file: file(1),
                offset: 0,
                len: 1024 * 1024,
            }])],
            &[NodeId(0)],
        );
        let trace = cl.run_until_app(app, SimTime::from_secs(10));
        let op = &trace.ops[0];
        // 1 MiB at 150 MB/s ≈ 7 ms of media time plus transfers.
        let d = op.duration().as_secs_f64();
        assert!(d > 0.006, "read too fast: {d}");
        assert!(d < 0.05, "read too slow: {d}");
    }

    #[test]
    fn ops_run_in_sequence_per_rank() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let ops: Vec<IoOp> = (0..10)
            .map(|i| IoOp::Write {
                file: file(1),
                offset: i * 1024 * 1024,
                len: 1024 * 1024,
            })
            .collect();
        let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        assert_eq!(trace.ops.len(), 10);
        for w in trace.ops.windows(2) {
            assert!(w[1].issued >= w[0].completed, "ops overlap");
            assert_eq!(w[1].token.seq, w[0].token.seq + 1);
        }
    }

    #[test]
    fn metadata_creates_serialize_on_shared_dir() {
        // Two ranks creating in the SAME dir must take longer than two
        // ranks creating in SEPARATE dirs.
        let run = |shared: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 1);
            let mk = |rank: u64| -> Box<dyn RankProgram> {
                let dir = DirKey {
                    app: AppId(0),
                    num: if shared { 0 } else { rank },
                };
                let ops = (0..40)
                    .map(|i| IoOp::Create {
                        file: file(rank * 1000 + i),
                        dir,
                        stripe: None,
                    })
                    .collect();
                script(ops)
            };
            let app = cl.add_app("md", vec![mk(0), mk(1)], &[NodeId(0), NodeId(1)]);
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace
                .completion_of(app)
                .expect("metadata app finished")
                .as_secs_f64()
        };
        let t_shared = run(true);
        let t_split = run(false);
        assert!(
            t_shared > t_split * 1.2,
            "shared-dir contention missing: shared {t_shared} split {t_split}"
        );
    }

    #[test]
    fn samples_cover_run_duration() {
        let mut cl = cluster(ClusterConfig::small(), 1);
        let _app = cl.add_app(
            "w",
            vec![script(vec![IoOp::Write {
                file: file(1),
                offset: 0,
                len: 1024,
            }])],
            &[NodeId(0)],
        );
        let n_devices = cl.config().n_devices() as usize;
        let trace = cl.run(SimTime::from_secs(5));
        // Samples at 1s..5s for every device (deadline pops no event at 5s,
        // so at least 4 ticks are guaranteed).
        assert!(trace.samples.len() >= 4 * n_devices);
        assert_eq!(trace.samples.len() % n_devices, 0);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let build = || {
            let mut cl = cluster(ClusterConfig::small(), 7);
            cl.precreate_file(file(1), 64 * 1024 * 1024, None);
            let ops: Vec<IoOp> = (0..20)
                .map(|i| {
                    if i % 3 == 0 {
                        IoOp::Stat { file: file(1) }
                    } else {
                        IoOp::Read {
                            file: file(1),
                            offset: (i % 8) * 1024 * 1024,
                            len: 1024 * 1024,
                        }
                    }
                })
                .collect();
            let app = cl.add_app("m", vec![script(ops)], &[NodeId(0)]);
            cl.run_until_app(app, SimTime::from_secs(60))
        };
        let a = build();
        let b = build();
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(b.ops.iter()) {
            assert_eq!(x.issued, y.issued);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.token, y.token);
        }
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn interfered_reads_are_slower() {
        // The headline mechanism: a reader slows down when another app
        // reads from the same OSTs.
        let run = |with_noise: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 3);
            // Everything on OST 0 so the streams genuinely share a disk.
            let ost0 = vec![cl.ost(0)];
            cl.precreate_file_on(file(1), 64 * 1024 * 1024, 1024 * 1024, ost0.clone());
            let reader_ops: Vec<IoOp> = (0..32)
                .map(|i| IoOp::Read {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("target", vec![script(reader_ops)], &[NodeId(0)]);
            if with_noise {
                // Noise app reading its own files from other nodes, forever.
                for k in 0..2u64 {
                    let nf = FileKey {
                        app: AppId(99),
                        num: k,
                    };
                    cl.precreate_file_on(nf, 512 * 1024 * 1024, 1024 * 1024, ost0.clone());
                    let mut i = 0u64;
                    let noise = move |_now: SimTime| {
                        i += 1;
                        ProgramStep::Op(IoOp::Read {
                            file: nf,
                            offset: (i % 512) * 1024 * 1024,
                            len: 1024 * 1024,
                        })
                    };
                    cl.add_app("noise", vec![Box::new(noise)], &[NodeId(1 + k as u32)]);
                }
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(120));
            trace
                .completion_of(app)
                .expect("reader finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy > alone * 1.5,
            "no read-read interference: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn small_writes_throttle_behind_a_bulk_writer() {
        // mdtest-hard-style tiny writes must slow down dramatically when
        // a bulk writer keeps the shared OST's cache at its dirty limit
        // (the Table I 26-41x mechanism).
        let run = |with_bulk: bool| -> f64 {
            let mut cfg = ClusterConfig::small();
            cfg.cache.dirty_limit = 16 * 1024 * 1024;
            let mut cl = cluster(cfg, 9);
            let ost0 = vec![cl.ost(0)];
            // Tiny-writer target: 60 x 3901-byte files on OST 0.
            cl.precreate_file_on(file(1), 4096, 512, ost0.clone());
            let tiny_ops: Vec<IoOp> = (0..60)
                .map(|i| IoOp::Write {
                    file: file(1),
                    offset: i * 4096,
                    len: 3901,
                })
                .collect();
            let app = cl.add_app("tiny", vec![script(tiny_ops)], &[NodeId(0)]);
            if with_bulk {
                let bulk = FileKey {
                    app: AppId(77),
                    num: 0,
                };
                cl.precreate_file_on(bulk, 512 * 1024 * 1024, 1024 * 1024, ost0);
                let mut i = 0u64;
                let noise = move |_now: SimTime| {
                    i += 1;
                    ProgramStep::Op(IoOp::Write {
                        file: bulk,
                        offset: (i % 512) * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                };
                cl.add_app("bulk", vec![Box::new(noise)], &[NodeId(1)]);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(300));
            trace
                .completion_of(app)
                .expect("tiny writer finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy > alone * 3.0,
            "tiny writes not throttled: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn streaming_reader_is_nearly_immune_to_a_bulk_writer() {
        // The flip side (anticipatory idling + read priority): a
        // streaming reader barely notices a concurrent bulk writer on
        // the same OST.
        let run = |with_bulk: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 10);
            let ost0 = vec![cl.ost(0)];
            cl.precreate_file_on(file(1), 64 * 1024 * 1024, 1024 * 1024, ost0.clone());
            let ops: Vec<IoOp> = (0..32)
                .map(|i| IoOp::Read {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("reader", vec![script(ops)], &[NodeId(0)]);
            if with_bulk {
                let bulk = FileKey {
                    app: AppId(88),
                    num: 0,
                };
                cl.precreate_file_on(bulk, 512 * 1024 * 1024, 1024 * 1024, ost0);
                let mut i = 0u64;
                let noise = move |_now: SimTime| {
                    i += 1;
                    ProgramStep::Op(IoOp::Write {
                        file: bulk,
                        offset: (i % 512) * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                };
                cl.add_app("bulk", vec![Box::new(noise)], &[NodeId(1)]);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(120));
            trace
                .completion_of(app)
                .expect("reader finished")
                .as_secs_f64()
        };
        let alone = run(false);
        let noisy = run(true);
        assert!(
            noisy < alone * 1.6,
            "reads should shrug off bulk writes: alone {alone} noisy {noisy}"
        );
    }

    #[test]
    fn small_files_are_served_from_the_page_cache() {
        // A precreated small file's reads never hit the disk: re-reads
        // are orders of magnitude faster than a cold large-file read.
        let mut cl = cluster(ClusterConfig::small(), 2);
        cl.precreate_file(file(1), 3901, None); // small -> resident
        cl.precreate_file(file(2), 64 * 1024 * 1024, None); // large -> cold
        let ops = vec![
            IoOp::Read {
                file: file(1),
                offset: 0,
                len: 3901,
            },
            IoOp::Read {
                file: file(2),
                offset: 0,
                len: 1024 * 1024,
            },
        ];
        let app = cl.add_app("r", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        let small_read = trace.ops[0].duration().as_secs_f64();
        let large_read = trace.ops[1].duration().as_secs_f64();
        assert!(
            small_read * 5.0 < large_read,
            "small {small_read} not cached vs large {large_read}"
        );
    }

    #[test]
    fn server_samples_reflect_cache_pressure() {
        // Saturating one OST's cache must surface in the sampled
        // dirty_bytes (the monitor's cache-pressure signal).
        let mut cfg = ClusterConfig::small();
        cfg.cache.dirty_limit = 8 * 1024 * 1024;
        cfg.sample_interval = SimDuration::from_millis(100);
        let mut cl = cluster(cfg, 3);
        let ost0 = vec![cl.ost(0)];
        cl.precreate_file_on(file(1), 256 * 1024 * 1024, 1024 * 1024, ost0);
        let ops: Vec<IoOp> = (0..128)
            .map(|i| IoOp::Write {
                file: file(1),
                offset: i * 1024 * 1024,
                len: 1024 * 1024,
            })
            .collect();
        let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(120));
        let max_dirty = trace
            .samples
            .iter()
            .filter(|s| s.dev == DeviceId(0))
            .map(|s| s.dirty_bytes)
            .max()
            .expect("samples exist");
        assert!(
            max_dirty >= 7 * 1024 * 1024,
            "cache pressure invisible: max dirty {max_dirty}"
        );
        // And the flush eventually drains: writes complete.
        assert_eq!(trace.ops.len(), 128);
    }

    #[test]
    fn server_tbf_rate_limits_an_app() {
        // A writer limited to 10 MB/s must take ~10x longer than one
        // allowed to run free (cache-speed writes).
        let run = |limit: Option<f64>| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 6);
            let ops: Vec<IoOp> = (0..64)
                .map(|i| IoOp::Write {
                    file: file(1),
                    offset: i * 1024 * 1024,
                    len: 1024 * 1024,
                })
                .collect();
            let app = cl.add_app("w", vec![script(ops)], &[NodeId(0)]);
            if let Some(rate) = limit {
                cl.set_app_rate_limit(app, rate);
            }
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace.completion_of(app).expect("finished").as_secs_f64()
        };
        let free = run(None);
        let limited = run(Some(10.0e6));
        // 64 MiB at 10 MB/s ≈ 6.7 s (minus the 1 s burst).
        assert!(
            limited > free * 3.0 && limited > 4.0,
            "TBF ineffective: free {free} limited {limited}"
        );
    }

    #[test]
    fn shared_nic_slows_colocated_ranks() {
        // Two ranks on ONE client node share its NIC; spreading them over
        // two nodes must be faster for network-bound (cached) writes.
        let run = |colocated: bool| -> f64 {
            let mut cl = cluster(ClusterConfig::small(), 4);
            let mk = |rank: u64| -> Box<dyn RankProgram> {
                let ops: Vec<IoOp> = (0..32)
                    .map(|i| IoOp::Write {
                        file: file(rank),
                        offset: i * 1024 * 1024,
                        len: 1024 * 1024,
                    })
                    .collect();
                script(ops)
            };
            let nodes: Vec<NodeId> = if colocated {
                vec![NodeId(0), NodeId(0)]
            } else {
                vec![NodeId(0), NodeId(1)]
            };
            let app = cl.add_app("w", vec![mk(0), mk(1)], &nodes);
            let trace = cl.run_until_app(app, SimTime::from_secs(60));
            trace.completion_of(app).expect("finished").as_secs_f64()
        };
        let spread = run(false);
        let shared = run(true);
        assert!(
            shared > spread * 1.2,
            "NIC contention missing: shared {shared} spread {spread}"
        );
    }
}
