//! Store-and-forward network model with per-node NIC serialization.
//!
//! Each node owns one NIC. A transfer occupies both the sender's and the
//! receiver's NIC for `bytes / bandwidth`, beginning when both are free;
//! delivery lands one propagation latency after the transfer ends. Because
//! the receiver NIC serializes, fan-in to a storage server saturates at
//! the NIC rate — the network-contention component of I/O interference.

use qi_simkit::time::{SimDuration, SimTime};

use crate::config::NetConfig;
use crate::ids::NodeId;

/// The cluster network: one NIC per node.
pub struct Network {
    cfg: NetConfig,
    nic_free: Vec<SimTime>,
    /// Cumulative bytes through each NIC (tx + rx), for utilisation stats.
    nic_bytes: Vec<u64>,
    /// Cumulative time each NIC spent occupied by a transfer.
    nic_busy: Vec<SimDuration>,
}

impl Network {
    /// Network with `n_nodes` NICs, all idle.
    pub fn new(cfg: NetConfig, n_nodes: u32) -> Self {
        Network {
            cfg,
            nic_free: vec![SimTime::ZERO; n_nodes as usize],
            nic_bytes: vec![0; n_nodes as usize],
            nic_busy: vec![SimDuration::ZERO; n_nodes as usize],
        }
    }

    /// The configured model parameters.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Earliest time `node`'s NIC is free.
    pub fn nic_free_at(&self, node: NodeId) -> SimTime {
        self.nic_free[node.0 as usize]
    }

    /// Total bytes moved through `node`'s NIC so far.
    pub fn nic_bytes(&self, node: NodeId) -> u64 {
        self.nic_bytes[node.0 as usize]
    }

    /// Total time `node`'s NIC has been occupied by transfers. Both
    /// endpoints of a transfer accrue its full duration, so a NIC's
    /// utilisation over a run is `nic_busy / elapsed`.
    pub fn nic_busy(&self, node: NodeId) -> SimDuration {
        self.nic_busy[node.0 as usize]
    }

    /// Reserve the path for a `payload`-byte message from `src` to `dst`
    /// starting no earlier than `now`; returns the delivery time.
    ///
    /// Must be called in non-decreasing `now` order (which the event loop
    /// guarantees); reservations are FIFO per NIC.
    pub fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64) -> SimTime {
        assert_ne!(src, dst, "loopback messages need no network");
        let bytes = payload + self.cfg.header_bytes;
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.cfg.bandwidth);
        let start = now
            .max(self.nic_free[src.0 as usize])
            .max(self.nic_free[dst.0 as usize]);
        let end = start + dur;
        self.nic_free[src.0 as usize] = end;
        self.nic_free[dst.0 as usize] = end;
        self.nic_bytes[src.0 as usize] += bytes;
        self.nic_bytes[dst.0 as usize] += bytes;
        self.nic_busy[src.0 as usize] += dur;
        self.nic_busy[dst.0 as usize] += dur;
        end + self.cfg.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetConfig::default(), 4)
    }

    #[test]
    fn transfer_time_includes_latency_and_header() {
        let mut n = net();
        let t = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let expect = (1_000_000.0 + 256.0) / 1.0e9 + 100e-6;
        assert!((t.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn receiver_nic_serializes_fan_in() {
        let mut n = net();
        // Two different senders target node 3 at the same instant.
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000);
        let t2 = n.send(SimTime::ZERO, NodeId(1), NodeId(3), 1_000_000);
        // Second transfer waits for the receiver NIC.
        assert!(t2.as_secs_f64() > 2.0 * (t1.as_secs_f64() - 100e-6));
    }

    #[test]
    fn disjoint_pairs_run_concurrently() {
        let mut n = net();
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let t2 = n.send(SimTime::ZERO, NodeId(2), NodeId(3), 1_000_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn sender_nic_serializes_back_to_back_sends() {
        let mut n = net();
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 500_000);
        let t2 = n.send(SimTime::ZERO, NodeId(0), NodeId(2), 500_000);
        assert!(t2 > t1);
        assert_eq!(n.nic_bytes(NodeId(0)), 2 * (500_000 + 256));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let mut n = net();
        n.send(SimTime::ZERO, NodeId(1), NodeId(1), 10);
    }
}
