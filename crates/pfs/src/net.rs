//! Store-and-forward network model with per-node NIC serialization.
//!
//! Each node owns one NIC. A transfer occupies both the sender's and the
//! receiver's NIC for `bytes / bandwidth`, beginning when both are free;
//! delivery lands one propagation latency after the transfer ends. Because
//! the receiver NIC serializes, fan-in to a storage server saturates at
//! the NIC rate — the network-contention component of I/O interference.

use qi_simkit::rng::SimRng;
use qi_simkit::time::{SimDuration, SimTime};

use crate::config::NetConfig;
use crate::ids::NodeId;

/// What a link fault does to matching transfers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFaultKind {
    /// Lose each matching request with this probability.
    Drop {
        /// Per-request loss probability in `[0, 1]`.
        prob: f64,
    },
    /// Add fixed extra one-way latency to matching transfers.
    Delay {
        /// Extra latency per transfer.
        delay: SimDuration,
    },
}

/// A fault rule on the network: applies to transfers whose endpoints
/// match the (optional) filters, within `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Source filter (`None` matches any sender).
    pub src: Option<NodeId>,
    /// Destination filter (`None` matches any receiver).
    pub dst: Option<NodeId>,
    /// Active-window start.
    pub from: SimTime,
    /// Active-window end.
    pub until: SimTime,
    /// Loss or latency.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    fn matches(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        now >= self.from
            && now < self.until
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// The fate of a request consulted against the active fault rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered normally, with this much extra latency (zero when no
    /// delay rule matched).
    Deliver(SimDuration),
    /// Lost in transit: the transfer still occupies both NICs, but the
    /// message never arrives.
    Dropped,
}

/// Per-node NIC state, kept in one struct so a transfer touches a
/// single cache line per endpoint instead of three parallel vectors.
#[derive(Clone, Copy)]
struct Nic {
    /// Earliest time this NIC is free for the next transfer.
    free_at: SimTime,
    /// Cumulative bytes through the NIC (tx + rx), for utilisation stats.
    bytes: u64,
    /// Cumulative time the NIC spent occupied by a transfer.
    busy: SimDuration,
}

impl Nic {
    const IDLE: Nic = Nic {
        free_at: SimTime::ZERO,
        bytes: 0,
        busy: SimDuration::ZERO,
    };
}

/// The cluster network: one NIC per node.
pub struct Network {
    cfg: NetConfig,
    nics: Vec<Nic>,
    /// Fault rules from the active `FaultPlan`, in insertion order.
    faults: Vec<LinkFault>,
}

impl Network {
    /// Network with `n_nodes` NICs, all idle.
    pub fn new(cfg: NetConfig, n_nodes: u32) -> Self {
        Network {
            cfg,
            nics: vec![Nic::IDLE; n_nodes as usize],
            faults: Vec::new(),
        }
    }

    /// Install a fault rule (from the cluster's `FaultPlan`).
    pub fn add_fault(&mut self, fault: LinkFault) {
        self.faults.push(fault);
    }

    /// True when any fault rules are installed. When false, the RPC
    /// layer skips fate consultation entirely, so healthy runs never
    /// touch the fault RNG and stay byte-identical to pre-fault builds.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Decide what happens to a request sent `src → dst` at `now`. The
    /// RNG is consulted only for matching `Drop` rules (in insertion
    /// order), so the draw sequence depends only on which rules match —
    /// not on unrelated traffic.
    pub fn fate(&self, now: SimTime, src: NodeId, dst: NodeId, rng: &mut SimRng) -> LinkFate {
        let mut extra = SimDuration::ZERO;
        for f in &self.faults {
            if !f.matches(now, src, dst) {
                continue;
            }
            match f.kind {
                LinkFaultKind::Drop { prob } => {
                    if rng.chance(prob) {
                        return LinkFate::Dropped;
                    }
                }
                LinkFaultKind::Delay { delay } => extra += delay,
            }
        }
        LinkFate::Deliver(extra)
    }

    /// The configured model parameters.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Earliest time `node`'s NIC is free.
    pub fn nic_free_at(&self, node: NodeId) -> SimTime {
        self.nics[node.0 as usize].free_at
    }

    /// Total bytes moved through `node`'s NIC so far.
    pub fn nic_bytes(&self, node: NodeId) -> u64 {
        self.nics[node.0 as usize].bytes
    }

    /// Total time `node`'s NIC has been occupied by transfers. Both
    /// endpoints of a transfer accrue its full duration, so a NIC's
    /// utilisation over a run is `nic_busy / elapsed`.
    pub fn nic_busy(&self, node: NodeId) -> SimDuration {
        self.nics[node.0 as usize].busy
    }

    /// Reserve the path for a `payload`-byte message from `src` to `dst`
    /// starting no earlier than `now`; returns the delivery time.
    ///
    /// Must be called in non-decreasing `now` order (which the event loop
    /// guarantees); reservations are FIFO per NIC.
    pub fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64) -> SimTime {
        assert_ne!(src, dst, "loopback messages need no network");
        let bytes = payload + self.cfg.header_bytes;
        let dur = SimDuration::from_secs_f64(bytes as f64 / self.cfg.bandwidth);
        let start = now
            .max(self.nics[src.0 as usize].free_at)
            .max(self.nics[dst.0 as usize].free_at);
        let end = start + dur;
        for node in [src, dst] {
            let nic = &mut self.nics[node.0 as usize];
            nic.free_at = end;
            nic.bytes += bytes;
            nic.busy += dur;
        }
        end + self.cfg.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetConfig::default(), 4)
    }

    #[test]
    fn transfer_time_includes_latency_and_header() {
        let mut n = net();
        let t = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let expect = (1_000_000.0 + 256.0) / 1.0e9 + 100e-6;
        assert!((t.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn receiver_nic_serializes_fan_in() {
        let mut n = net();
        // Two different senders target node 3 at the same instant.
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(3), 1_000_000);
        let t2 = n.send(SimTime::ZERO, NodeId(1), NodeId(3), 1_000_000);
        // Second transfer waits for the receiver NIC.
        assert!(t2.as_secs_f64() > 2.0 * (t1.as_secs_f64() - 100e-6));
    }

    #[test]
    fn disjoint_pairs_run_concurrently() {
        let mut n = net();
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        let t2 = n.send(SimTime::ZERO, NodeId(2), NodeId(3), 1_000_000);
        assert_eq!(t1, t2);
    }

    #[test]
    fn sender_nic_serializes_back_to_back_sends() {
        let mut n = net();
        let t1 = n.send(SimTime::ZERO, NodeId(0), NodeId(1), 500_000);
        let t2 = n.send(SimTime::ZERO, NodeId(0), NodeId(2), 500_000);
        assert!(t2 > t1);
        assert_eq!(n.nic_bytes(NodeId(0)), 2 * (500_000 + 256));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_is_rejected() {
        let mut n = net();
        n.send(SimTime::ZERO, NodeId(1), NodeId(1), 10);
    }

    #[test]
    fn fate_is_deliver_without_rules() {
        let n = net();
        let mut rng = SimRng::new(1);
        assert!(!n.has_faults());
        assert_eq!(
            n.fate(SimTime::ZERO, NodeId(0), NodeId(1), &mut rng),
            LinkFate::Deliver(SimDuration::ZERO)
        );
    }

    #[test]
    fn drop_rule_matches_window_and_endpoints() {
        let mut n = net();
        let t1 = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = SimTime::ZERO + SimDuration::from_secs(2);
        n.add_fault(LinkFault {
            src: None,
            dst: Some(NodeId(3)),
            from: t1,
            until: t2,
            kind: LinkFaultKind::Drop { prob: 1.0 },
        });
        assert!(n.has_faults());
        let mut rng = SimRng::new(1);
        // Outside the window: deliver.
        assert_eq!(
            n.fate(SimTime::ZERO, NodeId(0), NodeId(3), &mut rng),
            LinkFate::Deliver(SimDuration::ZERO)
        );
        assert_eq!(
            n.fate(t2, NodeId(0), NodeId(3), &mut rng),
            LinkFate::Deliver(SimDuration::ZERO)
        );
        // Wrong destination: deliver.
        assert_eq!(
            n.fate(t1, NodeId(0), NodeId(2), &mut rng),
            LinkFate::Deliver(SimDuration::ZERO)
        );
        // Matching: always dropped at prob 1.0.
        assert_eq!(
            n.fate(t1, NodeId(0), NodeId(3), &mut rng),
            LinkFate::Dropped
        );
    }

    #[test]
    fn delay_rules_accumulate() {
        let mut n = net();
        let t0 = SimTime::ZERO;
        let t9 = t0 + SimDuration::from_secs(9);
        let d = SimDuration::from_micros(250);
        for _ in 0..2 {
            n.add_fault(LinkFault {
                src: Some(NodeId(0)),
                dst: None,
                from: t0,
                until: t9,
                kind: LinkFaultKind::Delay { delay: d },
            });
        }
        let mut rng = SimRng::new(1);
        assert_eq!(
            n.fate(t0, NodeId(0), NodeId(1), &mut rng),
            LinkFate::Deliver(d + d)
        );
    }
}
