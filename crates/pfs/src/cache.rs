//! OSS write-back cache with dirty-data throttling.
//!
//! Writes normally complete as soon as they are absorbed into server
//! memory; the dirty data is flushed to the OST in the background at lower
//! priority than synchronous reads. Once the dirty limit is reached,
//! incoming writes *throttle*: they queue here and are only acknowledged
//! as flush progress frees space. This is the mechanism that makes small
//! writes (e.g. mdtest-hard's 3901-byte file bodies) collapse behind bulk
//! writers — the 26-41× cells in the paper's Table I.

use std::collections::VecDeque;

use qi_simkit::time::SimDuration;

use crate::config::CacheConfig;

/// Outcome of offering a write to the cache.
#[derive(Debug)]
pub enum Admit {
    /// The write fits in cache: acknowledge after this absorb delay and
    /// submit a background flush.
    Absorbed {
        /// Memory-copy time for the payload.
        absorb: SimDuration,
    },
    /// The cache is at its dirty limit; the write waits inside the cache
    /// and will be released by a later [`WriteCache::flushed`] call.
    Throttled,
    /// Write-back is disabled (journal device): the caller must issue a
    /// synchronous foreground write.
    Sync,
}

/// A throttled write released once flush progress made room.
#[derive(Debug)]
pub struct Released<T> {
    /// Caller payload.
    pub tag: T,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Memory-copy time to charge before acknowledging.
    pub absorb: SimDuration,
}

/// Per-device write-back cache state.
pub struct WriteCache<T> {
    cfg: CacheConfig,
    dirty: u64,
    throttled: VecDeque<(T, u64)>,
    /// Cumulative count of writes that ever throttled (monitoring).
    throttled_total: u64,
}

impl<T> WriteCache<T> {
    /// New empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        WriteCache {
            cfg,
            dirty: 0,
            throttled: VecDeque::new(),
            throttled_total: 0,
        }
    }

    /// Bytes currently dirty (absorbed but not yet flushed).
    pub fn dirty(&self) -> u64 {
        self.dirty
    }

    /// Writes currently waiting for room.
    pub fn throttled_now(&self) -> usize {
        self.throttled.len()
    }

    /// Cumulative count of writes that ever had to throttle.
    pub fn throttled_total(&self) -> u64 {
        self.throttled_total
    }

    fn absorb_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.absorb_rate)
    }

    fn fits(&self, bytes: u64) -> bool {
        // An oversized single write is admitted when the cache is empty so
        // it can never deadlock.
        self.dirty + bytes <= self.cfg.dirty_limit || self.dirty == 0
    }

    /// Offer a write of `bytes` with completion payload `tag`.
    ///
    /// On [`Admit::Throttled`] the tag is retained internally and will come
    /// back from [`WriteCache::flushed`].
    pub fn admit(&mut self, bytes: u64, tag: T) -> Admit {
        if !self.cfg.write_back {
            return Admit::Sync;
        }
        if self.throttled.is_empty() && self.fits(bytes) {
            self.dirty += bytes;
            Admit::Absorbed {
                absorb: self.absorb_time(bytes),
            }
        } else {
            self.throttled.push_back((tag, bytes));
            self.throttled_total += 1;
            Admit::Throttled
        }
    }

    /// Record that `bytes` of dirty data finished flushing to disk, and
    /// release as many throttled writes as now fit (FIFO order).
    pub fn flushed(&mut self, bytes: u64) -> Vec<Released<T>> {
        debug_assert!(bytes <= self.dirty, "flushed more than was dirty");
        self.dirty = self.dirty.saturating_sub(bytes);
        let mut released = Vec::new();
        while let Some(&(_, b)) = self.throttled.front() {
            if !self.fits(b) {
                break;
            }
            let (tag, b) = self.throttled.pop_front().expect("non-empty front");
            self.dirty += b;
            released.push(Released {
                tag,
                bytes: b,
                absorb: self.absorb_time(b),
            });
        }
        released
    }
}

/// A fixed-capacity LRU membership set (used for the MDS inode cache:
/// the first lookup of a file misses to the MDT, later lookups hit until
/// the entry ages out).
pub struct LruSet<K: std::hash::Hash + Eq + Copy> {
    capacity: usize,
    entries: std::collections::HashMap<K, u64>,
    tick: u64,
}

impl<K: std::hash::Hash + Eq + Copy> LruSet<K> {
    /// Set holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LruSet {
            capacity,
            entries: std::collections::HashMap::new(),
            tick: 0,
        }
    }

    /// Whether `key` is present; refreshes its recency.
    pub fn contains(&mut self, key: K) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(t) => {
                *t = tick;
                true
            }
            None => false,
        }
    }

    /// Insert `key`, evicting the least recently used entry if full.
    pub fn insert(&mut self, key: K) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(key, tick);
        if self.entries.len() > self.capacity {
            let (&victim, _) = self
                .entries
                .iter()
                .min_by_key(|(_, &t)| t)
                .expect("non-empty LRU");
            self.entries.remove(&victim);
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Server page cache residency for *small* objects (LRU by bytes).
///
/// Reads of resident objects are served from memory. Objects become
/// resident when written or first read, if they are small enough.
pub struct SmallObjectCache {
    small_max: u64,
    budget: u64,
    used: u64,
    /// object → (bytes, last-use tick).
    resident: std::collections::HashMap<crate::layout::ObjKey, (u64, u64)>,
    tick: u64,
}

impl SmallObjectCache {
    /// Cache admitting objects up to `small_max` bytes, evicting LRU
    /// beyond `budget` total bytes.
    pub fn new(small_max: u64, budget: u64) -> Self {
        SmallObjectCache {
            small_max,
            budget,
            used: 0,
            resident: std::collections::HashMap::new(),
            tick: 0,
        }
    }

    /// Whether `obj` is resident; refreshes its LRU position.
    pub fn contains(&mut self, obj: crate::layout::ObjKey) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.resident.get_mut(&obj) {
            Some(entry) => {
                entry.1 = tick;
                true
            }
            None => false,
        }
    }

    /// Record that `obj` now holds `bytes` of data; becomes (or stays)
    /// resident when small enough.
    pub fn touch(&mut self, obj: crate::layout::ObjKey, bytes: u64) {
        if bytes > self.small_max {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.resident.get_mut(&obj) {
            Some(entry) => {
                self.used = self.used - entry.0 + bytes.max(entry.0);
                entry.0 = entry.0.max(bytes);
                entry.1 = tick;
            }
            None => {
                self.resident.insert(obj, (bytes, tick));
                self.used += bytes;
            }
        }
        while self.used > self.budget && self.resident.len() > 1 {
            let (&victim, _) = self
                .resident
                .iter()
                .min_by_key(|(_, &(_, t))| t)
                .expect("non-empty cache");
            let (b, _) = self.resident.remove(&victim).expect("victim present");
            self.used -= b;
        }
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Resident object count.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AppId, FileKey};
    use crate::layout::ObjKey;

    fn obj(n: u64) -> ObjKey {
        ObjKey {
            file: FileKey {
                app: AppId(0),
                num: n,
            },
            stripe: 0,
        }
    }

    #[test]
    fn small_objects_become_resident() {
        let mut c = SmallObjectCache::new(1000, 10_000);
        assert!(!c.contains(obj(1)));
        c.touch(obj(1), 500);
        assert!(c.contains(obj(1)));
        assert_eq!(c.used(), 500);
    }

    #[test]
    fn large_objects_bypass() {
        let mut c = SmallObjectCache::new(1000, 10_000);
        c.touch(obj(1), 5000);
        assert!(!c.contains(obj(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_over_budget() {
        let mut c = SmallObjectCache::new(1000, 2000);
        c.touch(obj(1), 1000);
        c.touch(obj(2), 1000);
        // Refresh 1, then insert 3: 2 is the LRU victim.
        assert!(c.contains(obj(1)));
        c.touch(obj(3), 1000);
        assert!(c.contains(obj(1)));
        assert!(!c.contains(obj(2)));
        assert!(c.contains(obj(3)));
        assert!(c.used() <= 2000);
    }

    #[test]
    fn retouch_grows_to_max_size() {
        let mut c = SmallObjectCache::new(1000, 10_000);
        c.touch(obj(1), 200);
        c.touch(obj(1), 800);
        assert_eq!(c.used(), 800);
        c.touch(obj(1), 100); // smaller write does not shrink residency
        assert_eq!(c.used(), 800);
        assert_eq!(c.len(), 1);
    }

    fn cache(limit: u64) -> WriteCache<u32> {
        WriteCache::new(CacheConfig {
            dirty_limit: limit,
            absorb_rate: 2.0e9,
            write_back: true,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn absorbs_until_limit_then_throttles() {
        let mut c = cache(100);
        assert!(matches!(c.admit(60, 1), Admit::Absorbed { .. }));
        assert!(matches!(c.admit(40, 2), Admit::Absorbed { .. }));
        assert!(matches!(c.admit(1, 3), Admit::Throttled));
        assert_eq!(c.dirty(), 100);
        assert_eq!(c.throttled_now(), 1);
        assert_eq!(c.throttled_total(), 1);
    }

    #[test]
    fn flush_releases_fifo() {
        let mut c = cache(100);
        assert!(matches!(c.admit(100, 1), Admit::Absorbed { .. }));
        assert!(matches!(c.admit(30, 2), Admit::Throttled));
        assert!(matches!(c.admit(30, 3), Admit::Throttled));
        let rel = c.flushed(50);
        let tags: Vec<u32> = rel.iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![2]); // only one fits: 50 + 30 <= 100, then 80+30 > 100
        assert_eq!(c.dirty(), 80);
        let rel = c.flushed(80);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].tag, 3);
    }

    #[test]
    fn oversized_write_admitted_when_empty() {
        let mut c = cache(10);
        assert!(matches!(c.admit(1000, 1), Admit::Absorbed { .. }));
        assert_eq!(c.dirty(), 1000);
        // A second write must wait until the oversize flush completes.
        assert!(matches!(c.admit(1, 2), Admit::Throttled));
        let rel = c.flushed(1000);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn throttled_queue_preserves_arrival_order_even_when_fitting() {
        // A small write that would fit must not overtake queued writes.
        let mut c = cache(100);
        assert!(matches!(c.admit(100, 1), Admit::Absorbed { .. }));
        assert!(matches!(c.admit(80, 2), Admit::Throttled));
        assert!(matches!(c.admit(1, 3), Admit::Throttled));
        let rel = c.flushed(90); // dirty 10: tag 2 (80) fits now; then 3
        let tags: Vec<u32> = rel.iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![2, 3]);
    }

    #[test]
    fn sync_mode_never_caches() {
        let mut c: WriteCache<u32> = WriteCache::new(CacheConfig {
            write_back: false,
            ..CacheConfig::default()
        });
        assert!(matches!(c.admit(10, 1), Admit::Sync));
        assert_eq!(c.dirty(), 0);
    }

    #[test]
    fn absorb_time_scales_with_bytes() {
        let mut c = cache(1 << 30);
        let t1 = match c.admit(1_000_000, 1) {
            Admit::Absorbed { absorb } => absorb,
            _ => panic!(),
        };
        let t2 = match c.admit(2_000_000, 2) {
            Admit::Absorbed { absorb } => absorb,
            _ => panic!(),
        };
        assert!((t2.as_secs_f64() - 2.0 * t1.as_secs_f64()).abs() < 1e-9);
    }
}
