//! Block-layer request queue and device driver.
//!
//! Models the part of a Lustre server the paper's server-side monitor
//! watches (Table II): a request queue with adjacent-request merging, a
//! deadline-style dispatch policy that prioritises synchronous reads over
//! background flush writes (bounded by `writes_starved`), and the
//! `/proc/diskstats`-like cumulative counters the monitor samples.
//!
//! The queue is generic over a completion tag `T` so the cluster can hang
//! RPC continuations off each request; merged requests carry every
//! member's tag and arrival time, so queue-wait accounting stays exact.
//!
//! Internally, members live in a per-device slab and queued requests
//! reference them as an intrusive linked list, so submitting and merging
//! requests never allocates in steady state (freed member slots are
//! recycled) and a merge is an O(1) list concatenation. Completions can
//! drain members into a caller-owned scratch buffer
//! ([`BlockDevice::complete_into`]) to keep the event loop allocation-free.

use std::collections::VecDeque;

use qi_simkit::stats::{Histogram, OnlineStats};
use qi_simkit::time::{SimDuration, SimTime};

use crate::config::QueueConfig;
use crate::disk::Disk;

/// Read or write, at the block level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqKind {
    /// Data leaves the device.
    Read,
    /// Data enters the device.
    Write,
}

/// One logical request that was merged into a queued block request.
#[derive(Clone, Debug)]
pub struct Member<T> {
    /// Caller's completion payload.
    pub tag: T,
    /// When this member entered the queue.
    pub arrival: SimTime,
    /// Sectors contributed by this member.
    pub sectors: u64,
}

/// A member slot in the device's arena: payload plus the intrusive link
/// to the next member of the same queued request.
#[derive(Clone, Debug)]
struct MemberNode<T> {
    /// `None` only while the slot sits on the free list.
    tag: Option<T>,
    arrival: SimTime,
    sectors: u64,
    /// Next member of the same request, or the next free slot; NIL ends
    /// either list.
    next: u32,
}

/// Null member link.
const NIL: u32 = u32::MAX;

/// A (possibly merged) block request waiting in, or being serviced by,
/// the device. Members are held in the device arena as a `head..tail`
/// list, so this struct stays `Copy`-cheap and merging two requests is
/// pointer surgery, not a `Vec` append.
#[derive(Clone, Copy, Debug)]
struct QueuedReq {
    /// Read or write.
    kind: ReqKind,
    /// First sector.
    sector: u64,
    /// Total span in sectors.
    sectors: u64,
    /// Synchronous (foreground) or background flush.
    foreground: bool,
    /// First member (arena index), in merge order.
    head: u32,
    /// Last member (arena index).
    tail: u32,
    /// Member count.
    nmembers: u32,
}

/// Completion metadata for a finished request; the members are drained
/// separately (into a caller buffer by [`BlockDevice::complete_into`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletedMeta {
    /// Read or write.
    pub kind: ReqKind,
    /// Total sectors transferred.
    pub sectors: u64,
    /// Whether it was a foreground request.
    pub foreground: bool,
}

/// A finished request handed back to the caller.
#[derive(Clone, Debug)]
pub struct Completed<T> {
    /// Read or write.
    pub kind: ReqKind,
    /// Total sectors transferred.
    pub sectors: u64,
    /// Whether it was a foreground request.
    pub foreground: bool,
    /// Member tags, in merge order.
    pub members: Vec<Member<T>>,
}

/// Cumulative device counters, in the spirit of `/proc/diskstats`.
///
/// All fields only ever increase (except `queued_now`); the server-side
/// monitor samples them every second and differences consecutive samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceCounters {
    /// Completed read requests (member granularity).
    pub reads_completed: u64,
    /// Completed write requests (member granularity).
    pub writes_completed: u64,
    /// Sectors read from the media.
    pub sectors_read: u64,
    /// Sectors written to the media.
    pub sectors_written: u64,
    /// Read requests merged with an already-queued request.
    pub read_merges: u64,
    /// Write requests merged with an already-queued request.
    pub write_merges: u64,
    /// Requests that have entered the queue.
    pub enqueued: u64,
    /// Sum over completed members of (completion − arrival), nanoseconds.
    pub wait_ns: u64,
    /// Time-integral of queue depth (members, incl. in-service), ns·reqs.
    pub weighted_depth_ns: u64,
    /// Cumulative device busy time, nanoseconds (accrued at dispatch).
    pub busy_ns: u64,
    /// Members currently queued or in service (instantaneous).
    pub queued_now: u64,
}

/// What the device wants the caller (event loop) to do after a submit,
/// completion, or idle check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dispatch {
    /// A request entered service; schedule its completion this far out.
    Started(SimDuration),
    /// The device is anticipating another synchronous request; call
    /// [`BlockDevice::idle_check`] at this instant.
    Anticipating(SimTime),
    /// Nothing to do.
    Idle,
}

impl Dispatch {
    /// The service duration when a request was started.
    pub fn started(self) -> Option<SimDuration> {
        match self {
            Dispatch::Started(d) => Some(d),
            _ => None,
        }
    }

    /// True when no request was started and none is anticipated.
    pub fn is_idle(&self) -> bool {
        matches!(self, Dispatch::Idle)
    }
}

/// A storage device: request queue + rotational disk + dispatch policy.
pub struct BlockDevice<T> {
    cfg: QueueConfig,
    disk: Disk,
    fg: VecDeque<QueuedReq>,
    bg: VecDeque<QueuedReq>,
    in_service: Option<QueuedReq>,
    /// Member arena: request members + a free list threaded via `next`.
    members: Vec<MemberNode<T>>,
    /// Head of the member free list.
    free: u32,
    fg_since_bg: u32,
    counters: DeviceCounters,
    last_depth_change: SimTime,
    /// While set, background work is deferred until this instant in the
    /// hope that another synchronous request arrives first.
    anticipate_until: Option<SimTime>,
    /// Injected `DiskStall` fault: no new request dispatches before this
    /// instant. In-flight requests finish normally.
    stalled_until: Option<SimTime>,
    /// Queue depth (queued + in service) sampled at every submission.
    depth_stats: OnlineStats,
    /// Sector distance between the disk head and each dispatched request.
    seek_stats: OnlineStats,
}

impl<T> BlockDevice<T> {
    /// New idle device.
    pub fn new(cfg: QueueConfig, disk: Disk) -> Self {
        BlockDevice {
            cfg,
            disk,
            fg: VecDeque::new(),
            bg: VecDeque::new(),
            in_service: None,
            members: Vec::new(),
            free: NIL,
            fg_since_bg: 0,
            counters: DeviceCounters::default(),
            last_depth_change: SimTime::ZERO,
            anticipate_until: None,
            stalled_until: None,
            depth_stats: OnlineStats::new(),
            seek_stats: OnlineStats::new(),
        }
    }

    /// Whether the disk is currently servicing a request.
    pub fn busy(&self) -> bool {
        self.in_service.is_some()
    }

    /// Snapshot of the cumulative counters.
    pub fn counters(&self, now: SimTime) -> DeviceCounters {
        let mut c = self.counters;
        // Fold in the depth integral up to `now` without mutating.
        c.weighted_depth_ns +=
            c.queued_now * now.saturating_since(self.last_depth_change).as_nanos();
        c.busy_ns = self.disk.busy_time().as_nanos();
        c
    }

    /// Queue-depth distribution, one observation per submitted request
    /// (depth includes the request just queued and any in service).
    pub fn depth_stats(&self) -> &OnlineStats {
        &self.depth_stats
    }

    /// Seek-distance distribution (sectors between the head and each
    /// dispatched request); 0 for sequential continuations.
    pub fn seek_stats(&self) -> &OnlineStats {
        &self.seek_stats
    }

    /// Per-request service-time histogram of the underlying disk, in
    /// microseconds.
    pub fn service_time_hist(&self) -> &Histogram {
        self.disk.service_time_hist()
    }

    /// Members queued but not yet in service.
    pub fn queued_members(&self) -> u64 {
        self.fg
            .iter()
            .chain(self.bg.iter())
            .map(|r| r.nmembers as u64)
            .sum()
    }

    /// Allocate a member slot (recycling freed slots first).
    fn alloc_member(&mut self, tag: T, arrival: SimTime, sectors: u64) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.members[idx as usize];
            self.free = n.next;
            n.tag = Some(tag);
            n.arrival = arrival;
            n.sectors = sectors;
            n.next = NIL;
            idx
        } else {
            let idx = self.members.len() as u32;
            assert!(idx != NIL, "member arena limit exceeded");
            self.members.push(MemberNode {
                tag: Some(tag),
                arrival,
                sectors,
                next: NIL,
            });
            idx
        }
    }

    /// Access to the underlying disk (e.g. for utilisation stats).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the underlying disk (fail-slow injection).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Inject a `DiskStall` fault: freeze dispatch until `until`. Any
    /// request already in service finishes normally; queued and newly
    /// submitted work waits. Returns what the caller should do next —
    /// [`Dispatch::Anticipating`] asks for an [`BlockDevice::idle_check`]
    /// when the stall lifts.
    pub fn stall(&mut self, now: SimTime, until: SimTime) -> Dispatch {
        if until <= now {
            return Dispatch::Idle;
        }
        self.stalled_until = Some(until);
        if self.in_service.is_some() {
            // complete() will gate the next dispatch.
            Dispatch::Idle
        } else {
            Dispatch::Anticipating(until)
        }
    }

    /// Dispatch, unless a stall is in force — in which case report when
    /// the stall lifts so the caller can re-check then.
    fn gated_dispatch(&mut self, now: SimTime) -> Dispatch {
        if let Some(until) = self.stalled_until {
            if now < until {
                return Dispatch::Anticipating(until);
            }
            self.stalled_until = None;
        }
        match self.dispatch(now) {
            Some(d) => Dispatch::Started(d),
            None => Dispatch::Idle,
        }
    }

    fn advance_depth_integral(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_depth_change).as_nanos();
        self.counters.weighted_depth_ns += self.counters.queued_now * dt;
        self.last_depth_change = now;
    }

    fn try_merge(&mut self, new: QueuedReq) -> bool {
        let queue = if new.foreground {
            &mut self.fg
        } else {
            &mut self.bg
        };
        let scan = self.cfg.merge_scan_depth.min(queue.len());
        let start = queue.len() - scan;
        for i in (start..queue.len()).rev() {
            let q = &queue[i];
            if q.kind != new.kind {
                continue;
            }
            if q.sectors + new.sectors > self.cfg.max_merge_sectors {
                continue;
            }
            let back = q.sector + q.sectors == new.sector;
            let front = new.sector + new.sectors == q.sector;
            if back || front {
                let q = &mut queue[i];
                if front {
                    q.sector = new.sector;
                }
                q.sectors += new.sectors;
                // O(1) list concatenation in the member arena.
                self.members[q.tail as usize].next = new.head;
                q.tail = new.tail;
                q.nmembers += new.nmembers;
                match q.kind {
                    ReqKind::Read => self.counters.read_merges += 1,
                    ReqKind::Write => self.counters.write_merges += 1,
                }
                return true;
            }
        }
        false
    }

    /// Submit a request. If the disk was idle (and not anticipating, or
    /// the request is synchronous) it starts servicing immediately:
    /// [`Dispatch::Started`] tells the caller to schedule a completion
    /// event that far in the future and later call
    /// [`BlockDevice::complete`].
    pub fn submit(
        &mut self,
        now: SimTime,
        kind: ReqKind,
        sector: u64,
        sectors: u64,
        foreground: bool,
        tag: T,
    ) -> Dispatch {
        debug_assert!(sectors > 0, "zero-length block request");
        self.advance_depth_integral(now);
        self.counters.enqueued += 1;
        self.counters.queued_now += 1;
        self.depth_stats.push(self.counters.queued_now as f64);
        let member = self.alloc_member(tag, now, sectors);
        let req = QueuedReq {
            kind,
            sector,
            sectors,
            foreground,
            head: member,
            tail: member,
            nmembers: 1,
        };
        if !self.try_merge(req) {
            if foreground {
                self.fg.push_back(req);
            } else {
                self.bg.push_back(req);
            }
        }
        if self.in_service.is_some() {
            return Dispatch::Idle;
        }
        if foreground {
            // A synchronous arrival ends any anticipation immediately.
            self.anticipate_until = None;
            self.gated_dispatch(now)
        } else if let Some(until) = self.anticipate_until {
            if now >= until {
                self.anticipate_until = None;
                self.gated_dispatch(now)
            } else {
                Dispatch::Anticipating(until)
            }
        } else {
            self.gated_dispatch(now)
        }
    }

    /// Re-examine the queue after an anticipation window. If the device
    /// is still idle with only background work pending and the window
    /// has passed, background work starts.
    pub fn idle_check(&mut self, now: SimTime) -> Dispatch {
        if self.in_service.is_some() {
            return Dispatch::Idle;
        }
        if let Some(until) = self.anticipate_until {
            if now < until {
                return Dispatch::Anticipating(until);
            }
            self.anticipate_until = None;
        }
        self.gated_dispatch(now)
    }

    /// Pick the next background request C-SCAN style: the nearest
    /// request at or above the disk head, wrapping to the lowest sector.
    /// This is the elevator ordering that keeps scattered small
    /// writeback from degrading into one seek per request.
    fn pick_bg(&mut self) -> Option<QueuedReq> {
        let head = self.disk.head();
        let mut best: Option<(usize, u64, bool)> = None; // (idx, key, above)
        for (i, r) in self.bg.iter().enumerate() {
            let above = r.sector >= head;
            let key = if above { r.sector - head } else { r.sector };
            let better = match best {
                None => true,
                Some((_, bkey, babove)) => (above && !babove) || (above == babove && key < bkey),
            };
            if better {
                best = Some((i, key, above));
            }
        }
        let (idx, _, _) = best?;
        let mut req = self.bg.remove(idx)?;
        // Dispatch-time merging: absorb any queued background requests
        // that are now sector-adjacent (allocations often become dense
        // only after out-of-order arrivals settle).
        loop {
            let mut merged_any = false;
            let mut i = 0;
            while i < self.bg.len() {
                let q = &self.bg[i];
                if q.kind == req.kind
                    && req.sectors + q.sectors <= self.cfg.max_merge_sectors
                    && (req.sector + req.sectors == q.sector || q.sector + q.sectors == req.sector)
                {
                    let q = self.bg.remove(i).expect("index in range");
                    if q.sector + q.sectors == req.sector {
                        req.sector = q.sector;
                    }
                    req.sectors += q.sectors;
                    self.members[req.tail as usize].next = q.head;
                    req.tail = q.tail;
                    req.nmembers += q.nmembers;
                    match req.kind {
                        ReqKind::Read => self.counters.read_merges += 1,
                        ReqKind::Write => self.counters.write_merges += 1,
                    }
                    merged_any = true;
                } else {
                    i += 1;
                }
            }
            if !merged_any {
                break;
            }
        }
        Some(req)
    }

    /// Pick the next request per the deadline-like policy and start the
    /// disk on it. Returns its service duration.
    fn dispatch(&mut self, _now: SimTime) -> Option<SimDuration> {
        debug_assert!(self.in_service.is_none());
        let take_fg = if self.fg.is_empty() {
            false
        } else if self.bg.is_empty() {
            true
        } else {
            self.fg_since_bg < self.cfg.writes_starved
        };
        let req = if take_fg {
            self.fg_since_bg += 1;
            self.fg.pop_front()
        } else {
            if !self.bg.is_empty() {
                self.fg_since_bg = 0;
            }
            self.pick_bg().or_else(|| self.fg.pop_front())
        }?;
        self.seek_stats
            .push(req.sector.abs_diff(self.disk.head()) as f64);
        let dur = self.disk.service(req.sector, req.sectors);
        self.in_service = Some(req);
        Some(dur)
    }

    /// Finish the in-service request, draining its members (in merge
    /// order) into `out` — which is cleared first — and recycling their
    /// arena slots. Returns the completion metadata and what the device
    /// does next: start another request, anticipate a synchronous
    /// arrival, or go idle. The event loop calls this with one reused
    /// scratch buffer, so steady-state completion allocates nothing.
    pub fn complete_into(
        &mut self,
        now: SimTime,
        out: &mut Vec<Member<T>>,
    ) -> (CompletedMeta, Dispatch) {
        out.clear();
        self.advance_depth_integral(now);
        let req = self.in_service.take().expect("complete() with idle disk");
        self.counters.queued_now -= req.nmembers as u64;
        // Drain the member list into `out`, pushing freed slots onto the
        // free list as we go.
        let mut idx = req.head;
        while idx != NIL {
            let n = &mut self.members[idx as usize];
            let next = n.next;
            out.push(Member {
                tag: n.tag.take().expect("live member"),
                arrival: n.arrival,
                sectors: n.sectors,
            });
            self.counters.wait_ns += now.saturating_since(n.arrival).as_nanos();
            n.next = self.free;
            self.free = idx;
            idx = next;
        }
        debug_assert_eq!(out.len(), req.nmembers as usize);
        match req.kind {
            ReqKind::Read => {
                self.counters.reads_completed += req.nmembers as u64;
                self.counters.sectors_read += req.sectors;
            }
            ReqKind::Write => {
                self.counters.writes_completed += req.nmembers as u64;
                self.counters.sectors_written += req.sectors;
            }
        }
        let meta = CompletedMeta {
            kind: req.kind,
            sectors: req.sectors,
            foreground: req.foreground,
        };
        // Anticipation: a synchronous request just finished, nothing
        // synchronous is queued, and background work is waiting — hold
        // the disk briefly for the next synchronous request. An injected
        // stall takes precedence over anticipation.
        let next = if self.stalled_until.is_some() {
            self.gated_dispatch(now)
        } else if meta.foreground
            && self.fg.is_empty()
            && !self.bg.is_empty()
            && self.cfg.idle_wait > SimDuration::ZERO
        {
            let until = now + self.cfg.idle_wait;
            self.anticipate_until = Some(until);
            Dispatch::Anticipating(until)
        } else {
            self.gated_dispatch(now)
        };
        (meta, next)
    }

    /// [`complete_into`](BlockDevice::complete_into) with a freshly
    /// allocated member buffer — the convenient form for tests and
    /// one-shot callers.
    pub fn complete(&mut self, now: SimTime) -> (Completed<T>, Dispatch) {
        let mut members = Vec::new();
        let (meta, next) = self.complete_into(now, &mut members);
        (
            Completed {
                kind: meta.kind,
                sectors: meta.sectors,
                foreground: meta.foreground,
                members,
            },
            next,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskConfig;

    fn dev() -> BlockDevice<u32> {
        BlockDevice::new(
            QueueConfig::default(),
            Disk::new(DiskConfig::sata_7200_ost()),
        )
    }

    #[test]
    fn idle_submit_starts_service() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d.submit(t0, ReqKind::Read, 0, 128, true, 1).started();
        assert!(dur.is_some());
        assert!(d.busy());
        let (done, next) = d.complete(t0 + dur.unwrap());
        assert_eq!(done.members.len(), 1);
        assert_eq!(done.kind, ReqKind::Read);
        assert!(next.is_idle());
        assert!(!d.busy());
    }

    #[test]
    fn adjacent_requests_merge() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        // First request goes into service; queue the next three adjacent.
        let dur = d
            .submit(t0, ReqKind::Write, 0, 8, true, 0)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Write, 1000, 8, true, 1).is_idle());
        assert!(d.submit(t0, ReqKind::Write, 1008, 8, true, 2).is_idle());
        assert!(d.submit(t0, ReqKind::Write, 1016, 8, true, 3).is_idle());
        let c = d.counters(t0);
        assert_eq!(c.write_merges, 2);
        let (first, next) = d.complete(t0 + dur);
        assert_eq!(first.members.len(), 1);
        let (merged, next2) = d.complete(t0 + dur + next.started().unwrap());
        assert_eq!(merged.members.len(), 3);
        assert_eq!(merged.sectors, 24);
        assert!(next2.is_idle());
    }

    #[test]
    fn front_merge_extends_downward() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let _ = d
            .submit(t0, ReqKind::Read, 0, 8, true, 0)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Read, 1008, 8, true, 1).is_idle());
        // Front-merge: new request ends where the queued one starts.
        assert!(d.submit(t0, ReqKind::Read, 1000, 8, true, 2).is_idle());
        assert_eq!(d.counters(t0).read_merges, 1);
    }

    #[test]
    fn different_kinds_do_not_merge() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let _ = d
            .submit(t0, ReqKind::Read, 0, 8, true, 0)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Read, 1000, 8, true, 1).is_idle());
        assert!(d.submit(t0, ReqKind::Write, 1008, 8, true, 2).is_idle());
        let c = d.counters(t0);
        assert_eq!(c.read_merges + c.write_merges, 0);
    }

    #[test]
    fn reads_preempt_background_writes() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Write, 0, 8, false, 100)
            .started()
            .unwrap();
        // Queue a background write and a foreground read while busy.
        assert!(d.submit(t0, ReqKind::Write, 5000, 8, false, 101).is_idle());
        assert!(d.submit(t0, ReqKind::Read, 90_000, 8, true, 102).is_idle());
        let (_, next) = d.complete(t0 + dur);
        let t1 = t0 + dur + next.started().unwrap();
        let (second, _) = d.complete(t1);
        // The read jumped ahead of the queued background write.
        assert_eq!(second.kind, ReqKind::Read);
        assert_eq!(second.members[0].tag, 102);
    }

    #[test]
    fn writes_starved_cap_forces_background_through() {
        let cfg = QueueConfig {
            writes_starved: 2,
            ..QueueConfig::default()
        };
        let mut d: BlockDevice<u32> = BlockDevice::new(cfg, Disk::new(DiskConfig::sata_7200_ost()));
        let t0 = SimTime::ZERO;
        let mut t = t0;
        let mut dur = d
            .submit(t, ReqKind::Write, 0, 8, false, 0)
            .started()
            .unwrap();
        // One background write queued, plus a steady stream of reads.
        assert!(d.submit(t, ReqKind::Write, 10_000, 8, false, 1).is_idle());
        for i in 0..6 {
            assert!(d
                .submit(
                    t,
                    ReqKind::Read,
                    1_000_000 + i * 5000,
                    8,
                    true,
                    10 + i as u32
                )
                .is_idle());
        }
        let mut order = Vec::new();
        loop {
            t += dur;
            let (done, next) = d.complete(t);
            order.push((done.kind, done.foreground));
            match next {
                Dispatch::Started(nd) => dur = nd,
                Dispatch::Anticipating(at) => match d.idle_check(at) {
                    Dispatch::Started(nd) => {
                        t = at;
                        dur = nd;
                    }
                    _ => break,
                },
                Dispatch::Idle => break,
            }
        }
        // After two foreground dispatches, the background write must run
        // even though reads are still queued.
        let pos = order
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, &(k, f))| k == ReqKind::Write && !f)
            .map(|(i, _)| i)
            .expect("queued background write never completed");
        assert!(pos <= 3, "background write starved: order {order:?}");
    }

    #[test]
    fn anticipation_defers_background_after_sync_read() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Read, 0, 8, true, 1)
            .started()
            .unwrap();
        // Background work arrives while the read is in flight.
        assert!(d.submit(t0, ReqKind::Write, 9000, 8, false, 2).is_idle());
        let t1 = t0 + dur;
        let (_, next) = d.complete(t1);
        // The device must anticipate, not start the background write.
        let until = match next {
            Dispatch::Anticipating(u) => u,
            other => panic!("expected anticipation, got {other:?}"),
        };
        assert_eq!(until, t1 + QueueConfig::default().idle_wait);
        assert!(!d.busy());
        // A synchronous read arriving inside the window runs immediately.
        let t2 = SimTime(t1.as_nanos() + 1_000_000);
        let dur2 = d.submit(t2, ReqKind::Read, 20_000, 8, true, 3).started();
        assert!(dur2.is_some(), "sync arrival must cancel anticipation");
        // Stale idle check while busy does nothing.
        assert!(d.idle_check(until).is_idle());
    }

    #[test]
    fn idle_check_starts_background_after_window() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Read, 0, 8, true, 1)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Write, 9000, 8, false, 2).is_idle());
        let t1 = t0 + dur;
        let until = match d.complete(t1).1 {
            Dispatch::Anticipating(u) => u,
            other => panic!("expected anticipation, got {other:?}"),
        };
        // Background submits during the window stay deferred.
        match d.submit(t1, ReqKind::Write, 30_000, 8, false, 3) {
            Dispatch::Anticipating(u) => assert_eq!(u, until),
            other => panic!("expected deferred background, got {other:?}"),
        }
        // After the window the idle check starts background work.
        let started = d.idle_check(until).started();
        assert!(started.is_some());
        let (done, _) = d.complete(until + started.unwrap());
        assert_eq!(done.kind, ReqKind::Write);
        assert!(!done.foreground);
    }

    #[test]
    fn pure_background_writer_never_anticipates() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Write, 0, 8, false, 1)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Write, 9000, 8, false, 2).is_idle());
        let (_, next) = d.complete(t0 + dur);
        // No foreground history: flush continues immediately.
        assert!(next.started().is_some());
    }

    #[test]
    fn counters_track_waits_and_depth() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Read, 0, 8, true, 0)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Read, 500_000, 8, true, 1).is_idle());
        assert_eq!(d.counters(t0).queued_now, 2);
        let t1 = t0 + dur;
        let (_, next) = d.complete(t1);
        let c = d.counters(t1);
        assert_eq!(c.reads_completed, 1);
        assert_eq!(c.sectors_read, 8);
        assert_eq!(c.wait_ns, dur.as_nanos());
        assert_eq!(c.queued_now, 1);
        // Depth integral: two members queued for `dur`.
        assert_eq!(c.weighted_depth_ns, 2 * dur.as_nanos());
        let t2 = t1 + next.started().unwrap();
        let (_, last) = d.complete(t2);
        assert!(last.is_idle());
        let c = d.counters(t2);
        assert_eq!(c.reads_completed, 2);
        assert_eq!(c.queued_now, 0);
    }

    #[test]
    #[should_panic(expected = "complete() with idle disk")]
    fn completing_idle_device_panics() {
        let mut d = dev();
        d.complete(SimTime::ZERO);
    }

    #[test]
    fn stall_defers_dispatch_until_lifted() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let until = t0 + SimDuration::from_millis(10);
        // Idle device: stall asks for an idle check when it lifts.
        assert_eq!(d.stall(t0, until), Dispatch::Anticipating(until));
        // A synchronous submit during the stall does not start service.
        match d.submit(t0, ReqKind::Read, 0, 8, true, 1) {
            Dispatch::Anticipating(u) => assert_eq!(u, until),
            other => panic!("expected stalled dispatch, got {other:?}"),
        }
        assert!(!d.busy());
        // The idle check at stall end starts the queued read.
        let started = d.idle_check(until).started();
        assert!(started.is_some(), "stall must lift at `until`");
        assert!(d.busy());
    }

    #[test]
    fn stall_lets_in_flight_request_finish() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let dur = d
            .submit(t0, ReqKind::Read, 0, 8, true, 1)
            .started()
            .unwrap();
        assert!(d.submit(t0, ReqKind::Read, 50_000, 8, true, 2).is_idle());
        let until = t0 + dur + SimDuration::from_millis(5);
        // Stall while busy: nothing to do now; complete() gates later.
        assert_eq!(d.stall(t0, until), Dispatch::Idle);
        let (done, next) = d.complete(t0 + dur);
        assert_eq!(done.members[0].tag, 1);
        // The queued read must wait for the stall, not start.
        assert_eq!(next, Dispatch::Anticipating(until));
        assert!(d.idle_check(until).started().is_some());
    }

    #[test]
    fn expired_stall_is_a_no_op() {
        let mut d = dev();
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(d.stall(now, now), Dispatch::Idle);
        assert!(d
            .submit(now, ReqKind::Read, 0, 8, true, 1)
            .started()
            .is_some());
    }
}
