//! Generation-versioned slab for in-flight simulator state.
//!
//! The hot path used to key in-flight chunk reads and RPC retry state by
//! monotonically increasing `u64` counters in `HashMap`s — one hash +
//! allocation per op, and a hash probe on every completion and timer
//! event. [`Slab`] replaces that with index-based routing: `insert`
//! returns a compact [`SlabKey`] (slot index + generation), lookups are
//! a bounds-checked array access, and freed slots are recycled through a
//! free list so steady-state simulation does no allocation at all.
//!
//! The generation tag is what makes recycling safe under *stale events*:
//! a timer event (say `RpcTimeout{key}`) scheduled for an op that has
//! since completed — and whose slot has been reused — carries the old
//! generation, so `get`/`remove` miss instead of touching the new
//! occupant. This is exactly the semantics the old counter-keyed
//! `HashMap` gave (a dead key simply isn't found), with the churn gone.

/// Key into a [`Slab`]: slot index in the low 32 bits, generation in the
/// high 32. `Display`s as `gen:idx` for debug traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey(u64);

impl SlabKey {
    /// Slot index within the slab.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// Generation the slot had when this key was issued.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw packed value (stable across a run; used in traces).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    #[inline]
    fn pack(index: u32, generation: u32) -> Self {
        SlabKey(((generation as u64) << 32) | index as u64)
    }
}

impl std::fmt::Display for SlabKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.generation(), self.index())
    }
}

enum Slot<T> {
    /// Value of the free-list link: the next free slot, or `u32::MAX`.
    Vacant(u32),
    Occupied(T),
}

const FREE_NIL: u32 = u32::MAX;

/// A slab allocator with generation-versioned keys. See the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Per-slot generation, bumped on each removal.
    generations: Vec<u32>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Empty slab.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Empty slab pre-sized for `capacity` concurrent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            generations: Vec::with_capacity(capacity),
            free_head: FREE_NIL,
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value, returning its key. O(1); allocates only when no
    /// freed slot is available.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if self.free_head != FREE_NIL {
            let idx = self.free_head;
            match self.slots[idx as usize] {
                Slot::Vacant(next) => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free list points at a live slot"),
            }
            self.slots[idx as usize] = Slot::Occupied(value);
            SlabKey::pack(idx, self.generations[idx as usize])
        } else {
            let idx = self.slots.len();
            assert!(idx < FREE_NIL as usize, "slab slot limit exceeded");
            self.slots.push(Slot::Occupied(value));
            self.generations.push(0);
            SlabKey::pack(idx as u32, 0)
        }
    }

    /// Look up a live entry. Returns `None` for keys whose entry was
    /// removed, even if the slot has been reused since (stale events).
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let idx = key.index() as usize;
        match self.slots.get(idx) {
            Some(Slot::Occupied(v)) if self.generations[idx] == key.generation() => Some(v),
            _ => None,
        }
    }

    /// Mutable lookup with the same staleness semantics as [`get`].
    ///
    /// [`get`]: Slab::get
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        let idx = key.index() as usize;
        match self.slots.get_mut(idx) {
            Some(Slot::Occupied(v)) if self.generations[idx] == key.generation() => Some(v),
            _ => None,
        }
    }

    /// Remove and return an entry; `None` if the key is stale. The slot
    /// is recycled and its generation bumped so outstanding copies of
    /// this key can never alias the next occupant.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let idx = key.index() as usize;
        match self.slots.get(idx) {
            Some(Slot::Occupied(_)) if self.generations[idx] == key.generation() => {
                let old = std::mem::replace(&mut self.slots[idx], Slot::Vacant(self.free_head));
                self.free_head = key.index();
                self.generations[idx] = self.generations[idx].wrapping_add(1);
                self.len -= 1;
                match old {
                    Slot::Occupied(v) => Some(v),
                    Slot::Vacant(_) => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// True when `key` still addresses a live entry.
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over live entries (slot order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| match slot {
                Slot::Occupied(v) => Some((SlabKey::pack(i as u32, self.generations[i]), v)),
                Slot::Vacant(_) => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_keys_miss_after_slot_reuse() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        // Same slot, new generation: the stale key must not see the
        // new occupant through get, get_mut, remove, or contains.
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        assert_eq!(s.get(a), None);
        assert_eq!(s.get_mut(a), None);
        assert!(!s.contains(a));
        assert_eq!(s.remove(a), None);
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn slots_recycle_lifo_without_growth() {
        let mut s = Slab::with_capacity(4);
        let keys: Vec<_> = (0..4).map(|i| s.insert(i)).collect();
        for &k in &keys {
            s.remove(k);
        }
        for i in 0..4 {
            let k = s.insert(100 + i);
            assert!((k.index() as usize) < 4, "grew past recycled slots");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(vec![1, 2]);
        s.get_mut(k).unwrap().push(3);
        assert_eq!(s.get(k), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn iter_visits_only_live_entries() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let _b = s.insert("b");
        let c = s.insert("c");
        s.remove(a);
        let mut live: Vec<&str> = s.iter().map(|(_, v)| *v).collect();
        live.sort_unstable();
        assert_eq!(live, vec!["b", "c"]);
        assert!(s.contains(c));
    }

    #[test]
    fn keys_display_as_gen_idx() {
        let mut s = Slab::new();
        let a = s.insert(());
        s.remove(a);
        let b = s.insert(());
        assert_eq!(a.to_string(), "0:0");
        assert_eq!(b.to_string(), "1:0");
        assert_eq!(b.raw(), 1 << 32);
    }
}
