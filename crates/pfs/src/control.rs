//! The typed control plane: directives a mitigation controller applies
//! to a running cluster, and the hook the cluster calls at each control
//! tick.
//!
//! A [`ClusterController`] is installed on a [`Cluster`] before the run
//! starts ([`Cluster::install_controller`]) and is invoked once per
//! control interval, 1 ns *after* each window boundary — strictly after
//! every event of the closed window, so the controller observes exactly
//! the window content a batch pipeline would. It answers with
//! [`ControlDirective`]s, which the cluster applies through one typed
//! entry point ([`Cluster::apply_directive`]) driving three actuator
//! families: server-side token-bucket QoS throttling, per-(app, OST)
//! admission / queue-depth caps, and stripe re-targeting away from
//! avoided OSTs. Every applied directive is recorded in
//! [`RunTrace::directives`], so a finished trace replays the full
//! decision sequence.
//!
//! [`Cluster`]: crate::cluster::Cluster
//! [`Cluster::install_controller`]: crate::cluster::Cluster::install_controller
//! [`Cluster::apply_directive`]: crate::cluster::Cluster::apply_directive
//! [`RunTrace::directives`]: crate::ops::RunTrace::directives

use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::MetricsSnapshot;

use crate::ids::{AppId, DeviceId};
use crate::ops::RunTrace;

/// One typed mitigation action. Engage directives (`RateLimit`,
/// `CapInflight`, `AvoidOsts`) install an actuator; each has a matching
/// clear directive that restores the default behaviour.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlDirective {
    /// Install a server-side token-bucket filter for `app`'s data RPCs
    /// (bytes of payload per second, burst of one second's worth) — the
    /// classful TBF NRS policy.
    RateLimit {
        /// Application to throttle.
        app: AppId,
        /// Admitted payload bytes per second; must be finite and > 0.
        bytes_per_sec: f64,
    },
    /// Remove `app`'s token-bucket filter.
    ClearRateLimit {
        /// Application to release.
        app: AppId,
    },
    /// Cap the number of `app`'s data RPCs concurrently past admission
    /// on any single OST; the excess queues FIFO per (app, OST).
    CapInflight {
        /// Application to cap.
        app: AppId,
        /// Maximum concurrent admitted RPCs per OST; must be ≥ 1.
        max_inflight: u32,
    },
    /// Remove `app`'s admission cap, draining its parked RPCs.
    ClearCapInflight {
        /// Application to release.
        app: AppId,
    },
    /// Steer *newly created* file layouts away from these OSTs
    /// (predicted-hot servers). Replaces any previous avoidance set;
    /// existing layouts are untouched. At least one OST must remain.
    AvoidOsts {
        /// OSTs new layouts should skip.
        osts: Vec<DeviceId>,
    },
    /// Restore default (hash-round-robin over all OSTs) placement.
    ClearAvoidOsts,
}

impl ControlDirective {
    /// The application this directive targets, if it is per-app.
    pub fn app(&self) -> Option<AppId> {
        match self {
            ControlDirective::RateLimit { app, .. }
            | ControlDirective::ClearRateLimit { app }
            | ControlDirective::CapInflight { app, .. }
            | ControlDirective::ClearCapInflight { app } => Some(*app),
            ControlDirective::AvoidOsts { .. } | ControlDirective::ClearAvoidOsts => None,
        }
    }

    /// True for directives that install an actuator (vs. clear one).
    pub fn is_engage(&self) -> bool {
        matches!(
            self,
            ControlDirective::RateLimit { .. }
                | ControlDirective::CapInflight { .. }
                | ControlDirective::AvoidOsts { .. }
        )
    }

    /// Short stable label for telemetry keys and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ControlDirective::RateLimit { .. } => "rate_limit",
            ControlDirective::ClearRateLimit { .. } => "clear_rate_limit",
            ControlDirective::CapInflight { .. } => "cap_inflight",
            ControlDirective::ClearCapInflight { .. } => "clear_cap_inflight",
            ControlDirective::AvoidOsts { .. } => "avoid_osts",
            ControlDirective::ClearAvoidOsts => "clear_avoid_osts",
        }
    }
}

/// One applied directive, as recorded in [`RunTrace::directives`]: what
/// was done, at which simulated instant, closing which window.
///
/// [`RunTrace::directives`]: crate::ops::RunTrace::directives
#[derive(Clone, Debug, PartialEq)]
pub struct DirectiveRecord {
    /// Simulated time the directive took effect (window close + 1 ns).
    pub at: SimTime,
    /// Index of the window whose close triggered it.
    pub window: u64,
    /// The directive itself.
    pub directive: ControlDirective,
}

/// The hook a mitigation controller implements. Installed via
/// [`Cluster::install_controller`]; called once per [`interval`], 1 ns
/// after each window boundary, with the run's trace so far.
///
/// Implementations must be deterministic functions of their inputs (the
/// trace and their own state): the cluster's replay-determinism
/// guarantee extends to controlled runs only if the controller holds no
/// wall-clock or ambient randomness.
///
/// [`Cluster::install_controller`]: crate::cluster::Cluster::install_controller
/// [`interval`]: ClusterController::interval
pub trait ClusterController: Send {
    /// Control interval (typically the feature window length). Must be
    /// non-zero; sampled once at install time.
    fn interval(&self) -> SimDuration;

    /// One control tick: window `window` just closed at `now - 1 ns`.
    /// Push the directives to apply into `out` (applied in order;
    /// invalid ones are counted as rejected, not fatal).
    fn on_window(
        &mut self,
        now: SimTime,
        window: u64,
        trace: &RunTrace,
        out: &mut Vec<ControlDirective>,
    );

    /// Fold the controller's own metrics into the run snapshot (called
    /// once when the run ends). Default: nothing.
    fn metrics_into(&self, snap: &mut MetricsSnapshot) {
        let _ = snap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_introspection() {
        let d = ControlDirective::RateLimit {
            app: AppId(3),
            bytes_per_sec: 1e6,
        };
        assert_eq!(d.app(), Some(AppId(3)));
        assert!(d.is_engage());
        assert_eq!(d.label(), "rate_limit");
        let c = ControlDirective::ClearCapInflight { app: AppId(3) };
        assert!(!c.is_engage());
        assert_eq!(c.app(), Some(AppId(3)));
        let a = ControlDirective::AvoidOsts {
            osts: vec![DeviceId(0)],
        };
        assert_eq!(a.app(), None);
        assert!(a.is_engage());
        assert!(!ControlDirective::ClearAvoidOsts.is_engage());
        assert_eq!(ControlDirective::ClearAvoidOsts.label(), "clear_avoid_osts");
    }
}
