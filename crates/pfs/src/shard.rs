//! One server shard: the OSS/OST slice of the cluster that can run on
//! its own event queue.
//!
//! The simulator partitions its object servers into contiguous shards
//! (see `ClusterConfig::sim_shards`). Each [`ShardState`] owns the
//! devices, extent maps, caches, CPU clocks, admission tables, and
//! telemetry registry of its OSS range — state no other shard (and no
//! realm-side handler) ever touches. All effects a handler produces go
//! through [`Fx`]: event scheduling lands on whichever queue drives the
//! shard (the global queue in the classic sequential loop, the shard's
//! private queue under the parallel driver), and network sends either
//! hit the shared [`Network`] directly (sequential) or are deferred as
//! [`SendIntent`]s for the epoch barrier to apply in canonical order
//! (parallel). The handler bodies themselves are mode-oblivious, which
//! is what keeps every shard count bit-identical.

use std::collections::{BTreeMap, VecDeque};

use qi_simkit::event::EventQueue;
use qi_simkit::rng::SimRng;
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricId, Registry};

use crate::arena::{Slab, SlabKey};
use crate::cache::{Admit, SmallObjectCache, WriteCache};
use crate::config::{ClusterConfig, StripeConfig, SECTOR_SIZE};
use crate::disk::Disk;
use crate::ids::{DeviceId, DirKey, FileKey, NodeId, OpToken};
use crate::layout::{ExtentMap, ObjKey, SectorRange};
use crate::net::Network;
use crate::ops::ServerSample;
use crate::queue::{BlockDevice, Dispatch, Member, ReqKind};

/// Completion payload attached to device block requests.
pub(crate) enum DiskTag {
    /// Foreground read belonging to a client read chunk.
    ReadChunk { chunk: SlabKey },
    /// Background flush of dirty cache data (payload-byte share).
    Flush { dirty_bytes: u64 },
    /// Synchronous write belonging to a client write chunk.
    SyncChunk { chunk: SlabKey },
    /// MDT journal write completing a namespace mutation.
    Journal {
        token: OpToken,
        client: NodeId,
        dir: DirKey,
    },
    /// MDT inode read completing a lookup miss.
    Lookup {
        token: OpToken,
        client: NodeId,
        file: FileKey,
    },
}

/// A write waiting in (or moving through) an OSS cache.
pub(crate) struct PendingWrite {
    pub(crate) token: OpToken,
    pub(crate) client: NodeId,
    pub(crate) dev: DeviceId,
    pub(crate) obj: ObjKey,
    pub(crate) obj_off: u64,
    pub(crate) len: u64,
}

/// In-flight chunk bookkeeping (reads and sync writes).
pub(crate) struct ChunkPending {
    pub(crate) remaining: u32,
    pub(crate) token: OpToken,
    pub(crate) client: NodeId,
    pub(crate) dev: DeviceId,
    pub(crate) reply_bytes: u64,
    /// Object touched, with the end offset of the access (for read-cache
    /// residency updates on completion). `None` for sync writes.
    pub(crate) touched: Option<(ObjKey, u64)>,
}

/// Messages travelling the simulated network. Cloneable so the retry
/// layer can stash a copy of a dropped request for resending.
#[derive(Clone)]
pub(crate) enum Msg {
    ReadReq {
        dev: DeviceId,
        obj: ObjKey,
        obj_off: u64,
        len: u64,
        token: OpToken,
        client: NodeId,
    },
    WriteReq {
        dev: DeviceId,
        obj: ObjKey,
        obj_off: u64,
        len: u64,
        token: OpToken,
        client: NodeId,
    },
    MetaReq {
        op: MetaOp,
        token: OpToken,
        client: NodeId,
    },
    /// Any server→client completion (read reply, write ack, meta ack).
    OpDone { token: OpToken },
}

/// Metadata request payloads.
#[derive(Clone)]
pub(crate) enum MetaOp {
    /// open/stat: namespace lookup, maybe an MDT inode read.
    Lookup { file: FileKey },
    /// close: CPU only.
    Close,
    /// create/unlink/mkdir: directory lock + journal write. For create,
    /// the layout is registered at processing time.
    Mutate {
        create: Option<(FileKey, Option<StripeConfig>)>,
        dir: DirKey,
    },
}

/// Simulator events. One enum serves both the realm (clients/MDS/MDT)
/// queue and the per-shard queues; routing decides which queue an event
/// is scheduled on, not the type.
pub(crate) enum Ev {
    /// Ask a rank for its next step.
    RankNext { app: u32, rank: u32 },
    /// A network message arrives at its destination.
    Deliver(Msg),
    /// OSS CPU finished processing a data RPC.
    OssProcess(Msg),
    /// MDS CPU finished processing a metadata RPC.
    MdsProcess(Msg),
    /// A device finished its in-service block request.
    DiskDone { dev: u32 },
    /// A device's anticipation window expired; re-check its queue.
    DiskIdle { dev: u32 },
    /// Deferred server→client send (e.g. ack after cache absorb).
    SendLater {
        src: NodeId,
        dst: NodeId,
        payload: u64,
        token: OpToken,
    },
    /// A rate-limited data RPC cleared its token-bucket wait.
    TbfAdmitted(Msg),
    /// Directory-lock revocation finished; run the mutation's journal
    /// write under the lock.
    MdsLockRun {
        token: OpToken,
        client: NodeId,
        dir: DirKey,
    },
    /// Server-side monitor tick.
    Sample,
    /// Mitigation-controller tick (window close + 1 ns).
    Control,
    /// A scheduled fail-slow injection fires on a device.
    FailSlow { dev: u32, factor: f64 },
    /// A `DiskStall` fault begins: the device's queue freezes until the
    /// given instant.
    DiskStall { dev: u32, until: SimTime },
    /// An `OssThreadCrash` (or its restart) changes an OSS node's
    /// effective CPU cost multiplier.
    OssFactor { oss: u32, factor: f64 },
    /// A client's wait for a reply to a (dropped) request expired.
    RpcTimeout { seq: SlabKey },
    /// A client's retry backoff elapsed; resend the stored request.
    RpcResend { seq: SlabKey },
    /// Parallel driver only: an inflight-cap change for `app` took
    /// effect at this instant; re-admit parked RPCs under the new cap.
    /// (The sequential loop rechecks inline at directive time instead.)
    AdmissionRecheck { app: u32 },
}

/// A network send produced inside an epoch, to be applied at the next
/// barrier. Intents are applied in global timestamp order (stable ties:
/// realm first, then shards ascending) so the shared NIC clocks advance
/// exactly as the sequential loop would advance them.
pub(crate) struct SendIntent {
    pub(crate) at: SimTime,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) payload: u64,
    /// Extra fault-injected delivery delay (realm sends only).
    pub(crate) extra: SimDuration,
    /// `None` for a dropped request: the transfer occupies both NICs
    /// but nothing is delivered.
    pub(crate) msg: Option<Msg>,
}

/// How a handler's network sends are realised.
pub(crate) enum NetFx<'a> {
    /// Sequential loop: send immediately and schedule the delivery.
    Direct(&'a mut Network),
    /// Parallel epoch: defer to the barrier as a [`SendIntent`].
    Deferred(&'a mut Vec<SendIntent>),
}

/// Effect context a shard handler runs against: the event queue driving
/// it plus the network mode.
pub(crate) struct Fx<'a> {
    pub(crate) q: &'a mut EventQueue<Ev>,
    pub(crate) net: NetFx<'a>,
}

impl Fx<'_> {
    /// Send `msg` over the network (shards never consult link-fault
    /// rules: server→client replies always deliver).
    pub(crate) fn send(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload: u64, msg: Msg) {
        match &mut self.net {
            NetFx::Direct(net) => {
                let deliver = net.send(now, src, dst, payload);
                self.q.schedule(deliver, Ev::Deliver(msg));
            }
            NetFx::Deferred(out) => out.push(SendIntent {
                at: now,
                src,
                dst,
                payload,
                extra: SimDuration::ZERO,
                msg: Some(msg),
            }),
        }
    }

    /// Schedule a local (same-shard) event.
    pub(crate) fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.q.schedule(at, ev);
    }
}

/// Names of the shard-side telemetry counters, merged across shards via
/// [`Registry::merge`] and folded into the cluster snapshot.
pub(crate) const SHARD_DISK_STALLS: &str = "pfs.shard.disk_stalls";
pub(crate) const SHARD_PARKED: &str = "pfs.shard.control_parked";
pub(crate) const SHARD_RESUMED: &str = "pfs.shard.control_resumed";

/// All state owned by one server shard: a contiguous run of OSS nodes
/// and their OSTs.
pub(crate) struct ShardState {
    /// First global OST index this shard owns.
    pub(crate) ost_lo: u32,
    /// First global OSS index this shard owns.
    pub(crate) oss_lo: u32,
    /// OST block devices, local order = global order.
    pub(crate) devices: Vec<BlockDevice<DiskTag>>,
    pub(crate) extents: Vec<ExtentMap>,
    pub(crate) caches: Vec<WriteCache<PendingWrite>>,
    pub(crate) read_cache: Vec<SmallObjectCache>,
    pub(crate) oss_cpu_free: Vec<SimTime>,
    /// Per-OSS CPU cost multiplier (1.0 = healthy; `OssThreadCrash`
    /// raises it, restart resets it).
    pub(crate) oss_cpu_factor: Vec<f64>,
    /// In-flight read/sync-write chunks, keyed by slab index. Keys are
    /// shard-local and never observable outside the shard.
    pub(crate) chunk_pending: Slab<ChunkPending>,
    /// Replica of the cluster-level per-app inflight caps; the realm
    /// updates every shard's copy when a directive lands.
    pub(crate) inflight_caps: BTreeMap<u32, u32>,
    /// Admitted-RPC counts per (app, global OST); entries exist only
    /// while the app is capped. Ordered: drain order must be
    /// deterministic.
    pub(crate) adm_active: BTreeMap<(u32, u32), u32>,
    /// RPCs parked at admission, FIFO per (app, global OST).
    pub(crate) adm_waiting: BTreeMap<(u32, u32), VecDeque<Msg>>,
    /// Scratch buffers reused across events (no per-event allocation).
    pub(crate) scratch_ranges: Vec<SectorRange>,
    pub(crate) scratch_members: Vec<Member<DiskTag>>,
    /// Monitor samples taken inside the current epoch (parallel driver
    /// only); merged into the trace at the barrier in canonical order.
    pub(crate) sample_buf: Vec<ServerSample>,
    /// Shard-side telemetry, merged across shards at snapshot time.
    pub(crate) reg: Registry,
    pub(crate) m_disk_stalls: MetricId,
    pub(crate) m_parked: MetricId,
    pub(crate) m_resumed: MetricId,
    /// Reserved per-shard RNG substream. Server-side handlers are
    /// currently fully deterministic, but any future stochastic server
    /// model must draw from here — never from the realm streams — to
    /// keep shard counts bit-identical.
    #[allow(dead_code)]
    pub(crate) rng: SimRng,
}

impl ShardState {
    /// Build the shard owning OSS nodes `[oss_lo, oss_hi)`.
    pub(crate) fn new(
        cfg: &ClusterConfig,
        seed: u64,
        shard: u32,
        oss_lo: u32,
        oss_hi: u32,
    ) -> Self {
        let n_oss = (oss_hi - oss_lo) as usize;
        let n_local = n_oss * cfg.osts_per_oss as usize;
        let mut devices = Vec::with_capacity(n_local);
        let mut extents = Vec::with_capacity(n_local);
        let mut caches = Vec::with_capacity(n_local);
        let mut read_cache = Vec::with_capacity(n_local);
        for _ in 0..n_local {
            devices.push(BlockDevice::new(
                cfg.queue.clone(),
                Disk::new(cfg.ost_disk.clone()),
            ));
            extents.push(ExtentMap::new(cfg.ost_disk.capacity_sectors));
            caches.push(WriteCache::new(cfg.cache.clone()));
            read_cache.push(SmallObjectCache::new(
                cfg.cache.small_object_max,
                cfg.cache.read_cache_budget,
            ));
        }
        let mut reg = Registry::new();
        let m_disk_stalls = reg.counter(SHARD_DISK_STALLS);
        let m_parked = reg.counter(SHARD_PARKED);
        let m_resumed = reg.counter(SHARD_RESUMED);
        ShardState {
            ost_lo: oss_lo * cfg.osts_per_oss,
            oss_lo,
            devices,
            extents,
            caches,
            read_cache,
            oss_cpu_free: vec![SimTime::ZERO; n_oss],
            oss_cpu_factor: vec![1.0; n_oss],
            chunk_pending: Slab::with_capacity(64),
            inflight_caps: BTreeMap::new(),
            adm_active: BTreeMap::new(),
            adm_waiting: BTreeMap::new(),
            scratch_ranges: Vec::new(),
            scratch_members: Vec::new(),
            sample_buf: Vec::new(),
            reg,
            m_disk_stalls,
            m_parked,
            m_resumed,
            rng: SimRng::new(seed).substream(0x5AAD + shard as u64),
        }
    }

    /// Local slot of a global OST id.
    #[inline]
    fn li(&self, dev: u32) -> usize {
        debug_assert!(dev >= self.ost_lo);
        (dev - self.ost_lo) as usize
    }

    /// Node hosting a (this-shard) OST.
    #[inline]
    fn node_of(&self, cfg: &ClusterConfig, dev: DeviceId) -> NodeId {
        NodeId(cfg.client_nodes + dev.0 / cfg.osts_per_oss)
    }

    /// Handle one shard-owned event.
    pub(crate) fn handle(&mut self, now: SimTime, ev: Ev, cfg: &ClusterConfig, fx: &mut Fx) {
        match ev {
            // Parallel driver: data deliveries land pre-TBF-cleared.
            Ev::Deliver(msg) | Ev::TbfAdmitted(msg) => self.oss_admit(now, msg, cfg, fx),
            Ev::OssProcess(msg) => self.oss_process(now, msg, cfg, fx),
            Ev::DiskDone { dev } => self.disk_done(now, dev, cfg, fx),
            Ev::DiskIdle { dev } => {
                let li = self.li(dev);
                let d = self.devices[li].idle_check(now);
                self.dispatch(now, dev, d, fx);
            }
            Ev::SendLater {
                src,
                dst,
                payload,
                token,
            } => fx.send(now, src, dst, payload, Msg::OpDone { token }),
            Ev::Sample => {
                self.take_samples(now);
                fx.schedule(now + cfg.sample_interval, Ev::Sample);
            }
            Ev::FailSlow { dev, factor } => {
                let li = self.li(dev);
                self.devices[li].disk_mut().set_fail_slow(factor);
            }
            Ev::DiskStall { dev, until } => {
                self.reg.inc(self.m_disk_stalls);
                let li = self.li(dev);
                let d = self.devices[li].stall(now, until);
                self.dispatch(now, dev, d, fx);
            }
            Ev::OssFactor { oss, factor } => {
                self.oss_cpu_factor[(oss - self.oss_lo) as usize] = factor;
            }
            Ev::AdmissionRecheck { app } => self.admission_recheck(now, app, cfg, fx),
            _ => unreachable!("realm event routed to a shard"),
        }
    }

    fn dispatch(&mut self, now: SimTime, dev: u32, d: Dispatch, fx: &mut Fx) {
        match d {
            Dispatch::Started(dur) => fx.schedule(now + dur, Ev::DiskDone { dev }),
            Dispatch::Anticipating(at) => fx.schedule(at, Ev::DiskIdle { dev }),
            Dispatch::Idle => {}
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_block(
        &mut self,
        now: SimTime,
        dev: DeviceId,
        kind: ReqKind,
        sector: u64,
        sectors: u64,
        foreground: bool,
        tag: DiskTag,
        fx: &mut Fx,
    ) {
        let li = self.li(dev.0);
        let d = self.devices[li].submit(now, kind, sector, sectors, foreground, tag);
        self.dispatch(now, dev.0, d, fx);
    }

    /// Mark `obj` resident in `dev`'s page cache if, and only if, the
    /// whole object is small (residency is object-granular, so partially
    /// read large objects must never qualify).
    fn touch_small(&mut self, cfg: &ClusterConfig, dev: DeviceId, obj: ObjKey) {
        let li = self.li(dev.0);
        let bytes = self.extents[li].object_sectors(obj) * SECTOR_SIZE;
        if bytes > 0 && bytes <= cfg.cache.small_object_max {
            self.read_cache[li].touch(obj, bytes);
        }
    }

    /// Admit a data RPC to its OSS (post-TBF): if the issuing app has
    /// an inflight cap and the target OST is at it, park the RPC; else
    /// count it (capped apps only) and start the CPU stage.
    pub(crate) fn oss_admit(&mut self, now: SimTime, msg: Msg, cfg: &ClusterConfig, fx: &mut Fx) {
        if !self.inflight_caps.is_empty() {
            let (dev, app) = match &msg {
                Msg::ReadReq { dev, token, .. } | Msg::WriteReq { dev, token, .. } => {
                    (*dev, token.app)
                }
                _ => unreachable!("only data RPCs reach the OSS"),
            };
            if let Some(&cap) = self.inflight_caps.get(&app.0) {
                let key = (app.0, dev.0);
                let active = self.adm_active.entry(key).or_insert(0);
                if *active >= cap {
                    self.reg.inc(self.m_parked);
                    self.adm_waiting.entry(key).or_default().push_back(msg);
                    return;
                }
                *active += 1;
            }
        }
        self.oss_cpu_start(now, msg, cfg, fx);
    }

    /// Schedule an admitted data RPC onto its OSS node's CPU.
    fn oss_cpu_start(&mut self, now: SimTime, msg: Msg, cfg: &ClusterConfig, fx: &mut Fx) {
        let dev = match &msg {
            Msg::ReadReq { dev, .. } | Msg::WriteReq { dev, .. } => *dev,
            _ => unreachable!("only data RPCs reach the OSS"),
        };
        let oss = (dev.0 / cfg.osts_per_oss - self.oss_lo) as usize;
        let start = now.max(self.oss_cpu_free[oss]);
        // `OssThreadCrash`: fewer service threads → each RPC costs more
        // CPU time. Skip the f64 roundtrip entirely when healthy so the
        // event stream is bit-identical to pre-fault builds.
        let factor = self.oss_cpu_factor[oss];
        let cost = if factor != 1.0 {
            SimDuration::from_secs_f64(cfg.oss.cpu_per_rpc.as_secs_f64() * factor)
        } else {
            cfg.oss.cpu_per_rpc
        };
        let done = start + cost;
        self.oss_cpu_free[oss] = done;
        fx.schedule(done, Ev::OssProcess(msg));
    }

    fn oss_process(&mut self, now: SimTime, msg: Msg, cfg: &ClusterConfig, fx: &mut Fx) {
        match msg {
            Msg::ReadReq {
                dev,
                obj,
                obj_off,
                len,
                token,
                client,
            } => {
                // Server page cache: small resident objects never touch
                // the disk.
                let li = self.li(dev.0);
                if self.read_cache[li].contains(obj) {
                    let memcpy = SimDuration::from_secs_f64(len as f64 / cfg.cache.absorb_rate);
                    fx.schedule(
                        now + memcpy,
                        Ev::SendLater {
                            src: self.node_of(cfg, dev),
                            dst: client,
                            payload: len,
                            token,
                        },
                    );
                    self.admission_release(now, token.app.0, dev, cfg, fx);
                    return;
                }
                let mut ranges = std::mem::take(&mut self.scratch_ranges);
                ranges.clear();
                self.extents[li].map_into(obj, obj_off, len, &mut ranges);
                let chunk = self.chunk_pending.insert(ChunkPending {
                    remaining: ranges.len() as u32,
                    token,
                    client,
                    dev,
                    reply_bytes: len,
                    touched: Some((obj, obj_off + len)),
                });
                for r in ranges.drain(..) {
                    self.submit_block(
                        now,
                        dev,
                        ReqKind::Read,
                        r.sector,
                        r.sectors,
                        true,
                        DiskTag::ReadChunk { chunk },
                        fx,
                    );
                }
                self.scratch_ranges = ranges;
            }
            Msg::WriteReq {
                dev,
                obj,
                obj_off,
                len,
                token,
                client,
            } => {
                let li = self.li(dev.0);
                let pw = PendingWrite {
                    token,
                    client,
                    dev,
                    obj,
                    obj_off,
                    len,
                };
                match self.caches[li].admit(len, pw) {
                    Admit::Absorbed { absorb } => {
                        let pw = PendingWrite {
                            token,
                            client,
                            dev,
                            obj,
                            obj_off,
                            len,
                        };
                        self.touch_small(cfg, dev, obj);
                        self.start_flush(now, &pw, fx);
                        fx.schedule(
                            now + absorb,
                            Ev::SendLater {
                                src: self.node_of(cfg, dev),
                                dst: client,
                                payload: 0,
                                token,
                            },
                        );
                        self.admission_release(now, token.app.0, dev, cfg, fx);
                    }
                    Admit::Throttled => {} // released by a later flush
                    Admit::Sync => {
                        let mut ranges = std::mem::take(&mut self.scratch_ranges);
                        ranges.clear();
                        self.extents[li].map_into(obj, obj_off, len, &mut ranges);
                        let chunk = self.chunk_pending.insert(ChunkPending {
                            remaining: ranges.len() as u32,
                            token,
                            client,
                            dev,
                            reply_bytes: 0,
                            touched: None,
                        });
                        for r in ranges.drain(..) {
                            self.submit_block(
                                now,
                                dev,
                                ReqKind::Write,
                                r.sector,
                                r.sectors,
                                true,
                                DiskTag::SyncChunk { chunk },
                                fx,
                            );
                        }
                        self.scratch_ranges = ranges;
                    }
                }
            }
            _ => unreachable!("only data RPCs reach the OSS"),
        }
    }

    /// Submit background flush requests covering one absorbed write.
    fn start_flush(&mut self, now: SimTime, pw: &PendingWrite, fx: &mut Fx) {
        let li = self.li(pw.dev.0);
        let mut ranges = std::mem::take(&mut self.scratch_ranges);
        ranges.clear();
        self.extents[li].map_into(pw.obj, pw.obj_off, pw.len, &mut ranges);
        let mut remaining = pw.len;
        let n = ranges.len();
        for (i, r) in ranges.drain(..).enumerate() {
            let sector_bytes = r.sectors * SECTOR_SIZE;
            let share = if i + 1 == n {
                remaining
            } else {
                sector_bytes.min(remaining)
            };
            remaining -= share;
            self.submit_block(
                now,
                pw.dev,
                ReqKind::Write,
                r.sector,
                r.sectors,
                false,
                DiskTag::Flush { dirty_bytes: share },
                fx,
            );
        }
        self.scratch_ranges = ranges;
    }

    fn disk_done(&mut self, now: SimTime, dev: u32, cfg: &ClusterConfig, fx: &mut Fx) {
        let li = self.li(dev);
        let mut members = std::mem::take(&mut self.scratch_members);
        let (_meta, next) = self.devices[li].complete_into(now, &mut members);
        self.dispatch(now, dev, next, fx);
        let mut flushed_bytes = 0u64;
        for m in members.drain(..) {
            match m.tag {
                DiskTag::ReadChunk { chunk } | DiskTag::SyncChunk { chunk } => {
                    let finished = {
                        let p = self
                            .chunk_pending
                            .get_mut(chunk)
                            .expect("unknown chunk completion");
                        p.remaining -= 1;
                        p.remaining == 0
                    };
                    if finished {
                        let p = self.chunk_pending.remove(chunk).expect("chunk present");
                        if let Some((obj, _end)) = p.touched {
                            self.touch_small(cfg, p.dev, obj);
                        }
                        let src = self.node_of(cfg, p.dev);
                        fx.send(
                            now,
                            src,
                            p.client,
                            p.reply_bytes,
                            Msg::OpDone { token: p.token },
                        );
                        self.admission_release(now, p.token.app.0, p.dev, cfg, fx);
                    }
                }
                DiskTag::Flush { dirty_bytes } => flushed_bytes += dirty_bytes,
                DiskTag::Journal { .. } | DiskTag::Lookup { .. } => {
                    unreachable!("metadata completion on an OST")
                }
            }
        }
        self.scratch_members = members;
        if flushed_bytes > 0 {
            let released = self.caches[li].flushed(flushed_bytes);
            for r in released {
                let (token, client, d) = (r.tag.token, r.tag.client, r.tag.dev);
                self.start_flush(now, &r.tag, fx);
                fx.schedule(
                    now + r.absorb,
                    Ev::SendLater {
                        src: self.node_of(cfg, d),
                        dst: client,
                        payload: 0,
                        token,
                    },
                );
                self.admission_release(now, token.app.0, d, cfg, fx);
            }
        }
    }

    /// After a cap change for `app`: admit parked RPCs while the new cap
    /// (or its absence) leaves headroom, in ascending OST order then
    /// FIFO — deterministic regardless of park order across OSTs.
    pub(crate) fn admission_recheck(
        &mut self,
        now: SimTime,
        app: u32,
        cfg: &ClusterConfig,
        fx: &mut Fx,
    ) {
        if self.adm_waiting.is_empty() {
            return;
        }
        let cap = self.inflight_caps.get(&app).copied().unwrap_or(u32::MAX);
        let keys: Vec<(u32, u32)> = self
            .adm_waiting
            .range((app, 0)..=(app, u32::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            loop {
                let active = self.adm_active.get(&key).copied().unwrap_or(0);
                if active >= cap {
                    break;
                }
                let Some(msg) = self.adm_waiting.get_mut(&key).and_then(|q| q.pop_front()) else {
                    break;
                };
                *self.adm_active.entry(key).or_insert(0) += 1;
                self.reg.inc(self.m_resumed);
                self.oss_cpu_start(now, msg, cfg, fx);
            }
            if self.adm_waiting.get(&key).is_some_and(|q| q.is_empty()) {
                self.adm_waiting.remove(&key);
            }
        }
    }

    /// A capped data RPC finished its OSS/disk journey: free its
    /// admission slot and admit the next parked RPC if the cap allows.
    fn admission_release(
        &mut self,
        now: SimTime,
        app: u32,
        dev: DeviceId,
        cfg: &ClusterConfig,
        fx: &mut Fx,
    ) {
        if self.adm_active.is_empty() {
            return;
        }
        let key = (app, dev.0);
        let Some(active) = self.adm_active.get_mut(&key) else {
            return;
        };
        // An RPC admitted before the cap was (re)installed may release
        // against a fresh counter; saturate instead of underflowing.
        *active = active.saturating_sub(1);
        let cap = self.inflight_caps.get(&app).copied().unwrap_or(u32::MAX);
        if *active >= cap {
            return;
        }
        let Some(msg) = self.adm_waiting.get_mut(&key).and_then(|q| q.pop_front()) else {
            if *self.adm_active.get(&key).expect("entry present") == 0
                && !self.inflight_caps.contains_key(&app)
            {
                self.adm_active.remove(&key);
            }
            return;
        };
        *self.adm_active.get_mut(&key).expect("entry present") += 1;
        self.reg.inc(self.m_resumed);
        if self.adm_waiting.get(&key).is_some_and(|q| q.is_empty()) {
            self.adm_waiting.remove(&key);
        }
        self.oss_cpu_start(now, msg, cfg, fx);
    }

    /// Parallel driver: sample this shard's devices into the epoch
    /// buffer; the barrier merges buffers in (time, device) order.
    fn take_samples(&mut self, now: SimTime) {
        for (li, dev) in self.devices.iter().enumerate() {
            self.sample_buf.push(ServerSample {
                time: now,
                dev: DeviceId(self.ost_lo + li as u32),
                counters: dev.counters(now),
                dirty_bytes: self.caches[li].dirty(),
                throttled_now: self.caches[li].throttled_now() as u64,
            });
        }
    }
}

/// One shard plus its private event queue and deferred-send outbox: the
/// unit the parallel driver hands to a rayon worker for an epoch.
pub(crate) struct ShardCell {
    pub(crate) st: ShardState,
    pub(crate) q: EventQueue<Ev>,
    pub(crate) outbox: Vec<SendIntent>,
}

impl ShardCell {
    pub(crate) fn new(st: ShardState, q: EventQueue<Ev>) -> Self {
        ShardCell {
            st,
            q,
            outbox: Vec::new(),
        }
    }

    /// Run this shard's events through the end of the epoch (inclusive).
    /// All network sends land in the outbox for the barrier to apply.
    pub(crate) fn run_epoch(&mut self, until: SimTime, cfg: &ClusterConfig) {
        while let Some((now, ev)) = self.q.pop_until(until) {
            let mut fx = Fx {
                q: &mut self.q,
                net: NetFx::Deferred(&mut self.outbox),
            };
            self.st.handle(now, ev, cfg, &mut fx);
        }
    }
}
