//! Bounded, run-length-compressed storage for server monitor samples.
//!
//! `RunTrace.samples` historically was a plain `Vec<ServerSample>`: one
//! record per device per sampling tick, growing linearly with run length
//! whether or not anything happened. On long mostly-idle runs almost
//! every sample repeats the previous one for its device — cumulative
//! counters frozen, cache empty — which is exactly the redundancy
//! run-length encoding removes.
//!
//! [`SampleStore`] is the accessor API both worlds share:
//!
//! - [`SampleStore::Unbounded`] — the original `Vec`, exact and
//!   unbounded (the default; every existing golden is unchanged).
//! - [`SampleStore::Ring`] — an [`RleRing`]: per-device run-length
//!   segments in a bounded [`RingBuffer`], evicting the oldest finished
//!   segment when full and counting every sample it drops.
//!
//! Reads go through [`SampleStore::iter`] (yielding [`ServerSample`] by
//! value — it is `Copy`), so replay, feature extraction, and the control
//! loop are agnostic to the representation. For simulator traces —
//! where samples arrive in nondecreasing time order, all devices at a
//! tick in device order — ring iteration reproduces the `Vec` order
//! exactly; the differential suite (`tests/anomaly_detection.rs`)
//! asserts it byte-for-byte.

use qi_simkit::ring::RingBuffer;
use qi_simkit::time::{SimDuration, SimTime};

use crate::ids::DeviceId;
use crate::ops::ServerSample;
use crate::queue::DeviceCounters;

/// How a run's server-sample series is stored (a [`crate::config::ClusterConfig`]
/// knob; [`TraceStoreConfig::Unbounded`] by default so traces and
/// goldens are byte-identical to prior releases).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceStoreConfig {
    /// Keep every sample in a plain `Vec` (exact full history).
    #[default]
    Unbounded,
    /// Run-length segments in a ring bounded at `capacity` *finished*
    /// segments (one live tail segment per device is always retained on
    /// top of that, so the newest run per device is never lost).
    RleRing {
        /// Maximum finished segments held before eviction.
        capacity: usize,
    },
}

/// `count` consecutive samples from one device whose payload (cumulative
/// counters, dirty bytes, throttle flag) never changed, at times
/// `start, start + stride, …, start + (count-1)·stride`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleSegment {
    /// Sampled device.
    pub dev: DeviceId,
    /// Timestamp of the first sample in the run.
    pub start: SimTime,
    /// Spacing between consecutive samples (0 until a second sample
    /// fixes it).
    pub stride: SimDuration,
    /// Samples in the run.
    pub count: u64,
    /// Shared cumulative counters.
    pub counters: DeviceCounters,
    /// Shared dirty-byte gauge.
    pub dirty_bytes: u64,
    /// Shared throttle gauge.
    pub throttled_now: u64,
}

impl SampleSegment {
    fn of(s: &ServerSample) -> Self {
        SampleSegment {
            dev: s.dev,
            start: s.time,
            stride: SimDuration::ZERO,
            count: 1,
            counters: s.counters,
            dirty_bytes: s.dirty_bytes,
            throttled_now: s.throttled_now,
        }
    }

    fn payload_matches(&self, s: &ServerSample) -> bool {
        self.counters == s.counters
            && self.dirty_bytes == s.dirty_bytes
            && self.throttled_now == s.throttled_now
    }

    /// Whether appending `s` keeps this segment a valid arithmetic run.
    fn can_extend(&self, s: &ServerSample) -> bool {
        if self.dev != s.dev || !self.payload_matches(s) {
            return false;
        }
        if self.count == 1 {
            // The second sample fixes the stride; it only needs to not
            // go backwards in time.
            s.time >= self.start
        } else {
            s.time == self.time_at(self.count)
        }
    }

    fn time_at(&self, i: u64) -> SimTime {
        SimTime(self.start.as_nanos() + self.stride.as_nanos() * i)
    }

    /// Materialise the `i`-th sample of the run (`i < count`).
    pub fn sample_at(&self, i: u64) -> ServerSample {
        debug_assert!(i < self.count);
        ServerSample {
            time: self.time_at(i),
            dev: self.dev,
            counters: self.counters,
            dirty_bytes: self.dirty_bytes,
            throttled_now: self.throttled_now,
        }
    }
}

/// Run-length segments in a bounded ring, plus one live (still
/// extendable) tail segment per device.
#[derive(Clone, Debug)]
pub struct RleRing {
    segs: RingBuffer<SampleSegment>,
    /// Live tail per device index; grown on demand.
    tails: Vec<Option<SampleSegment>>,
    recorded: u64,
    live: u64,
    evicted: u64,
}

impl RleRing {
    /// Empty ring holding at most `capacity` finished segments.
    pub fn new(capacity: usize) -> Self {
        RleRing {
            segs: RingBuffer::new(capacity),
            tails: Vec::new(),
            recorded: 0,
            live: 0,
            evicted: 0,
        }
    }

    /// Append one sample, extending the device's live run when the
    /// payload repeats on schedule and sealing it into the ring
    /// otherwise (which may evict the oldest finished segment).
    pub fn push(&mut self, s: ServerSample) {
        self.recorded += 1;
        self.live += 1;
        let di = s.dev.index();
        if di >= self.tails.len() {
            self.tails.resize(di + 1, None);
        }
        match &mut self.tails[di] {
            Some(t) if t.can_extend(&s) => {
                if t.count == 1 {
                    t.stride = s.time.saturating_since(t.start);
                }
                t.count += 1;
            }
            Some(t) => {
                let sealed = *t;
                *t = SampleSegment::of(&s);
                if let Some(dropped) = self.segs.push(sealed) {
                    self.live -= dropped.count;
                    self.evicted += dropped.count;
                }
            }
            slot @ None => *slot = Some(SampleSegment::of(&s)),
        }
    }

    /// Samples currently reconstructible.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Samples ever pushed (held + evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Samples dropped by ring eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Segments currently held (finished + live tails).
    pub fn segments(&self) -> usize {
        self.segs.len() + self.tails.iter().flatten().count()
    }

    /// Per-device segment lists in per-device push order (each device's
    /// finished ring segments followed by its live tail).
    fn device_lists(&self) -> Vec<Vec<SampleSegment>> {
        let n = self.tails.len().max(
            self.segs
                .iter()
                .map(|g| g.dev.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut lists: Vec<Vec<SampleSegment>> = vec![Vec::new(); n];
        for g in self.segs.iter() {
            lists[g.dev.index()].push(*g);
        }
        for t in self.tails.iter().flatten() {
            lists[t.dev.index()].push(*t);
        }
        lists
    }
}

/// Storage for a run's server-sample series, behind one accessor API.
#[derive(Clone, Debug)]
pub enum SampleStore {
    /// Exact full history in a `Vec` (the default).
    Unbounded(Vec<ServerSample>),
    /// Bounded run-length ring.
    Ring(RleRing),
}

impl Default for SampleStore {
    fn default() -> Self {
        SampleStore::Unbounded(Vec::new())
    }
}

impl SampleStore {
    /// Build the store a configuration asks for.
    pub fn with_config(cfg: TraceStoreConfig) -> Self {
        match cfg {
            TraceStoreConfig::Unbounded => SampleStore::default(),
            TraceStoreConfig::RleRing { capacity } => SampleStore::Ring(RleRing::new(capacity)),
        }
    }

    /// Wrap an existing sample vector (unbounded).
    pub fn from_vec(v: Vec<ServerSample>) -> Self {
        SampleStore::Unbounded(v)
    }

    /// Append one sample.
    pub fn push(&mut self, s: ServerSample) {
        match self {
            SampleStore::Unbounded(v) => v.push(s),
            SampleStore::Ring(r) => r.push(s),
        }
    }

    /// Samples currently held (reconstructible).
    pub fn len(&self) -> usize {
        match self {
            SampleStore::Unbounded(v) => v.len(),
            SampleStore::Ring(r) => r.len(),
        }
    }

    /// True when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples ever pushed, including any since evicted.
    pub fn recorded(&self) -> u64 {
        match self {
            SampleStore::Unbounded(v) => v.len() as u64,
            SampleStore::Ring(r) => r.recorded(),
        }
    }

    /// Samples dropped by eviction (0 for the unbounded store).
    pub fn evicted(&self) -> u64 {
        match self {
            SampleStore::Unbounded(_) => 0,
            SampleStore::Ring(r) => r.evicted(),
        }
    }

    /// Storage cells currently allocated: samples for the unbounded
    /// store, segments for the ring — the peak-memory proxy the scale
    /// bench reports.
    pub fn storage_cells(&self) -> usize {
        match self {
            SampleStore::Unbounded(v) => v.len(),
            SampleStore::Ring(r) => r.segments(),
        }
    }

    /// Approximate resident bytes of the held representation.
    pub fn approx_bytes(&self) -> usize {
        match self {
            SampleStore::Unbounded(v) => v.len() * std::mem::size_of::<ServerSample>(),
            SampleStore::Ring(r) => r.segments() * std::mem::size_of::<SampleSegment>(),
        }
    }

    /// Iterate held samples by value, oldest first.
    ///
    /// For the ring this is a deterministic merge of the per-device
    /// segment lists by `(time, device)`; on simulator traces (all
    /// devices sampled at each tick, in device order) it reproduces the
    /// unbounded store's arrival order exactly.
    pub fn iter(&self) -> SampleIter<'_> {
        match self {
            SampleStore::Unbounded(v) => SampleIter::Slice(v.iter()),
            SampleStore::Ring(r) => {
                let lists = r.device_lists();
                let cursors = lists.iter().map(|_| (0usize, 0u64)).collect();
                SampleIter::Merge { lists, cursors }
            }
        }
    }

    /// Iterate starting at logical index `from`, where logical indices
    /// count every sample ever pushed (evicted ones first). Evicted
    /// history cannot be replayed: a `from` below the eviction count
    /// resumes at the oldest held sample. Incremental readers (the
    /// control loop) use this to pick up exactly where they left off.
    pub fn iter_from(&self, from: u64) -> SampleIter<'_> {
        let mut it = self.iter();
        let skip = from.saturating_sub(self.evicted());
        for _ in 0..skip {
            if it.next().is_none() {
                break;
            }
        }
        it
    }

    /// Materialise the held samples in iteration order.
    pub fn to_vec(&self) -> Vec<ServerSample> {
        self.iter().collect()
    }
}

impl PartialEq for SampleStore {
    /// Logical equality: same samples in the same iteration order
    /// (representation-agnostic, so a ring store that evicted nothing
    /// compares equal to its unbounded twin).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<'a> IntoIterator for &'a SampleStore {
    type Item = ServerSample;
    type IntoIter = SampleIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<ServerSample> for SampleStore {
    fn from_iter<I: IntoIterator<Item = ServerSample>>(iter: I) -> Self {
        SampleStore::Unbounded(iter.into_iter().collect())
    }
}

/// By-value sample iterator over either representation.
pub enum SampleIter<'a> {
    /// Unbounded store: a plain slice walk.
    Slice(std::slice::Iter<'a, ServerSample>),
    /// Ring store: `(time, device)` merge over per-device segment runs.
    Merge {
        /// Per-device segment lists (device index = position).
        lists: Vec<Vec<SampleSegment>>,
        /// Per-device `(segment index, offset within segment)` cursor.
        cursors: Vec<(usize, u64)>,
    },
}

impl Iterator for SampleIter<'_> {
    type Item = ServerSample;

    fn next(&mut self) -> Option<ServerSample> {
        match self {
            SampleIter::Slice(it) => it.next().copied(),
            SampleIter::Merge { lists, cursors } => {
                let mut best: Option<(SimTime, usize)> = None;
                for (d, &(si, off)) in cursors.iter().enumerate() {
                    let Some(seg) = lists[d].get(si) else {
                        continue;
                    };
                    let t = seg.sample_at(off).time;
                    if best.is_none_or(|(bt, bd)| (t, d) < (bt, bd)) {
                        best = Some((t, d));
                    }
                }
                let (_, d) = best?;
                let (si, off) = cursors[d];
                let seg = &lists[d][si];
                let s = seg.sample_at(off);
                cursors[d] = if off + 1 < seg.count {
                    (si, off + 1)
                } else {
                    (si + 1, 0)
                };
                Some(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(sec: u64, dev: u32, reads: u64) -> ServerSample {
        ServerSample {
            time: SimTime::from_secs(sec),
            dev: DeviceId(dev),
            counters: DeviceCounters {
                reads_completed: reads,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        }
    }

    /// The canonical simulator shape: every device sampled at every
    /// tick, in device order.
    fn tick_stream(ticks: u64, devs: u32, active_dev: Option<u32>) -> Vec<ServerSample> {
        let mut out = Vec::new();
        for t in 1..=ticks {
            for d in 0..devs {
                let reads = match active_dev {
                    Some(a) if a == d => t * 10,
                    _ => 0,
                };
                out.push(sample(t, d, reads));
            }
        }
        out
    }

    #[test]
    fn ring_matches_unbounded_when_nothing_evicts() {
        let stream = tick_stream(30, 3, Some(1));
        let mut unbounded = SampleStore::default();
        let mut ring = SampleStore::with_config(TraceStoreConfig::RleRing { capacity: 1024 });
        for s in &stream {
            unbounded.push(*s);
            ring.push(*s);
        }
        assert_eq!(ring.evicted(), 0);
        assert_eq!(unbounded, ring);
        assert_eq!(ring.to_vec(), stream);
    }

    #[test]
    fn idle_devices_compress_to_single_segments() {
        let mut ring = RleRing::new(1024);
        for s in tick_stream(1000, 3, Some(2)) {
            ring.push(s);
        }
        // Devices 0 and 1 never change: one live tail segment each.
        // Device 2 changes every tick: 1000 singleton runs.
        assert_eq!(ring.len(), 3000);
        assert!(
            ring.segments() <= 1002,
            "expected ~1002 segments, got {}",
            ring.segments()
        );
    }

    #[test]
    fn eviction_drops_oldest_and_counts() {
        // Capacity 4 finished segments; device 0 changes every tick so
        // every push seals the previous singleton run.
        let mut store = SampleStore::with_config(TraceStoreConfig::RleRing { capacity: 4 });
        for t in 1..=10 {
            store.push(sample(t, 0, t * 10));
        }
        assert_eq!(store.recorded(), 10);
        // 9 sealed runs, ring keeps 4 + 1 live tail = oldest 5 evicted.
        assert_eq!(store.evicted(), 5);
        assert_eq!(store.len(), 5);
        let times: Vec<u64> = store.iter().map(|s| s.time.as_nanos()).collect();
        let expect: Vec<u64> = (6..=10).map(|t| SimTime::from_secs(t).as_nanos()).collect();
        assert_eq!(times, expect);
        // iter_from in logical (whole-run) indices resumes mid-history.
        let tail: Vec<u64> = store.iter_from(8).map(|s| s.time.as_nanos()).collect();
        assert_eq!(tail, expect[3..]);
        // A cursor pointing into evicted history clamps to oldest held.
        assert_eq!(store.iter_from(2).count(), 5);
    }

    #[test]
    fn capacity_zero_keeps_only_live_tails() {
        let mut store = SampleStore::with_config(TraceStoreConfig::RleRing { capacity: 0 });
        for s in tick_stream(5, 2, Some(0)) {
            store.push(s);
        }
        // Device 0 seals a singleton every tick (all dropped at once);
        // device 1 never seals. Tails: dev0 newest sample + dev1 run of 5.
        assert_eq!(store.recorded(), 10);
        assert_eq!(store.len(), 6);
        assert_eq!(store.evicted(), 4);
        assert_eq!(store.storage_cells(), 2);
    }

    #[test]
    fn stride_zero_duplicate_times_roundtrip() {
        let mut store = SampleStore::with_config(TraceStoreConfig::RleRing { capacity: 8 });
        let dup = sample(3, 0, 7);
        for _ in 0..4 {
            store.push(dup);
        }
        assert_eq!(store.to_vec(), vec![dup; 4]);
        assert_eq!(store.storage_cells(), 1, "one stride-0 run");
    }

    #[test]
    fn logical_equality_is_representation_agnostic() {
        let stream = tick_stream(10, 2, None);
        let unbounded: SampleStore = stream.iter().copied().collect();
        let mut ring = SampleStore::with_config(TraceStoreConfig::RleRing { capacity: 64 });
        for s in &stream {
            ring.push(*s);
        }
        assert_eq!(unbounded, ring);
        let mut other = unbounded.clone();
        other.push(sample(11, 0, 0));
        assert_ne!(unbounded, other);
    }
}
