//! Workload-visible operations, rank programs, and trace records.
//!
//! A *rank program* is a closed-loop state machine: the cluster asks it
//! for its next step whenever the previous operation completes. Because
//! the sequence of returned steps may depend only on program-internal
//! state (never on timing), the op sequence of a run is invariant under
//! interference — which is what makes the paper's baseline-vs-interfered
//! operation matching (§III-D) well defined.

use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::MetricsSnapshot;

use crate::config::StripeConfig;
use crate::control::DirectiveRecord;
use crate::ids::{AppId, DeviceId, DirKey, FileKey, OpToken};
use crate::queue::DeviceCounters;
use crate::store::SampleStore;

/// Classification of I/O operations, matching the three groups the
/// client-side monitor counts (read / write / metadata).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// File open (lookup).
    Open,
    /// File creation.
    Create,
    /// Attribute read.
    Stat,
    /// File close.
    Close,
    /// File removal.
    Unlink,
    /// Directory creation.
    Mkdir,
}

impl OpKind {
    /// True for `Read`/`Write`.
    pub fn is_data(self) -> bool {
        matches!(self, OpKind::Read | OpKind::Write)
    }

    /// True for the metadata group.
    pub fn is_meta(self) -> bool {
        !self.is_data()
    }

    /// Short lowercase label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Open => "open",
            OpKind::Create => "create",
            OpKind::Stat => "stat",
            OpKind::Close => "close",
            OpKind::Unlink => "unlink",
            OpKind::Mkdir => "mkdir",
        }
    }
}

/// One I/O operation issued by a rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoOp {
    /// Read `len` bytes at `offset`.
    Read {
        /// Target file.
        file: FileKey,
        /// Byte offset.
        offset: u64,
        /// Byte count (> 0).
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Target file.
        file: FileKey,
        /// Byte offset.
        offset: u64,
        /// Byte count (> 0).
        len: u64,
    },
    /// Create `file` inside `dir` (acquires the directory lock).
    Create {
        /// New file.
        file: FileKey,
        /// Parent directory.
        dir: DirKey,
        /// Optional stripe override; cluster default otherwise.
        stripe: Option<StripeConfig>,
    },
    /// Open an existing file (lookup on the MDS).
    Open {
        /// Target file.
        file: FileKey,
    },
    /// Stat a file (lookup on the MDS).
    Stat {
        /// Target file.
        file: FileKey,
    },
    /// Close a file (cheap MDS round-trip).
    Close {
        /// Target file.
        file: FileKey,
    },
    /// Remove `file` from `dir` (acquires the directory lock).
    Unlink {
        /// Target file.
        file: FileKey,
        /// Parent directory.
        dir: DirKey,
    },
    /// Create a directory (acquires the *parent*-less global lock — we
    /// model it as a mutation on its own key).
    Mkdir {
        /// New directory.
        dir: DirKey,
    },
}

impl IoOp {
    /// This operation's kind.
    pub fn kind(&self) -> OpKind {
        match self {
            IoOp::Read { .. } => OpKind::Read,
            IoOp::Write { .. } => OpKind::Write,
            IoOp::Create { .. } => OpKind::Create,
            IoOp::Open { .. } => OpKind::Open,
            IoOp::Stat { .. } => OpKind::Stat,
            IoOp::Close { .. } => OpKind::Close,
            IoOp::Unlink { .. } => OpKind::Unlink,
            IoOp::Mkdir { .. } => OpKind::Mkdir,
        }
    }

    /// Payload bytes moved by this operation (0 for metadata ops).
    pub fn bytes(&self) -> u64 {
        match self {
            IoOp::Read { len, .. } | IoOp::Write { len, .. } => *len,
            _ => 0,
        }
    }
}

/// What a rank does next.
#[derive(Debug)]
pub enum ProgramStep {
    /// Issue this operation; the program is asked again on completion.
    Op(IoOp),
    /// Compute (no I/O) for this long, then ask again.
    Compute(SimDuration),
    /// The rank is done.
    Finished,
}

/// A rank's workload: called once at start and then after each completed
/// step. Implementations must be timing-independent in the *sequence* of
/// ops they return (using `now` only for logging is fine).
pub trait RankProgram: Send {
    /// Produce the next step.
    fn next(&mut self, now: SimTime) -> ProgramStep;
}

impl<F> RankProgram for F
where
    F: FnMut(SimTime) -> ProgramStep + Send,
{
    fn next(&mut self, now: SimTime) -> ProgramStep {
        self(now)
    }
}

/// Completed-operation trace record (the DXT-like client-side trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Operation identity, stable across baseline/interfered runs.
    pub token: OpToken,
    /// Operation kind.
    pub kind: OpKind,
    /// Payload bytes.
    pub bytes: u64,
    /// Issue time.
    pub issued: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

impl OpRecord {
    /// Wall time the operation took.
    pub fn duration(&self) -> SimDuration {
        self.completed - self.issued
    }
}

/// Per-RPC client-side record: which server a request targeted. This is
/// what lets the monitor build *per-server* client metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcRecord {
    /// Issuing application.
    pub app: AppId,
    /// Target device (OST or MDT).
    pub dev: DeviceId,
    /// Kind of the parent operation.
    pub kind: OpKind,
    /// Payload bytes carried by this RPC.
    pub bytes: u64,
    /// Issue time.
    pub issued: SimTime,
}

/// One per-second server-side monitor sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServerSample {
    /// Sample timestamp (end of the 1 s interval).
    pub time: SimTime,
    /// Sampled device.
    pub dev: DeviceId,
    /// Cumulative device counters at `time`.
    pub counters: DeviceCounters,
    /// Dirty bytes in the device's write-back cache.
    pub dirty_bytes: u64,
    /// Writes currently throttled at the cache.
    pub throttled_now: u64,
}

/// Everything a simulated execution produces.
#[derive(Default)]
pub struct RunTrace {
    /// Completed operations, in completion order.
    pub ops: Vec<OpRecord>,
    /// Issued RPCs, in issue order.
    pub rpcs: Vec<RpcRecord>,
    /// Per-second server samples, grouped by time then device. Stored
    /// behind the [`SampleStore`] accessor API so a run can keep either
    /// the exact unbounded history (default) or a bounded run-length
    /// ring (`ClusterConfig::trace_store`); all readers go through
    /// [`SampleStore::iter`] and are agnostic to the representation.
    pub samples: SampleStore,
    /// Per-app completion time (set when every rank finished).
    pub app_completion: Vec<Option<SimTime>>,
    /// Operations abandoned by the RPC retry layer (deadline exceeded or
    /// retry budget exhausted under an injected fault plan). Empty on
    /// healthy runs.
    pub failed_ops: Vec<OpToken>,
    /// Every control directive applied during the run, in application
    /// order. Empty unless a controller was installed (or a directive
    /// was applied by hand); the full mitigation decision sequence is
    /// replayable from this alone.
    pub directives: Vec<DirectiveRecord>,
    /// Simulation end time.
    pub end: SimTime,
    /// Events the simulation loop delivered to produce this trace. Not
    /// part of the telemetry snapshot (golden renderings stay
    /// byte-stable); recorded for the scaling benches, which report
    /// events/second from it.
    pub events_processed: u64,
    /// Cluster-wide telemetry snapshot taken when the run ended
    /// (per-device block-layer statistics, NIC utilisation, MDS
    /// metadata statistics). Deterministic and byte-stable when
    /// rendered; see the `qi-telemetry` crate.
    pub metrics: MetricsSnapshot,
}

impl RunTrace {
    /// Operations belonging to `app`.
    pub fn ops_of(&self, app: AppId) -> impl Iterator<Item = &OpRecord> {
        self.ops.iter().filter(move |o| o.token.app == app)
    }

    /// Completion time of `app`, if it finished before the run ended.
    pub fn completion_of(&self, app: AppId) -> Option<SimTime> {
        self.app_completion.get(app.0 as usize).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_grouping() {
        assert!(OpKind::Read.is_data());
        assert!(OpKind::Write.is_data());
        for k in [
            OpKind::Open,
            OpKind::Create,
            OpKind::Stat,
            OpKind::Close,
            OpKind::Unlink,
            OpKind::Mkdir,
        ] {
            assert!(k.is_meta(), "{k:?}");
        }
    }

    #[test]
    fn op_bytes_and_kind() {
        let f = FileKey {
            app: AppId(0),
            num: 1,
        };
        let op = IoOp::Write {
            file: f,
            offset: 0,
            len: 4096,
        };
        assert_eq!(op.kind(), OpKind::Write);
        assert_eq!(op.bytes(), 4096);
        let st = IoOp::Stat { file: f };
        assert_eq!(st.bytes(), 0);
        assert_eq!(st.kind().label(), "stat");
    }

    #[test]
    fn closures_are_programs() {
        let mut calls = 0;
        let mut p = move |_now: SimTime| {
            calls += 1;
            if calls > 1 {
                ProgramStep::Finished
            } else {
                ProgramStep::Compute(SimDuration::from_secs(1))
            }
        };
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Compute(_)));
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Finished));
    }

    #[test]
    fn record_duration() {
        let r = OpRecord {
            token: OpToken {
                app: AppId(0),
                rank: 0,
                seq: 0,
            },
            kind: OpKind::Read,
            bytes: 1,
            issued: SimTime::from_millis(10),
            completed: SimTime::from_millis(25),
        };
        assert_eq!(r.duration(), SimDuration::from_millis(15));
    }
}
