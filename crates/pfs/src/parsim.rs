//! The parallel simulation driver: conservative epoch synchronisation
//! over the server shards.
//!
//! Runs when `sim_shards > 1`. Time advances through epochs `(b, e]`
//! whose length never exceeds the lookahead (the minimum network
//! latency): a message sent inside an epoch cannot be delivered inside
//! it, so shards may process their epochs concurrently without ever
//! seeing an event from the past. Each epoch:
//!
//! 1. **Materialise** cross-boundary deliveries due in `(b, e]` from the
//!    mailbox onto their owning queues (data RPCs consult the realm's
//!    token-bucket filters here, at delivery time).
//! 2. **Realm phase** (sequential): clients, MDS/MDT, control. Runs
//!    first so directives can update shard replicas before shard events
//!    of the same epoch execute.
//! 3. **Shard phase** (rayon): every shard drains its queue to `e`,
//!    deferring network sends into its outbox.
//! 4. **Barrier** (sequential): apply all deferred sends to the shared
//!    NIC clocks in global timestamp order (stable ties: realm first,
//!    then shards ascending — the canonical order), push the resulting
//!    deliveries into the mailbox, and merge monitor samples into the
//!    trace in (time, device) order.
//!
//! Controller ticks get dedicated mini-epoch boundaries at `j·C` and
//! `j·C + 1 ns`, so a tick observes exactly the windows a sequential run
//! would show it. See DESIGN.md ("Parallel simulation") for the full
//! determinism argument and the residual tie-ordering caveats.

use qi_faults::FaultEvent;
use qi_simkit::epoch::{EpochSchedule, Mailbox};
use rayon::prelude::*;

use super::*;

/// Minimum total pending events (across shards with work due in the
/// epoch) before the shard phase fans out to rayon. Below it, the
/// fork-join wakeup costs more than the epoch's work — the common case
/// in sparse stretches (sampler ticks, drain tails) — so the shards run
/// serially instead. The two paths are observably identical: shards own
/// disjoint state, so their relative execution order cannot matter.
const PAR_WORK_THRESHOLD: usize = 128;

/// Earliest of two optional instants.
fn min_time(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl Cluster {
    pub(super) fn run_parallel(mut self, deadline: SimTime, stop_app: Option<AppId>) -> RunTrace {
        let sched = {
            let base = EpochSchedule::new(self.cfg.net.latency);
            if self.controller.is_some() {
                base.with_tick(self.control_interval, SimDuration::from_nanos(1))
            } else {
                base
            }
        };
        self.stage_parallel_start();

        let mut mailbox: Mailbox<Msg> = Mailbox::new();
        let mut intents: Vec<SendIntent> = Vec::new();
        let mut merged: Vec<ServerSample> = Vec::new();
        let mut b = SimTime::ZERO;
        let mut stopped: Option<SimTime> = None;

        loop {
            // Earliest pending instant anywhere; nothing before it can
            // exist, so empty stretches fast-forward whole epochs.
            let mut m = self.events.peek_time();
            for sh in &self.shards {
                m = min_time(m, sh.q.peek_time());
            }
            m = min_time(m, mailbox.peek_time());
            let Some(m) = m else { break };
            if m > deadline {
                break;
            }
            let mut e = sched.next_after(b);
            if m > e {
                b = sched.last_before(m);
                e = sched.next_after(b);
            }
            let e = e.min(deadline);
            debug_assert!(e > b, "empty epoch with pending work at {m:?}");

            // 1. Materialise cross-boundary deliveries due this epoch.
            while let Some((at, msg)) = mailbox.pop_until(e) {
                self.route_delivery(at, msg);
            }

            // 2. Realm phase.
            while let Some((now, ev)) = self.events.pop_until(e) {
                self.handle(now, ev);
                if let Some(app) = stop_app {
                    if self.trace.app_completion[app.0 as usize].is_some() {
                        stopped = Some(now);
                        break;
                    }
                }
            }

            // 3. Shard phase. On an early stop the shards advance only
            // to the stop instant, like the sequential loop's break.
            let until = stopped.unwrap_or(e);
            let cfg = &self.cfg;
            let (due, work) = self
                .shards
                .iter()
                .filter(|sh| sh.q.peek_time().is_some_and(|t| t <= until))
                .fold((0usize, 0usize), |(n, w), sh| (n + 1, w + sh.q.pending()));
            if due >= 2 && work >= PAR_WORK_THRESHOLD {
                self.shards
                    .par_iter_mut()
                    .for_each(|sh| sh.run_epoch(until, cfg));
            } else {
                for sh in &mut self.shards {
                    sh.run_epoch(until, cfg);
                }
            }

            // 4a. Barrier: NIC clocks advance in global timestamp order.
            // The sort is stable, so same-instant intents keep the
            // canonical realm-then-ascending-shards order.
            intents.append(&mut self.realm_outbox);
            for sh in &mut self.shards {
                intents.append(&mut sh.outbox);
            }
            intents.sort_by_key(|i| i.at);
            for i in intents.drain(..) {
                let deliver = self.net.send(i.at, i.src, i.dst, i.payload);
                if let Some(msg) = i.msg {
                    mailbox.push(deliver + i.extra, msg);
                }
            }

            // 4b. Merge monitor samples in (time, device) order — the
            // exact order the sequential sampler pushes.
            merged.append(&mut self.realm_samples);
            for sh in &mut self.shards {
                merged.append(&mut sh.st.sample_buf);
            }
            merged.sort_by_key(|s| (s.time, s.dev.0));
            for s in merged.drain(..) {
                self.trace.samples.push(s);
            }

            if stopped.is_some() {
                break;
            }
            b = e;
        }

        if stopped.is_none() {
            // Match the sequential loop: the clock parks at the deadline
            // when it runs out of (in-range) events.
            let _ = self.events.pop_until(deadline);
        }
        self.trace.end = self.events.now();
        let mut processed = self.events.processed();
        for sh in &self.shards {
            processed += sh.q.processed();
        }
        self.trace.events_processed = processed;
        self.trace.metrics = self.metrics_snapshot(self.events.now());
        self.trace
    }

    /// Route one materialised network delivery to its owning queue.
    /// Data RPCs clear the (realm-owned) token-bucket filter here, at
    /// delivery time, exactly as the sequential `deliver` does.
    fn route_delivery(&mut self, at: SimTime, msg: Msg) {
        match msg {
            Msg::ReadReq { len, token, .. } | Msg::WriteReq { len, token, .. } => {
                let admitted = match self.tbf.get_mut(&token.app) {
                    Some(bucket) => bucket.earliest(at, len as f64),
                    None => at,
                };
                let s = self.shard_of_dev(Self::msg_dev(&msg).0);
                if admitted > at {
                    self.shards[s].q.schedule(admitted, Ev::TbfAdmitted(msg));
                } else {
                    self.shards[s].q.schedule(at, Ev::Deliver(msg));
                }
            }
            _ => self.events.schedule(at, Ev::Deliver(msg)),
        }
    }

    /// Run-start staging for the parallel driver: route pre-run
    /// injections and the fault plan to their owning queues, kick the
    /// ranks, start the realm (MDT) and per-shard sampler chains, and
    /// schedule the first controller tick.
    fn stage_parallel_start(&mut self) {
        for (at, ev) in std::mem::take(&mut self.pending_init) {
            match ev {
                Ev::FailSlow { dev, .. } if (dev as usize) < self.ost_shard.len() => {
                    let s = self.ost_shard[dev as usize];
                    self.shards[s].q.schedule(at, ev);
                }
                _ => self.events.schedule(at, ev),
            }
        }
        self.schedule_fault_plan_parallel();
        for a in 0..self.apps.len() {
            for r in 0..self.apps[a].ranks.len() {
                self.events.schedule(
                    SimTime::ZERO,
                    Ev::RankNext {
                        app: a as u32,
                        rank: r as u32,
                    },
                );
            }
        }
        let first = SimTime::ZERO + self.cfg.sample_interval;
        self.events.schedule(first, Ev::Sample);
        for sh in &mut self.shards {
            sh.q.schedule(first, Ev::Sample);
        }
        if self.controller.is_some() {
            self.events.schedule(
                SimTime::ZERO + self.control_interval + SimDuration::from_nanos(1),
                Ev::Control,
            );
        }
    }

    /// Split the fault plan by owner: device/OSS faults of a shard's
    /// range go on that shard's queue, everything else (network rules,
    /// lock storms, MDT device faults) stays with the realm scheduler.
    fn schedule_fault_plan_parallel(&mut self) {
        let plan = std::mem::take(&mut self.fault_plan);
        let n_osts = self.ost_shard.len();
        let ost_shard = &self.ost_shard;
        let osts_per_oss = self.cfg.osts_per_oss;
        let (realm, parts) = plan.split_by(self.shards.len(), |ev| match *ev {
            FaultEvent::SlowDisk { dev, .. } | FaultEvent::DiskStall { dev, .. }
                if (dev as usize) < n_osts =>
            {
                Some(ost_shard[dev as usize])
            }
            FaultEvent::OssThreadCrash { oss, .. } => {
                Some(ost_shard[(oss * osts_per_oss) as usize])
            }
            _ => None,
        });
        self.fault_plan = realm;
        self.schedule_fault_plan();
        for (s, sub) in parts.into_iter().enumerate() {
            for ev in sub.events() {
                let q = &mut self.shards[s].q;
                match *ev {
                    FaultEvent::SlowDisk {
                        dev,
                        factor,
                        from,
                        until,
                    } => {
                        q.schedule(from, Ev::FailSlow { dev, factor });
                        q.schedule(until, Ev::FailSlow { dev, factor: 1.0 });
                    }
                    FaultEvent::DiskStall { dev, at, duration } => {
                        q.schedule(
                            at,
                            Ev::DiskStall {
                                dev,
                                until: at + duration,
                            },
                        );
                    }
                    FaultEvent::OssThreadCrash {
                        oss,
                        at,
                        restart,
                        remaining,
                    } => {
                        q.schedule(
                            at,
                            Ev::OssFactor {
                                oss,
                                factor: 1.0 / remaining,
                            },
                        );
                        if let Some(r) = restart {
                            q.schedule(r, Ev::OssFactor { oss, factor: 1.0 });
                        }
                    }
                    _ => unreachable!("realm fault routed to a shard"),
                }
            }
        }
    }
}
