//! Rotational-disk service model.
//!
//! A request's service time is `command overhead + seek + transfer`, where
//! the seek cost depends on how far the head must travel from wherever the
//! previous request left it. This is what makes interleaved sequential
//! streams expensive (seek thrash) while a single sequential stream runs
//! at full media rate — the root cause behind the read-vs-read cells of
//! the paper's Table I.

use qi_simkit::stats::Histogram;
use qi_simkit::time::SimDuration;

use crate::config::{DiskConfig, SECTOR_SIZE};

/// Upper edge of the service-time histogram, in microseconds. Requests
/// slower than this land in the overflow bucket.
const SERVICE_HIST_HI_US: f64 = 100_000.0;
/// Bucket count for the service-time histogram (2 ms per bucket).
const SERVICE_HIST_BUCKETS: usize = 50;

/// Mutable head state plus the service-time model.
#[derive(Clone, Debug)]
pub struct Disk {
    cfg: DiskConfig,
    head: u64,
    /// Total busy time accumulated, for utilisation accounting.
    busy: SimDuration,
    /// Fail-slow multiplier applied to every service time (1.0 =
    /// healthy). Models the gray-failure drives of Lu et al.'s Perseus,
    /// the work the paper borrows its severity bins from.
    degrade: f64,
    /// Per-request service-time distribution, in microseconds.
    service_hist: Histogram,
}

impl Disk {
    /// New disk with the head parked at sector 0.
    pub fn new(cfg: DiskConfig) -> Self {
        Disk {
            cfg,
            head: 0,
            busy: SimDuration::ZERO,
            degrade: 1.0,
            service_hist: Histogram::new(0.0, SERVICE_HIST_HI_US, SERVICE_HIST_BUCKETS),
        }
    }

    /// Per-request service-time histogram, in microseconds.
    pub fn service_time_hist(&self) -> &Histogram {
        &self.service_hist
    }

    /// Inject (or clear) a fail-slow condition: every subsequent request
    /// takes `factor`× its healthy service time.
    pub fn set_fail_slow(&mut self, factor: f64) {
        assert!(factor >= 1.0, "fail-slow factor must be >= 1");
        self.degrade = factor;
    }

    /// Current fail-slow multiplier (1.0 = healthy).
    pub fn fail_slow_factor(&self) -> f64 {
        self.degrade
    }

    /// The configuration this disk was built with.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Current head position (sector address).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Seek cost from the current head position to `sector`.
    ///
    /// Zero if the target is head-adjacent (sequential continuation);
    /// otherwise interpolates between `min_seek` and `max_seek` with a
    /// square-root profile over the travel distance, which approximates
    /// measured seek curves of rotational drives.
    pub fn seek_cost(&self, sector: u64) -> SimDuration {
        if sector == self.head {
            return SimDuration::ZERO;
        }
        let dist = sector.abs_diff(self.head) as f64;
        let frac = (dist / self.cfg.capacity_sectors as f64).min(1.0);
        let min = self.cfg.min_seek.as_secs_f64();
        let max = self.cfg.max_seek.as_secs_f64();
        SimDuration::from_secs_f64(min + (max - min) * frac.sqrt())
    }

    /// Pure media-transfer time for `sectors` sectors.
    pub fn transfer_time(&self, sectors: u64) -> SimDuration {
        let bytes = sectors * SECTOR_SIZE;
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.media_rate)
    }

    /// Service a request starting at `sector` spanning `sectors` sectors:
    /// returns the total service time and advances the head past the end
    /// of the request.
    pub fn service(&mut self, sector: u64, sectors: u64) -> SimDuration {
        let healthy =
            self.cfg.command_overhead + self.seek_cost(sector) + self.transfer_time(sectors);
        let t = SimDuration::from_secs_f64(healthy.as_secs_f64() * self.degrade);
        self.head = sector + sectors;
        self.busy += t;
        self.service_hist.record(t.as_secs_f64() * 1e6);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskConfig::sata_7200_ost())
    }

    #[test]
    fn sequential_requests_have_no_seek() {
        let mut d = disk();
        let t1 = d.service(0, 2048); // 1 MiB from sector 0
        let t2 = d.service(2048, 2048); // head-adjacent continuation
        assert!(t2 < t1 || d.seek_cost(4096) == SimDuration::ZERO);
        assert_eq!(d.seek_cost(d.head()), SimDuration::ZERO);
        // 1 MiB at 150 MB/s ≈ 6.99 ms + 0.1 ms overhead.
        let expect = 1_048_576.0 / 150.0e6;
        assert!((t2.as_secs_f64() - expect - 100e-6).abs() < 1e-4);
    }

    #[test]
    fn far_seek_costs_more_than_near_seek() {
        let d = disk();
        let near = d.seek_cost(10_000);
        let far = d.seek_cost(d.config().capacity_sectors - 1);
        assert!(near > SimDuration::ZERO);
        assert!(far > near);
        assert!(far <= d.config().max_seek + SimDuration::from_micros(1));
    }

    #[test]
    fn interleaved_streams_thrash() {
        // Two interleaved sequential streams must be slower than one
        // stream of the same total volume.
        let mut alone = disk();
        let mut t_alone = SimDuration::ZERO;
        for i in 0..16 {
            t_alone += alone.service(i * 2048, 2048);
        }
        let mut mixed = disk();
        let far = 500_000_000; // second stream lives far away
        let mut t_mixed = SimDuration::ZERO;
        for i in 0..8 {
            t_mixed += mixed.service(i * 2048, 2048);
            t_mixed += mixed.service(far + i * 2048, 2048);
        }
        assert!(
            t_mixed.as_secs_f64() > 1.5 * t_alone.as_secs_f64(),
            "thrash {t_mixed} vs alone {t_alone}"
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let mut d = disk();
        let t = d.service(0, 100);
        assert_eq!(d.busy_time(), t);
        let t2 = d.service(100, 100);
        assert_eq!(d.busy_time(), t + t2);
    }
}
