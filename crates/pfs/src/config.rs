//! Cluster, device, and network configuration.
//!
//! Defaults mirror the paper's evaluation testbed (§IV): 11 nodes — 7
//! clients, 3 OSS with 2 OSTs each, and 1 combined MGS/MDS node — with
//! 7200 rpm SATA disks and ~1 GB/s network interfaces.

use qi_simkit::event::QueueBackend;

use crate::store::TraceStoreConfig;
use qi_simkit::time::SimDuration;

/// Bytes per simulated disk sector.
pub const SECTOR_SIZE: u64 = 512;

/// Rotational-disk service model parameters.
#[derive(Clone, Debug)]
pub struct DiskConfig {
    /// Sustained media transfer rate in bytes/second.
    pub media_rate: f64,
    /// Cost of the shortest repositioning (track-to-track + rotational).
    pub min_seek: SimDuration,
    /// Cost of a full-stroke seek (plus average rotational latency).
    pub max_seek: SimDuration,
    /// Addressable capacity of the device, in sectors.
    pub capacity_sectors: u64,
    /// Fixed per-request controller/command overhead.
    pub command_overhead: SimDuration,
}

impl DiskConfig {
    /// A 1 TB 7200 rpm SATA data disk (OST backing store).
    pub fn sata_7200_ost() -> Self {
        DiskConfig {
            media_rate: 150.0e6,
            // Any non-contiguous access pays at least the average
            // rotational latency of a 7200 rpm spindle (~4.2 ms) plus a
            // short head move; a full-stroke seek adds ~8 ms more.
            min_seek: SimDuration::from_micros(4500),
            max_seek: SimDuration::from_millis(12),
            capacity_sectors: 1_000_000_000_000 / SECTOR_SIZE,
            command_overhead: SimDuration::from_micros(100),
        }
    }

    /// The MDT backing disk: same hardware, smaller journal-dominated
    /// working set.
    pub fn sata_7200_mdt() -> Self {
        DiskConfig {
            capacity_sectors: 200_000_000_000 / SECTOR_SIZE,
            ..DiskConfig::sata_7200_ost()
        }
    }
}

/// Block-layer request queue policy (deadline-like, read priority).
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Largest request (in sectors) that merging may produce.
    pub max_merge_sectors: u64,
    /// How many consecutive foreground (read) dispatches may pass before a
    /// queued background (flush) request is forced through.
    pub writes_starved: u32,
    /// How many queued requests the merge scan examines.
    pub merge_scan_depth: usize,
    /// Anticipatory idling: after a foreground (synchronous) request
    /// completes and no foreground work is queued, the device waits this
    /// long for the next synchronous request before falling back to
    /// background flush work. This is what keeps streaming readers
    /// nearly immune to concurrent bulk writers (Table I row 1).
    pub idle_wait: SimDuration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_merge_sectors: 4 * 1024 * 1024 / SECTOR_SIZE,
            writes_starved: 12,
            merge_scan_depth: 64,
            idle_wait: SimDuration::from_millis(3),
        }
    }
}

/// OSS server-side write-back cache (per OST).
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Dirty-data limit; writers throttle once this much is unflushed.
    pub dirty_limit: u64,
    /// Memory-copy bandwidth for absorbing a write into cache (bytes/s).
    pub absorb_rate: f64,
    /// When `false` every write is synchronous (used for the MDT journal).
    pub write_back: bool,
    /// Objects up to this size stay resident in the server page cache
    /// once touched; reads of resident objects never reach the disk.
    /// This is why mdtest-hard-read's 3901-byte file bodies are immune
    /// to concurrent bulk I/O in the paper's Table I (row 3).
    pub small_object_max: u64,
    /// Total bytes of small objects kept resident per OST (LRU beyond).
    pub read_cache_budget: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            dirty_limit: 256 * 1024 * 1024,
            absorb_rate: 2.0e9,
            write_back: true,
            small_object_max: 256 * 1024,
            read_cache_budget: 1024 * 1024 * 1024,
        }
    }
}

/// Network model parameters.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Per-NIC bandwidth in bytes/second (paper: ~1 GB/s interfaces).
    pub bandwidth: f64,
    /// One-way propagation + stack latency.
    pub latency: SimDuration,
    /// Header/framing bytes added to every message.
    pub header_bytes: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth: 1.0e9,
            latency: SimDuration::from_micros(100),
            header_bytes: 256,
        }
    }
}

/// Metadata service parameters.
#[derive(Clone, Debug)]
pub struct MdsConfig {
    /// Serial CPU cost charged per lookup-class request (open/stat/close).
    pub cpu_per_op: SimDuration,
    /// Serial CPU cost charged per namespace mutation (create/unlink/
    /// mkdir) — several times a lookup, which is why create storms
    /// saturate an MDS long before lookups do.
    pub cpu_per_mutation: SimDuration,
    /// Probability that a lookup (open/stat) hits the MDS cache and avoids
    /// a device read, *in addition to* the deterministic inode LRU cache
    /// (models dcache effects for files the LRU has never seen).
    pub lookup_cache_hit: f64,
    /// Entries in the MDS inode LRU cache: the first lookup of a file
    /// misses to the MDT, subsequent lookups hit until evicted.
    pub inode_cache_entries: usize,
    /// Bytes journalled per namespace mutation (create/unlink/mkdir).
    pub journal_record_bytes: u64,
    /// Size of the circular journal region on the MDT, in bytes.
    pub journal_region_bytes: u64,
    /// Cost of bouncing a directory lock between clients: when a
    /// namespace mutation comes from a different client than the previous
    /// holder, the old grant must be revoked (a client round-trip) before
    /// the mutation proceeds — all while the directory stays locked. This
    /// is what makes shared-directory create storms (mdtest-hard) so much
    /// slower than private-directory ones (mdtest-easy).
    pub lock_revoke: SimDuration,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            cpu_per_op: SimDuration::from_micros(40),
            cpu_per_mutation: SimDuration::from_micros(150),
            lookup_cache_hit: 0.5,
            inode_cache_entries: 65_536,
            journal_record_bytes: 4096,
            journal_region_bytes: 1024 * 1024 * 1024,
            lock_revoke: SimDuration::from_micros(400),
        }
    }
}

/// OSS service parameters.
#[derive(Clone, Debug)]
pub struct OssConfig {
    /// Serial CPU cost charged per data RPC on the OSS node.
    pub cpu_per_rpc: SimDuration,
}

impl Default for OssConfig {
    fn default() -> Self {
        OssConfig {
            cpu_per_rpc: SimDuration::from_micros(25),
        }
    }
}

/// Default stripe geometry for newly created files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeConfig {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Number of OSTs a file is striped across.
    pub stripe_count: u32,
}

impl Default for StripeConfig {
    fn default() -> Self {
        StripeConfig {
            stripe_size: 1024 * 1024,
            stripe_count: 1,
        }
    }
}

/// Full cluster topology and hardware description.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of client (compute) nodes.
    pub client_nodes: u32,
    /// Number of object storage server nodes.
    pub oss_nodes: u32,
    /// OSTs attached to each OSS node.
    pub osts_per_oss: u32,
    /// OST backing-disk model.
    pub ost_disk: DiskConfig,
    /// MDT backing-disk model.
    pub mdt_disk: DiskConfig,
    /// Block queue policy (shared by OSTs and the MDT).
    pub queue: QueueConfig,
    /// OSS write-back cache policy.
    pub cache: CacheConfig,
    /// Network model.
    pub net: NetConfig,
    /// Metadata service model.
    pub mds: MdsConfig,
    /// OSS CPU model.
    pub oss: OssConfig,
    /// Default stripe geometry.
    pub stripe: StripeConfig,
    /// Interval between server-side monitor samples (paper: 1 s).
    pub sample_interval: SimDuration,
    /// Event-queue backend for the simulation loop. Every backend
    /// produces byte-identical traces (enforced by the differential
    /// replay harness); this knob exists for performance comparisons
    /// and for driving whole runs through the reference double.
    pub event_queue: QueueBackend,
    /// Storage policy for the run's server-sample series. The default
    /// unbounded `Vec` keeps the exact full history (byte-identical to
    /// prior releases); the RLE ring bounds trace memory on long runs
    /// and is proven read-equivalent by the differential suite.
    pub trace_store: TraceStoreConfig,
    /// Number of parallel server shards the simulation loop may use.
    /// `1` (the default) runs the classic sequential loop. Values above
    /// 1 partition the OSS/OST set into that many contiguous shards and
    /// drive them on the ambient rayon pool with conservative epoch
    /// synchronisation; clamped to `oss_nodes`. Every shard count
    /// produces bit-identical traces and telemetry (enforced by the
    /// differential replay harness) — this knob only trades wall-clock
    /// time for cores.
    pub sim_shards: u32,
}

impl Default for ClusterConfig {
    /// The paper's testbed: 7 clients, 3 OSS × 2 OST, 1 MDS.
    fn default() -> Self {
        ClusterConfig {
            client_nodes: 7,
            oss_nodes: 3,
            osts_per_oss: 2,
            ost_disk: DiskConfig::sata_7200_ost(),
            mdt_disk: DiskConfig::sata_7200_mdt(),
            queue: QueueConfig::default(),
            cache: CacheConfig::default(),
            net: NetConfig::default(),
            mds: MdsConfig::default(),
            oss: OssConfig::default(),
            stripe: StripeConfig::default(),
            sample_interval: SimDuration::from_secs(1),
            event_queue: QueueBackend::Calendar,
            trace_store: TraceStoreConfig::default(),
            sim_shards: 1,
        }
    }
}

impl ClusterConfig {
    /// A reduced-size cluster for fast unit/integration tests:
    /// 4 clients, 2 OSS × 2 OST, smaller cache.
    pub fn small() -> Self {
        ClusterConfig {
            client_nodes: 4,
            oss_nodes: 2,
            osts_per_oss: 2,
            cache: CacheConfig {
                dirty_limit: 64 * 1024 * 1024,
                ..CacheConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    /// Total number of OSTs in the cluster.
    pub fn n_osts(&self) -> u32 {
        self.oss_nodes * self.osts_per_oss
    }

    /// Total number of storage devices (OSTs + the MDT).
    pub fn n_devices(&self) -> u32 {
        self.n_osts() + 1
    }

    /// Total number of nodes (clients + OSS + MDS).
    pub fn n_nodes(&self) -> u32 {
        self.client_nodes + self.oss_nodes + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.n_nodes(), 11);
        assert_eq!(c.n_osts(), 6);
        assert_eq!(c.n_devices(), 7);
    }

    #[test]
    fn small_cluster_is_consistent() {
        let c = ClusterConfig::small();
        assert_eq!(c.n_osts(), 4);
        assert_eq!(c.n_nodes(), 7);
    }

    #[test]
    fn disk_capacity_in_sectors() {
        let d = DiskConfig::sata_7200_ost();
        assert_eq!(d.capacity_sectors * SECTOR_SIZE, 1_000_000_000_000);
    }
}
