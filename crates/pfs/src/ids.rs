//! Identifier newtypes for cluster entities.
//!
//! Everything is a small integer index so traces stay compact and hashing
//! stays cheap. Paths are deliberately absent from the hot data model:
//! workload programs allocate their own [`FileKey`]/[`DirKey`] numbers
//! inside their application's namespace, which is what lets the simulator
//! run millions of metadata operations without string interning.

use std::fmt;

/// A physical machine (client, OSS, or MDS node). Nodes own one NIC each.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// A storage *device* (server target): one of the OSTs or the MDT.
///
/// Devices are indexed `0..n_osts` for OSTs, with the MDT last, matching
/// the per-server feature-vector layout used by the model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Flat index into per-device arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An application (one workload instance) running on the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

/// A file identity: unique within the issuing application.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileKey {
    /// Owning application.
    pub app: AppId,
    /// Application-chosen file number.
    pub num: u64,
}

/// A directory identity: unique within the issuing application.
///
/// Ranks of one application that pass the *same* `DirKey` share a
/// directory — and therefore contend on its metadata lock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirKey {
    /// Owning application.
    pub app: AppId,
    /// Application-chosen directory number.
    pub num: u64,
}

/// Identifies one logical I/O operation issued by one rank, for matching
/// the same operation across baseline and interfered executions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpToken {
    /// Issuing application.
    pub app: AppId,
    /// Rank within the application.
    pub rank: u32,
    /// Sequence number of the operation within the rank (0-based).
    pub seq: u64,
}

impl fmt::Display for OpToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}:r{}:op{}", self.app.0, self.rank, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn keys_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for app in 0..3 {
            for num in 0..3 {
                set.insert(FileKey {
                    app: AppId(app),
                    num,
                });
            }
        }
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn op_token_display() {
        let t = OpToken {
            app: AppId(2),
            rank: 5,
            seq: 17,
        };
        assert_eq!(t.to_string(), "app2:r5:op17");
    }
}
