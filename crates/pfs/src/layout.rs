//! File striping and on-device extent allocation.
//!
//! A file is striped round-robin across `stripe_count` OSTs in
//! `stripe_size` units, exactly like Lustre: byte `b` of the file lives in
//! stripe `(b / stripe_size) % stripe_count`. Each (file, stripe) pair is
//! an *object* on one OST; objects own sector extents handed out by a
//! per-OST bump allocator, so writes interleaved from many clients
//! fragment the disk layout — and later sequential reads pay seeks for it.

use std::collections::HashMap;

use crate::config::SECTOR_SIZE;
use crate::ids::{DeviceId, FileKey};

/// Where the stripes of one file live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileLayout {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// OSTs, one per stripe, in round-robin order.
    pub osts: Vec<DeviceId>,
}

impl FileLayout {
    /// Stripe count.
    pub fn stripe_count(&self) -> u32 {
        self.osts.len() as u32
    }
}

/// A contiguous byte range of one file mapped onto one object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Device holding the object.
    pub dev: DeviceId,
    /// Stripe index within the file (identifies the object).
    pub stripe: u32,
    /// Offset within the object, in bytes.
    pub obj_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Split the file byte range `[offset, offset+len)` into per-object chunks.
///
/// The returned chunks partition the range exactly, in file order.
pub fn chunks(layout: &FileLayout, offset: u64, len: u64) -> Vec<Chunk> {
    let mut out = Vec::new();
    chunks_into(layout, offset, len, &mut out);
    out
}

/// [`chunks`], appending into a caller-owned buffer. The hot path reuses
/// one scratch `Vec` across every op instead of allocating per I/O.
pub fn chunks_into(layout: &FileLayout, offset: u64, len: u64, out: &mut Vec<Chunk>) {
    assert!(len > 0, "zero-length I/O");
    let ss = layout.stripe_size;
    let sc = layout.stripe_count() as u64;
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let stripe_no = pos / ss; // global stripe number
        let stripe = (stripe_no % sc) as u32;
        let within = pos % ss;
        let take = (ss - within).min(end - pos);
        let obj_offset = (stripe_no / sc) * ss + within;
        out.push(Chunk {
            dev: layout.osts[stripe as usize],
            stripe,
            obj_offset,
            len: take,
        });
        pos += take;
    }
}

/// Key of an object on a device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObjKey {
    /// Owning file.
    pub file: FileKey,
    /// Stripe index.
    pub stripe: u32,
}

/// One allocated extent of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Extent {
    /// Object offset, in sectors.
    obj_sector: u64,
    /// Device sector where the extent starts.
    dev_sector: u64,
    /// Length in sectors.
    sectors: u64,
}

/// A device sector range produced by mapping an object byte range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectorRange {
    /// First device sector.
    pub sector: u64,
    /// Number of sectors.
    pub sectors: u64,
}

/// Per-OST extent allocator and object map.
pub struct ExtentMap {
    capacity: u64,
    next: u64,
    objects: HashMap<ObjKey, Vec<Extent>>,
}

impl ExtentMap {
    /// Allocator over a device of `capacity` sectors. Allocation starts a
    /// little way in, leaving room for device metadata regions.
    pub fn new(capacity: u64) -> Self {
        ExtentMap {
            capacity,
            next: 2048,
            objects: HashMap::new(),
        }
    }

    /// Sectors handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Total sectors currently backing `key` (0 if never touched).
    pub fn object_sectors(&self, key: ObjKey) -> u64 {
        self.objects
            .get(&key)
            .map(|exts| exts.iter().map(|e| e.sectors).sum())
            .unwrap_or(0)
    }

    fn alloc(&mut self, sectors: u64) -> u64 {
        let s = self.next;
        self.next += sectors;
        assert!(
            self.next <= self.capacity,
            "device out of space: {} > {}",
            self.next,
            self.capacity
        );
        s
    }

    /// Map an object byte range to device sector ranges, allocating
    /// extents for any part of the range not yet backed.
    ///
    /// Used for both writes (allocate-on-write) and reads (cold data is
    /// lazily placed, simulating a pre-existing dataset).
    pub fn map(&mut self, key: ObjKey, obj_offset: u64, len: u64) -> Vec<SectorRange> {
        let mut out = Vec::new();
        self.map_into(key, obj_offset, len, &mut out);
        out
    }

    /// [`map`](ExtentMap::map), appending into a caller-owned buffer so
    /// the event loop can reuse one scratch `Vec` per cluster.
    pub fn map_into(&mut self, key: ObjKey, obj_offset: u64, len: u64, out: &mut Vec<SectorRange>) {
        assert!(len > 0);
        let first = obj_offset / SECTOR_SIZE;
        let last = (obj_offset + len).div_ceil(SECTOR_SIZE); // exclusive
        let mut pos = first;
        // Work over a local copy of the extent list index to appease the
        // borrow checker while we may allocate.
        while pos < last {
            let found = self.objects.get(&key).and_then(|exts| {
                exts.iter()
                    .find(|e| e.obj_sector <= pos && pos < e.obj_sector + e.sectors)
                    .copied()
            });
            let (dev_sector, run) = match found {
                Some(e) => {
                    let skip = pos - e.obj_sector;
                    let avail = e.sectors - skip;
                    (e.dev_sector + skip, avail.min(last - pos))
                }
                None => {
                    // Allocate from `pos` to the next covered sector or
                    // the end of the range, whichever is first.
                    let next_cover = self
                        .objects
                        .get(&key)
                        .map(|exts| {
                            exts.iter()
                                .filter(|e| e.obj_sector > pos)
                                .map(|e| e.obj_sector)
                                .min()
                                .unwrap_or(last)
                        })
                        .unwrap_or(last)
                        .min(last);
                    let need = next_cover - pos;
                    let dev = self.alloc(need);
                    let ext = Extent {
                        obj_sector: pos,
                        dev_sector: dev,
                        sectors: need,
                    };
                    self.objects.entry(key).or_default().push(ext);
                    (dev, need)
                }
            };
            // Coalesce with the previous output range when contiguous.
            if let Some(prev) = out.last_mut() {
                if prev.sector + prev.sectors == dev_sector {
                    prev.sectors += run;
                    pos += run;
                    continue;
                }
            }
            out.push(SectorRange {
                sector: dev_sector,
                sectors: run,
            });
            pos += run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;

    fn layout(n: u32) -> FileLayout {
        FileLayout {
            stripe_size: 1024 * 1024,
            osts: (0..n).map(DeviceId).collect(),
        }
    }

    fn key(n: u64) -> ObjKey {
        ObjKey {
            file: FileKey {
                app: AppId(0),
                num: n,
            },
            stripe: 0,
        }
    }

    #[test]
    fn chunks_partition_exactly() {
        let l = layout(3);
        let cs = chunks(&l, 500_000, 3_000_000);
        let total: u64 = cs.iter().map(|c| c.len).sum();
        assert_eq!(total, 3_000_000);
        // Chunks are in file order and within stripe bounds.
        for c in &cs {
            assert!(c.len <= l.stripe_size);
        }
    }

    #[test]
    fn round_robin_striping() {
        let l = layout(3);
        let ss = l.stripe_size;
        // Byte at offset 0 → stripe 0; ss → stripe 1; 2ss → stripe 2; 3ss → stripe 0 again.
        for (off, want) in [(0, 0u32), (ss, 1), (2 * ss, 2), (3 * ss, 0)] {
            let c = chunks(&l, off, 1);
            assert_eq!(c.len(), 1);
            assert_eq!(c[0].stripe, want);
        }
        // Second pass over stripe 0 lands at object offset ss.
        let c = chunks(&l, 3 * ss, 1);
        assert_eq!(c[0].obj_offset, ss);
    }

    #[test]
    fn single_stripe_file_is_one_object() {
        let l = layout(1);
        let cs = chunks(&l, 0, 10 * 1024 * 1024);
        assert_eq!(cs.len(), 10);
        assert!(cs.iter().all(|c| c.stripe == 0));
        assert_eq!(cs[9].obj_offset, 9 * 1024 * 1024);
    }

    #[test]
    fn sequential_writes_get_contiguous_sectors() {
        let mut m = ExtentMap::new(1 << 30);
        let r1 = m.map(key(1), 0, 1024 * 1024);
        let r2 = m.map(key(1), 1024 * 1024, 1024 * 1024);
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        assert_eq!(r1[0].sector + r1[0].sectors, r2[0].sector);
    }

    #[test]
    fn interleaved_objects_fragment() {
        let mut m = ExtentMap::new(1 << 30);
        let a1 = m.map(key(1), 0, 1024 * 1024);
        let _b1 = m.map(key(2), 0, 1024 * 1024);
        let a2 = m.map(key(1), 1024 * 1024, 1024 * 1024);
        // Object 1's second extent is NOT adjacent to its first.
        assert_ne!(a1[0].sector + a1[0].sectors, a2[0].sector);
    }

    #[test]
    fn rereading_hits_same_sectors() {
        let mut m = ExtentMap::new(1 << 30);
        let w = m.map(key(3), 4096, 8192);
        let r = m.map(key(3), 4096, 8192);
        assert_eq!(w, r);
        assert_eq!(m.allocated(), 2048 + 16);
    }

    #[test]
    fn partial_overlap_allocates_only_gap() {
        let mut m = ExtentMap::new(1 << 30);
        let _ = m.map(key(4), 0, 4096); // sectors 0..8 of the object
        let before = m.allocated();
        let r = m.map(key(4), 2048, 4096); // sectors 4..12: 4..8 covered, 8..12 new
        let total: u64 = r.iter().map(|x| x.sectors).sum();
        assert_eq!(total, 8);
        assert_eq!(m.allocated() - before, 4);
    }

    #[test]
    fn sub_sector_write_rounds_to_sectors() {
        let mut m = ExtentMap::new(1 << 30);
        let r = m.map(key(5), 0, 3901); // mdtest-hard file body
        let total: u64 = r.iter().map(|x| x.sectors).sum();
        assert_eq!(total, 8); // ceil(3901/512)
    }
}
