//! Property-based tests for the PFS simulator's data structures.

use proptest::prelude::*;
use qi_pfs::cache::{Admit, WriteCache};
use qi_pfs::config::{CacheConfig, DiskConfig, QueueConfig, StripeConfig};
use qi_pfs::disk::Disk;
use qi_pfs::ids::{AppId, DeviceId, FileKey};
use qi_pfs::layout::{chunks, ExtentMap, FileLayout, ObjKey};
use qi_pfs::net::Network;
use qi_pfs::queue::{BlockDevice, Dispatch, ReqKind};
use qi_simkit::time::{SimDuration, SimTime};

fn layout(stripe_size: u64, count: u32) -> FileLayout {
    FileLayout {
        stripe_size,
        osts: (0..count).map(DeviceId).collect(),
    }
}

proptest! {
    /// Striping chunks partition the byte range exactly: lengths sum to
    /// the request, chunks are in order, none crosses a stripe boundary,
    /// and reassembling (stripe, obj_offset) covers every byte once.
    #[test]
    fn chunks_partition_exactly(
        offset in 0u64..50_000_000,
        len in 1u64..20_000_000,
        stripe_kib in 64u64..4096,
        count in 1u32..8,
    ) {
        let l = layout(stripe_kib * 1024, count);
        let cs = chunks(&l, offset, len);
        let total: u64 = cs.iter().map(|c| c.len).sum();
        prop_assert_eq!(total, len);
        let mut pos = offset;
        for c in &cs {
            // Each chunk fits in one stripe unit.
            prop_assert!(c.obj_offset % l.stripe_size + c.len <= l.stripe_size);
            // The chunk maps back to the expected file position.
            let stripe_no = pos / l.stripe_size;
            prop_assert_eq!(c.stripe, (stripe_no % count as u64) as u32);
            let expect_obj =
                (stripe_no / count as u64) * l.stripe_size + pos % l.stripe_size;
            prop_assert_eq!(c.obj_offset, expect_obj);
            pos += c.len;
        }
    }

    /// Extent mapping conserves sectors and is idempotent: mapping the
    /// same range twice returns identical device ranges and allocates
    /// nothing new.
    #[test]
    fn extent_map_is_idempotent(
        ops in prop::collection::vec((0u64..3, 0u64..4_000_000, 1u64..500_000), 1..40),
    ) {
        let mut m = ExtentMap::new(1 << 32);
        let mut results = Vec::new();
        for &(obj, off, len) in &ops {
            let key = ObjKey {
                file: FileKey { app: AppId(0), num: obj },
                stripe: 0,
            };
            let ranges = m.map(key, off, len);
            let sectors: u64 = ranges.iter().map(|r| r.sectors).sum();
            let expect = (off + len).div_ceil(512) - off / 512;
            prop_assert_eq!(sectors, expect);
            results.push((key, off, len, ranges));
        }
        let after = m.allocated();
        for (key, off, len, ranges) in results {
            let again = m.map(key, off, len);
            prop_assert_eq!(again, ranges);
        }
        prop_assert_eq!(m.allocated(), after, "re-mapping allocated new extents");
    }

    /// Block device conservation: every submitted member is eventually
    /// completed exactly once, sectors are conserved, and the counters
    /// agree with what was pushed through.
    #[test]
    fn block_device_conserves_requests(
        reqs in prop::collection::vec(
            (0u64..2_000_000u64, 1u64..256u64, prop::bool::ANY, prop::bool::ANY),
            1..120,
        ),
    ) {
        let mut d: BlockDevice<usize> =
            BlockDevice::new(QueueConfig::default(), Disk::new(DiskConfig::sata_7200_ost()));
        let mut t = SimTime::ZERO;
        let mut next_completion: Option<SimTime> = None;
        let mut completed = vec![false; reqs.len()];
        let handle = |d: &mut BlockDevice<usize>, now: SimTime, disp: Dispatch| -> Option<SimTime> {
            match disp {
                Dispatch::Started(dur) => Some(now + dur),
                Dispatch::Anticipating(at) => {
                    match d.idle_check(at) {
                        Dispatch::Started(dur) => Some(at + dur),
                        _ => None,
                    }
                }
                Dispatch::Idle => None,
            }
        };
        for (i, &(sector, sectors, is_read, fg)) in reqs.iter().enumerate() {
            // Drain any in-flight completion first (half the time) so we
            // exercise queue growth and merging.
            if i % 2 == 0 {
                while let Some(at) = next_completion {
                    t = at;
                    let (done, disp) = d.complete(t);
                    for mem in &done.members {
                        prop_assert!(!completed[mem.tag], "double completion");
                        completed[mem.tag] = true;
                    }
                    next_completion = handle(&mut d, t, disp);
                }
            }
            let kind = if is_read { ReqKind::Read } else { ReqKind::Write };
            let disp = d.submit(t, kind, sector, sectors, fg, i);
            if next_completion.is_none() {
                next_completion = handle(&mut d, t, disp);
            }
        }
        // Drain everything.
        loop {
            match next_completion {
                Some(at) => {
                    t = at;
                    let (done, disp) = d.complete(t);
                    for mem in &done.members {
                        prop_assert!(!completed[mem.tag], "double completion");
                        completed[mem.tag] = true;
                    }
                    next_completion = handle(&mut d, t, disp);
                }
                None => {
                    // Possibly still anticipating with queued bg work.
                    match d.idle_check(SimTime(t.as_nanos() + 10_000_000)) {
                        Dispatch::Started(dur) => {
                            t = SimTime(t.as_nanos() + 10_000_000);
                            next_completion = Some(t + dur);
                        }
                        _ => break,
                    }
                }
            }
        }
        prop_assert!(completed.iter().all(|&c| c), "requests lost in the queue");
        let c = d.counters(t);
        prop_assert_eq!(c.reads_completed + c.writes_completed, reqs.len() as u64);
        let sectors_expect: u64 = reqs.iter().map(|r| r.1).sum();
        prop_assert_eq!(c.sectors_read + c.sectors_written, sectors_expect);
        prop_assert_eq!(c.queued_now, 0);
        prop_assert_eq!(c.enqueued, reqs.len() as u64);
    }

    /// Network sends produce non-decreasing per-NIC reservations and
    /// delivery never precedes `now + latency`.
    #[test]
    fn network_reservations_are_causal(
        sends in prop::collection::vec((0u32..4, 4u32..8, 0u64..2_000_000), 1..80),
    ) {
        let mut net = Network::new(Default::default(), 8);
        let mut t = SimTime::ZERO;
        for &(src, dst, bytes) in &sends {
            let deliver = net.send(t, qi_pfs::ids::NodeId(src), qi_pfs::ids::NodeId(dst), bytes);
            prop_assert!(deliver >= t + net.config().latency);
            t = SimTime(t.as_nanos() + 1000);
        }
    }

    /// Cache conservation: dirty bytes equal absorbed minus flushed, no
    /// write is released twice, and releases are FIFO.
    #[test]
    fn write_cache_conserves_bytes(writes in prop::collection::vec(1u64..50_000, 1..60)) {
        let mut c: WriteCache<usize> = WriteCache::new(CacheConfig {
            dirty_limit: 64_000,
            ..CacheConfig::default()
        });
        let mut absorbed = 0u64;
        let mut flushed_total = 0u64;
        let mut pending_flush = std::collections::VecDeque::new();
        let mut released_order = Vec::new();
        let mut throttled_now = 0usize;
        for (i, &bytes) in writes.iter().enumerate() {
            match c.admit(bytes, i) {
                Admit::Absorbed { .. } => {
                    absorbed += bytes;
                    pending_flush.push_back(bytes);
                }
                Admit::Throttled => {
                    throttled_now += 1;
                    // Flush until the throttled writes drain (or we run
                    // out of dirty data to flush).
                    while throttled_now > 0 {
                        let Some(fb) = pending_flush.pop_front() else { break };
                        flushed_total += fb;
                        for r in c.flushed(fb) {
                            throttled_now -= 1;
                            absorbed += r.bytes;
                            pending_flush.push_back(r.bytes);
                            released_order.push(r.tag);
                        }
                    }
                }
                Admit::Sync => unreachable!(),
            }
            prop_assert_eq!(c.dirty(), absorbed - flushed_total);
            prop_assert_eq!(c.throttled_now(), throttled_now);
        }
        // Releases came out in submission order.
        let mut sorted = released_order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(released_order, sorted);
    }

    /// Disk service time grows with transfer size and never goes
    /// negative or zero.
    #[test]
    fn disk_service_is_monotone_in_size(
        sector in 0u64..1_000_000,
        a in 1u64..10_000,
        b in 1u64..10_000,
    ) {
        let (small, big) = (a.min(b), a.max(b));
        let mut d1 = Disk::new(DiskConfig::sata_7200_ost());
        let mut d2 = Disk::new(DiskConfig::sata_7200_ost());
        let ts = d1.service(sector, small);
        let tb = d2.service(sector, big);
        prop_assert!(ts > SimDuration::ZERO);
        prop_assert!(tb >= ts);
    }

    /// Stripe config always clamps into the cluster's OST range when a
    /// file is created through the cluster path.
    #[test]
    fn cluster_create_respects_stripe_bounds(count in 0u32..64) {
        use qi_pfs::cluster::Cluster;
        use qi_pfs::config::ClusterConfig;
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(1)
            .build()
            .expect("valid test cluster");
        let f = FileKey { app: AppId(0), num: 1 };
        cl.precreate_file(
            f,
            1024,
            Some(StripeConfig {
                stripe_size: 65536,
                stripe_count: count,
            }),
        );
        // No panic = placement stayed within bounds; run a read through
        // it to be sure the layout is usable.
        let mut left = 1;
        let prog = move |_now: SimTime| {
            if left == 0 {
                return qi_pfs::ops::ProgramStep::Finished;
            }
            left -= 1;
            qi_pfs::ops::ProgramStep::Op(qi_pfs::ops::IoOp::Read {
                file: f,
                offset: 0,
                len: 1024,
            })
        };
        let app = cl.add_app("r", vec![Box::new(prog)], &[qi_pfs::ids::NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(5));
        prop_assert!(trace.completion_of(app).is_some());
    }
}
