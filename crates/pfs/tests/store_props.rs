//! Property-based tests for the RLE ring-buffer trace store.
//!
//! The store must be a drop-in read-equivalent of the unbounded `Vec`
//! it replaced: same logical sample sequence when nothing evicts, exact
//! eviction accounting when capacity bites (including the degenerate
//! capacities 0 and 1), and per-device suffixes preserved through
//! wrap-around.

use proptest::prelude::*;
use qi_pfs::ids::DeviceId;
use qi_pfs::ops::ServerSample;
use qi_pfs::queue::DeviceCounters;
use qi_pfs::store::{SampleStore, TraceStoreConfig};
use qi_simkit::time::{SimDuration, SimTime};

/// A cluster-shaped stream: per tick, every device reports once (in
/// device order), with cumulative counters that only move on active
/// ticks. Folding half the delta draws to zero keeps long idle runs
/// common, which is what the RLE is for.
fn build_stream(deltas: &[Vec<u64>], tick_ms: u64) -> Vec<ServerSample> {
    let n_dev = deltas.first().map(Vec::len).unwrap_or(0);
    let mut cum = vec![DeviceCounters::default(); n_dev];
    let mut out = Vec::new();
    for (t, row) in deltas.iter().enumerate() {
        let time = SimTime::ZERO + SimDuration::from_millis((t as u64 + 1) * tick_ms);
        for (d, &delta) in row.iter().enumerate() {
            cum[d].writes_completed += delta;
            cum[d].sectors_written += delta * 8;
            cum[d].wait_ns += delta * 500;
            out.push(ServerSample {
                time,
                dev: DeviceId(d as u32),
                counters: cum[d],
                dirty_bytes: delta % 3,
                throttled_now: 0,
            });
        }
    }
    out
}

fn arb_deltas() -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1usize..5).prop_flat_map(|n_dev| {
        prop::collection::vec(
            prop::collection::vec((0u64..40).prop_map(|v| v.saturating_sub(20)), n_dev..=n_dev),
            0..60,
        )
    })
}

fn fill(cfg: TraceStoreConfig, stream: &[ServerSample]) -> SampleStore {
    let mut store = SampleStore::with_config(cfg);
    for s in stream {
        store.push(*s);
    }
    store
}

proptest! {
    /// With a capacity nothing evicts under, the ring round-trips the
    /// exact sample sequence of the unbounded reference — via to_vec,
    /// via the logical-equality PartialEq, and via iter_from at every
    /// offset.
    #[test]
    fn unevicted_ring_round_trips(
        deltas in arb_deltas(),
        tick_ms in 1u64..2_000,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let reference = fill(TraceStoreConfig::Unbounded, &stream);
        let ring = fill(
            TraceStoreConfig::RleRing { capacity: stream.len() + 1 },
            &stream,
        );
        prop_assert_eq!(ring.evicted(), 0);
        prop_assert_eq!(&ring, &reference);
        prop_assert_eq!(ring.to_vec(), stream.clone());
        for from in [0u64, 1, stream.len() as u64 / 2, stream.len() as u64] {
            let got: Vec<_> = ring.iter_from(from).collect();
            let want: Vec<_> = stream
                .iter()
                .skip(from as usize)
                .cloned()
                .collect();
            prop_assert_eq!(got, want, "iter_from({})", from);
        }
    }

    /// Any capacity (including 0 and 1): accounting is exact, iteration
    /// length matches, and the held samples are a per-device suffix of
    /// the pushed series — wrap-around never reorders or corrupts.
    #[test]
    fn eviction_accounting_is_exact_at_any_capacity(
        deltas in arb_deltas(),
        tick_ms in 1u64..2_000,
        capacity in 0usize..12,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let store = fill(TraceStoreConfig::RleRing { capacity }, &stream);
        prop_assert_eq!(store.recorded(), stream.len() as u64);
        prop_assert_eq!(store.evicted() + store.len() as u64, stream.len() as u64);
        let held = store.to_vec();
        prop_assert_eq!(held.len(), store.len());
        prop_assert_eq!(store.iter().count(), store.len());
        let n_dev = deltas.first().map(Vec::len).unwrap_or(0);
        for d in 0..n_dev as u32 {
            let held_d: Vec<_> = held.iter().filter(|s| s.dev.0 == d).collect();
            let all_d: Vec<_> = stream.iter().filter(|s| s.dev.0 == d).collect();
            prop_assert!(held_d.len() <= all_d.len());
            prop_assert_eq!(
                &held_d[..],
                &all_d[all_d.len() - held_d.len()..],
                "device {} held a non-suffix", d
            );
        }
        // iter_from(evicted) resumes at the oldest held sample.
        let resumed: Vec<_> = store.iter_from(store.evicted()).collect();
        prop_assert_eq!(resumed, held);
    }

    /// Idle devices compress: when every device repeats its counters on
    /// most ticks, the RLE stores far fewer cells than raw samples.
    #[test]
    fn idle_runs_compress(
        n_dev in 1usize..5,
        n_ticks in 20usize..120,
        tick_ms in 1u64..2_000,
    ) {
        // Entirely idle after one active tick per device.
        let mut deltas = vec![vec![1u64; n_dev]];
        deltas.extend(std::iter::repeat_n(vec![0u64; n_dev], n_ticks - 1));
        let stream = build_stream(&deltas, tick_ms);
        let store = fill(
            TraceStoreConfig::RleRing { capacity: stream.len() },
            &stream,
        );
        prop_assert_eq!(store.to_vec(), stream.clone());
        // One active + one idle segment per device at most (plus slack
        // for the live tails): far below the raw count.
        prop_assert!(
            store.storage_cells() <= 3 * n_dev,
            "{} cells for {} samples",
            store.storage_cells(),
            stream.len()
        );
    }

    /// Logical equality is representation-agnostic: a ring that evicted
    /// nothing equals the unbounded store, and differs once it evicts.
    #[test]
    fn equality_tracks_content_not_backend(
        deltas in arb_deltas(),
        tick_ms in 1u64..2_000,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let unbounded = fill(TraceStoreConfig::Unbounded, &stream);
        let roomy = fill(
            TraceStoreConfig::RleRing { capacity: stream.len() + 1 },
            &stream,
        );
        prop_assert_eq!(&roomy, &unbounded);
        let tight = fill(TraceStoreConfig::RleRing { capacity: 1 }, &stream);
        if tight.evicted() > 0 {
            prop_assert_ne!(&tight, &unbounded);
        }
    }
}
