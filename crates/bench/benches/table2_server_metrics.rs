//! **Table II** — the server-side metric list. This harness demonstrates
//! that each metric family (delivered I/O speed, device sector counters,
//! and the read/write queue statistics) is collected per window and
//! *discriminates between I/O patterns*: it runs four contrasting loads
//! and prints the windowed sum/mean/std of every metric on one OST.

use qi_bench::{is_smoke, results_dir};
use qi_monitor::server::{server_windows, SERVER_SERIES};
use qi_monitor::window::WindowConfig;
use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::DeviceId;
use qi_simkit::table::AsciiTable;
use qi_simkit::time::SimDuration;
use quanterference::scenario::Scenario;
use quanterference::WorkloadKind;

fn run_load(kind: Option<WorkloadKind>, small: bool) -> Vec<(String, [f64; 3])> {
    let mut cluster = if small {
        ClusterConfig::small()
    } else {
        ClusterConfig::default()
    };
    cluster.sample_interval = SimDuration::from_millis(250);
    let target = kind.unwrap_or(WorkloadKind::IorEasyRead);
    let scenario = Scenario {
        target,
        target_ranks: if small { 2 } else { 4 },
        cluster,
        small,
        ..Scenario::baseline(target, 3)
    };
    let (_, trace) = if kind.is_some() {
        scenario.run()
    } else {
        // Idle: deploy nothing measurable — run the cluster briefly by
        // measuring a trivial metadata-only workload far from OST 0.
        let s = Scenario {
            target: WorkloadKind::MdtEasyWrite,
            ..scenario
        };
        s.run()
    }
    .expect("scenario runs");
    let windows = server_windows(&trace.samples.to_vec(), WindowConfig::seconds(1));
    // Pick the busiest mid-run window of OST 0 by completed requests.
    let dev = DeviceId(0);
    let best = windows
        .iter()
        .filter(|((d, _), _)| *d == dev)
        .max_by(|(_, a), (_, b)| {
            a.series[0]
                .sum
                .partial_cmp(&b.series[0].sum)
                .expect("finite sums")
        });
    match best {
        Some((_, w)) => SERVER_SERIES
            .iter()
            .zip(&w.series)
            .map(|(name, s)| (name.to_string(), [s.sum, s.mean, s.std]))
            .collect(),
        None => SERVER_SERIES
            .iter()
            .map(|n| (n.to_string(), [0.0, 0.0, 0.0]))
            .collect(),
    }
}

fn main() {
    let small = is_smoke();
    let loads: [(&str, Option<WorkloadKind>); 4] = [
        ("metadata-only (idle OST)", None),
        (
            "streaming reads (ior-easy-read)",
            Some(WorkloadKind::IorEasyRead),
        ),
        (
            "bulk writes (ior-easy-write)",
            Some(WorkloadKind::IorEasyWrite),
        ),
        (
            "tiny writes (mdt-hard-write)",
            Some(WorkloadKind::MdtHardWrite),
        ),
    ];
    println!("Table II — server-side metrics on OST 0, busiest 1 s window per load\n");
    let t0 = std::time::Instant::now();
    let mut per_load = Vec::new();
    for (label, kind) in loads {
        per_load.push((label, run_load(kind, small)));
    }

    let mut header = vec!["metric (per-second stats)".to_string()];
    for (label, _) in &per_load {
        header.push(label.to_string());
    }
    let mut table = AsciiTable::new(header);
    for (i, name) in SERVER_SERIES.iter().enumerate() {
        for (stat_i, stat) in ["sum", "mean", "std"].iter().enumerate() {
            let mut row = vec![format!("{name} ({stat})")];
            for (_, metrics) in &per_load {
                row.push(format!("{:.1}", metrics[i].1[stat_i]));
            }
            table.add_row(row);
        }
    }
    println!("{}", table.render());

    // Discrimination checks: the patterns must be tellable apart from
    // the metrics alone (that is what makes the model learnable).
    let get = |load: usize, series: usize| per_load[load].1[series].1[0]; // sum
    let reads_sectors = get(1, 1);
    let write_sectors_reader = get(1, 2);
    let write_sectors_writer = get(2, 2);
    println!("discrimination checks:");
    println!(
        "  reader window: sectors_read {reads_sectors:.0} >> sectors_written {write_sectors_reader:.0} -> {}",
        if reads_sectors > 10.0 * (write_sectors_reader + 1.0) { "ok" } else { "MISMATCH" }
    );
    println!(
        "  writer window: sectors_written {write_sectors_writer:.0} >> reader's {write_sectors_reader:.0} -> {}",
        if write_sectors_writer > 10.0 * (write_sectors_reader + 1.0) { "ok" } else { "MISMATCH" }
    );
    let merges_tiny = get(3, 4);
    let merges_reader = get(1, 4);
    println!(
        "  tiny-write window merges {merges_tiny:.0} vs reader merges {merges_reader:.0} -> {}",
        if merges_tiny > merges_reader {
            "merging visible under small writes [ok]"
        } else {
            "(pattern-dependent)"
        }
    );

    let path = results_dir().join("table2_server_metrics.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
