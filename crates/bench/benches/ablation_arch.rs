//! **Ablation: model architecture** (DESIGN.md — paper challenge 2).
//!
//! The paper chose a *kernel-based* network — one shared MLP applied per
//! server, outputs concatenated into a small head — "to account for the
//! fact that some applications may only utilize a subset of OSTs or
//! target different ones in multiple runs". This ablation compares:
//!
//! 1. the kernel network (paper architecture);
//! 2. a flat MLP over the concatenated per-server vectors
//!    (position-dependent — must relearn each OST slot separately);
//! 3. a linear softmax over the concatenated vectors (capacity floor).

use qi_bench::{is_smoke, results_dir, summary_table};
use qi_ml::data::Dataset;
use qi_ml::matrix::Matrix;
use qi_ml::train::{train, TrainConfig};
use quanterference::predict::{family_spec, EvalReport};
use quanterference::{generate, WorkloadKind};

/// View the same samples as one flat vector per sample (n_servers = 1).
fn flatten(d: &Dataset) -> Dataset {
    let n = d.len();
    let width = d.n_servers * d.n_features();
    Dataset {
        x: Matrix::from_vec(n, width, d.x.data().to_vec()),
        y: d.y.clone(),
        n_servers: 1,
    }
}

fn evaluate(
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    labels: &[String],
) -> EvalReport {
    let mut model = train(train_set, cfg);
    let cm = model.evaluate(test_set);
    let count = |d: &Dataset| {
        let mut c = vec![0usize; cfg.n_classes];
        for &y in &d.y {
            c[y] += 1;
        }
        c
    };
    EvalReport {
        train_size: train_set.len(),
        test_size: test_set.len(),
        train_counts: count(train_set),
        test_counts: count(test_set),
        cm,
        labels: labels.to_vec(),
        metrics: model.metrics.clone(),
    }
}

fn main() {
    let small = is_smoke();
    let spec = family_spec(&WorkloadKind::IO500, small);
    println!(
        "Ablation (architecture): generating the IO500 dataset ({} runs)...",
        spec.n_runs()
    );
    let t0 = std::time::Instant::now();
    let gen = generate(&spec).expect("dataset generates");
    let labels = gen.bins.labels();
    let (train_set, test_set) = gen.data.split(0.2, 42);
    let epochs = if small { 20 } else { 40 };

    let kernel_cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let kernel = evaluate(&train_set, &test_set, &kernel_cfg, &labels);

    let flat_train = flatten(&train_set);
    let flat_test = flatten(&test_set);
    // Parameter-matched flat MLP (roughly the same budget).
    let flat_cfg = TrainConfig {
        epochs,
        kernel_hidden: vec![48, 16],
        head_hidden: vec![],
        ..TrainConfig::default()
    };
    let flat = evaluate(&flat_train, &flat_test, &flat_cfg, &labels);

    let linear_cfg = TrainConfig {
        epochs,
        kernel_hidden: vec![],
        head_hidden: vec![],
        ..TrainConfig::default()
    };
    let linear = evaluate(&flat_train, &flat_test, &linear_cfg, &labels);

    println!("\narchitecture comparison (same data, same split):");
    let rows = [
        ("kernel-net (paper)", &kernel),
        ("flat MLP", &flat),
        ("linear softmax", &linear),
    ];
    let table = summary_table(&rows);
    println!("{}", table.render());
    println!(
        "kernel {:.3} vs flat {:.3} vs linear {:.3} (F1) -> {}",
        kernel.headline_f1(),
        flat.headline_f1(),
        linear.headline_f1(),
        if kernel.headline_f1() >= flat.headline_f1() - 0.02 {
            "kernel matches or beats position-dependent models [supports the paper's choice]"
        } else {
            "flat model won on this grid"
        }
    );

    let path = results_dir().join("ablation_arch.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
