//! **Parallel execution harness** (DESIGN.md — execution layer).
//!
//! Benchmarks the two hot paths that the work-stealing pool behind the
//! vendored `rayon` shim parallelises — the dataset sweep
//! (`dataset::generate`, overlapping baseline + interfered simulations)
//! and the blocked matmul in `qi_ml::matrix` — at 1, 2, and N worker
//! threads, then writes `BENCH_parallel.json` at the repository root
//! with median wall-clock times and speedups relative to one thread.
//!
//! Determinism is asserted, not assumed: before timing, every thread
//! count's output is checked bit-for-bit against the single-threaded
//! run (dataset labels, feature bits, provenance; matmul output bits).
//!
//! Knobs:
//! - `QI_BENCH_THREADS=1,2,8` overrides the thread counts.
//! - `QI_BENCH_OUT=path.json` overrides the output path.
//! - `QI_BENCH_QUICK=1` (or `QI_SMOKE=1`) shrinks sample counts and the
//!   matmul size for smoke runs.

use std::time::Duration;

use criterion::Criterion;
use qi_bench::is_smoke;
use qi_ml::matrix::Matrix;
use quanterference::dataset::{generate_on, DatasetSpec, GeneratedDataset};
use rayon::{ThreadPool, ThreadPoolBuilder};

/// Everything that must be byte-identical across thread counts.
fn dataset_fingerprint(g: &GeneratedDataset) -> (Vec<usize>, Vec<u32>, String) {
    (
        g.data.y.clone(),
        g.data.x.data().iter().map(|v| v.to_bits()).collect(),
        format!("{:?}", g.meta),
    )
}

fn thread_counts() -> Vec<usize> {
    if let Ok(spec) = std::env::var("QI_BENCH_THREADS") {
        let mut counts: Vec<usize> = spec
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        counts.dedup();
        if !counts.is_empty() {
            return counts;
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, hw.max(4)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn pool(threads: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail for nonzero thread counts")
}

/// Deterministic dense test operands for the matmul bench.
fn matmul_operands(n: usize) -> (Matrix, Matrix) {
    let fill = |salt: u32| {
        let data = (0..n * n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt);
                (h >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect();
        Matrix::from_vec(n, n, data)
    };
    (fill(17), fill(91))
}

struct BenchRow {
    name: String,
    threads: usize,
    median_ms: f64,
    speedup_vs_1t: f64,
}

fn write_json(rows: &[BenchRow], hw: usize, out: &std::path::Path) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench parallel\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"median_ms\": {:.3}, \"speedup_vs_1t\": {:.3}}}{}\n",
            r.name,
            r.threads,
            r.median_ms,
            r.speedup_vs_1t,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_parallel.json");
}

fn main() {
    let quick = is_smoke()
        || std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let counts = thread_counts();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let matmul_n = if quick { 192 } else { 512 };
    let samples = if quick { 2 } else { 5 };

    println!("parallel bench: threads {counts:?} on {hw} hardware thread(s)");

    // Determinism gate: every thread count must reproduce the
    // single-thread output bit-for-bit before we bother timing it.
    let spec = DatasetSpec::smoke();
    let (a, b) = matmul_operands(matmul_n);
    let reference = {
        let p = pool(1);
        (
            dataset_fingerprint(&generate_on(&p, &spec).expect("sweep runs")),
            p.install(|| a.matmul(&b)),
        )
    };
    for &n in &counts {
        let p = pool(n);
        assert_eq!(
            dataset_fingerprint(&generate_on(&p, &spec).expect("sweep runs")),
            reference.0,
            "dataset output diverged at {n} threads"
        );
        let prod = p.install(|| a.matmul(&b));
        assert_eq!(
            prod.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference
                .1
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "matmul output diverged at {n} threads"
        );
    }
    println!("determinism: all thread counts byte-identical to 1 thread");

    // Fixed sample counts (not a time budget) so relative numbers are
    // comparable across thread counts on loaded machines.
    let mut c = Criterion::default()
        .with_budget(Duration::ZERO, Duration::ZERO)
        .min_samples(samples);
    for &n in &counts {
        let p = pool(n);
        c.bench_function(&format!("dataset_generate_smoke/{n}t"), |bench| {
            bench.iter(|| generate_on(&p, &spec).expect("sweep runs"))
        });
        c.bench_function(&format!("matmul_{matmul_n}/{n}t"), |bench| {
            bench.iter(|| p.install(|| a.matmul(&b)))
        });
    }

    let stats = c.results();
    let base_median = |prefix: &str| {
        stats
            .iter()
            .find(|s| s.name == format!("{prefix}/1t"))
            .map(|s| s.median_ms())
    };
    let rows: Vec<BenchRow> = stats
        .iter()
        .map(|s| {
            let (prefix, threads) = s
                .name
                .rsplit_once('/')
                .map(|(p, t)| (p, t.trim_end_matches('t').parse().unwrap_or(1)))
                .unwrap_or((s.name.as_str(), 1));
            let speedup = base_median(prefix)
                .map(|b| b / s.median_ms())
                .unwrap_or(1.0);
            BenchRow {
                name: prefix.to_string(),
                threads,
                median_ms: s.median_ms(),
                speedup_vs_1t: speedup,
            }
        })
        .collect();

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_parallel.json")
        },
        std::path::PathBuf::from,
    );
    write_json(&rows, hw, &out);
    println!("wrote {}", out.display());
}
